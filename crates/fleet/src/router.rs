//! The fleet's request router: placement, replication, failover,
//! scatter-gather, and runtime membership.
//!
//! Every table-addressed request hashes the table name onto the
//! [`HashRing`] to get its replica set (R backends in deterministic
//! failover order). Reads (`characterize`) try replicas healthy-first,
//! rotated per-request so load spreads across the replica set; a connect
//! or IO error marks the backend and fails over to the next replica
//! without the client noticing. Writes (ingest, delete) fan out to the
//! whole replica set. Fleet-wide reads (`GET /tables`, `GET /metrics`)
//! scatter to every backend in parallel and gather one merged document.
//!
//! # Dynamic membership
//!
//! Membership is no longer frozen at startup: the ring, the backend
//! list, and a monotonically increasing **epoch** live together in one
//! immutable [`Membership`] value behind an `RwLock<Arc<_>>`. Admin
//! requests (`POST /admin/backends`, `DELETE /admin/backends/{id}`)
//! build a *new* membership (rebuilding the ring — bounded remapping is
//! the consistent-hash property the ring suite pins) and swap the `Arc`;
//! every data-path request snapshots the `Arc` once on entry and runs
//! entirely against that view, so in-flight requests **drain on the old
//! view** — a backend removed mid-request keeps serving the requests
//! already routed to it (the `Arc<Backend>` keeps its connection pool
//! alive) while no *new* request can route to it. The epoch is reported
//! on every response (`X-Fleet-Epoch`), in `/healthz`, and in
//! `/metrics`, so clients and tests can observe membership changes.
//!
//! Sessions are *sticky first, recoverable second*: a session is
//! created on one replica and its steps route there, because session
//! history lives in that backend's memory. The mapping holds the
//! backend by `Arc`, not by ring position, so membership churn never
//! re-points a session; removing a session's home from the ring merely
//! drains it. If the home *process dies*, the router no longer answers
//! a blanket 503: it keeps a ledger of every query stepped through the
//! session and rebuilds it on another healthy replica of the table —
//! create, replay, then forward the interrupted step (reports are
//! deterministic, so the rebuilt history matches the lost one). Only a
//! session whose table has no other live replica is truly lost, and
//! the 503 says so explicitly.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use ziggy_obs::span::{self, DEFAULT_TRACE_CAPACITY, SPAN_CONTEXT_HEADER};
use ziggy_obs::trace::TRACE_HEADER;
use ziggy_obs::{FlightRecorder, LoopStats, PromDoc, RouteHistograms};
use ziggy_serve::http::{Request, Response};
use ziggy_serve::json::{parse_object, required_str};
use ziggy_serve::metrics::Counter;
use ziggy_serve::router::{trace_json, DEFAULT_SLOW_US};

use crate::backend::Backend;
use crate::ring::HashRing;

/// Route-label keys for the router's latency histograms: the single-node
/// keys plus the fleet-only `admin` surface.
pub const FLEET_ROUTE_KEYS: &[&str] = &[
    "healthz",
    "metrics",
    "tables",
    "characterize",
    "csv",
    "sessions",
    "session_step",
    "admin",
    "other",
];

/// Maps a request to its route-label key (bounded cardinality; see
/// [`ziggy_serve::metrics::route_key`]).
pub fn fleet_route_key(method: &str, path: &str) -> &'static str {
    if path == "/admin" || path.starts_with("/admin/") {
        "admin"
    } else {
        ziggy_serve::metrics::route_key(method, path)
    }
}

fn num_u(n: u64) -> Value {
    Value::Number(serde_json::Number::U(n))
}

fn error_response(status: u16, message: &str) -> Response {
    Response::new(
        status,
        serde_json::to_string(&Value::Object(vec![(
            "error".into(),
            Value::String(message.into()),
        )]))
        .expect("error bodies always render"),
    )
}

/// Router-level counters (backend `/metrics` are gathered separately).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Requests that reached the fleet router.
    pub requests_total: Counter,
    /// Requests answered with 4xx/5xx by the router itself.
    pub errors_total: Counter,
    /// Requests forwarded to a backend (including fan-out legs).
    pub proxied_total: Counter,
    /// Failovers: a replica attempt failed at the transport level and
    /// the request moved on to the next replica.
    pub failovers_total: Counter,
    /// Requests refused with 429 by the router's rate limiter.
    pub rate_limited: Counter,
    /// Successful admin membership changes (adds + removes). Equals the
    /// number of epoch bumps beyond the initial membership.
    pub membership_changes: Counter,
    /// Tables re-materialized onto a backend by the repair loop.
    pub repairs_total: Counter,
    /// Repair attempts that failed (source export or replicate leg).
    pub repair_failures_total: Counter,
    /// Stale copies deleted by the repair loop because a strictly newer
    /// tombstone proved the table deleted (resurrections prevented).
    pub deletes_propagated_total: Counter,
    /// Stranded copies garbage-collected from backends outside their
    /// table's desired replica set.
    pub strays_collected_total: Counter,
    /// Sessions transparently rebuilt on another replica after their
    /// home backend died mid-conversation.
    pub session_failovers_total: Counter,
    /// Solely-held tables copied off a backend by the pre-drain safety
    /// check before its removal was allowed.
    pub drain_copyouts_total: Counter,
}

impl FleetMetrics {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("requests_total".into(), num_u(self.requests_total.get())),
            ("errors_total".into(), num_u(self.errors_total.get())),
            ("proxied_total".into(), num_u(self.proxied_total.get())),
            ("failovers_total".into(), num_u(self.failovers_total.get())),
            ("rate_limited".into(), num_u(self.rate_limited.get())),
            (
                "membership_changes".into(),
                num_u(self.membership_changes.get()),
            ),
            ("repairs_total".into(), num_u(self.repairs_total.get())),
            (
                "repair_failures_total".into(),
                num_u(self.repair_failures_total.get()),
            ),
            (
                "deletes_propagated_total".into(),
                num_u(self.deletes_propagated_total.get()),
            ),
            (
                "strays_collected_total".into(),
                num_u(self.strays_collected_total.get()),
            ),
            (
                "session_failovers_total".into(),
                num_u(self.session_failovers_total.get()),
            ),
            (
                "drain_copyouts_total".into(),
                num_u(self.drain_copyouts_total.get()),
            ),
        ])
    }
}

/// Upper bound on live fleet→backend session mappings; creation beyond
/// it is refused (409). Mirrors the single-node `MAX_SESSIONS` so the
/// router cannot be grown without bound by abandoned clients.
pub const MAX_FLEET_SESSIONS: usize = 4096;

/// A fleet session: which backend holds the real session, under what id.
/// The backend is held by `Arc` — not by ring index — so membership
/// changes can neither re-point the session nor dangle it.
struct FleetSession {
    backend: Arc<Backend>,
    backend_session: u64,
    table: String,
    /// Every query stepped through this session so far, in order,
    /// capped at [`ziggy_serve::sessions::MAX_HISTORY`] (mirroring the
    /// backend's own history cap). This is the failover ledger: when
    /// the home backend dies, the session is rebuilt on another replica
    /// by replaying these queries — reports are deterministic, so the
    /// rebuilt history step-for-step matches the lost one.
    queries: Vec<String>,
    /// Last create/step activity; mappings idle past the TTL are swept
    /// (their backend sessions expire independently on the backend).
    last_used: Instant,
}

/// One immutable view of fleet membership: the backends, the ring built
/// over them, and the epoch that versions this view. Data-path requests
/// snapshot the enclosing `Arc` once and never observe a membership
/// change mid-flight.
pub struct Membership {
    epoch: u64,
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
}

impl Membership {
    fn build(epoch: u64, backends: Vec<Arc<Backend>>, vnodes: usize) -> Self {
        let ids: Vec<String> = backends.iter().map(|b| b.id().to_string()).collect();
        Self {
            epoch,
            ring: HashRing::build(&ids, vnodes),
            backends,
        }
    }

    /// The membership version; bumps by one per admin add/remove.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The member backends, in membership order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// The consistent-hash ring over this view's backends.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The replica set for `table` under this view, in ring (failover)
    /// order.
    pub fn replicas_for(&self, table: &str, r: usize) -> Vec<Arc<Backend>> {
        self.ring
            .replicas_for(table, r)
            .into_iter()
            .map(|i| Arc::clone(&self.backends[i]))
            .collect()
    }

    /// The backend with the given id, if it is a member of this view.
    pub fn backend(&self, id: &str) -> Option<&Arc<Backend>> {
        self.backends.iter().find(|b| b.id() == id)
    }
}

/// Shared router state: the versioned membership, the session map, the
/// counters.
pub struct FleetState {
    membership: RwLock<Arc<Membership>>,
    replication: usize,
    vnodes: usize,
    sessions: RwLock<HashMap<u64, FleetSession>>,
    next_session: AtomicU64,
    /// Idle TTL for session mappings; `None` disables sweeping (the
    /// [`MAX_FLEET_SESSIONS`] cap still bounds the map).
    session_ttl: Option<Duration>,
    /// Last sweep time, for throttling (see
    /// [`FleetState::sweep_sessions`]).
    last_session_sweep: Mutex<Option<Instant>>,
    /// Per-request rotation so reads spread over a table's replica set.
    round_robin: AtomicUsize,
    /// Router-level counters.
    pub metrics: FleetMetrics,
    /// Per-route request latency at the router edge, keyed by
    /// [`FLEET_ROUTE_KEYS`].
    pub route_latency: RouteHistograms,
    /// The router's flight recorder: one trace per routed request, its
    /// upstream legs as child spans. `GET /debug/traces/{id}` overlays
    /// the backends' spans for the same trace on top of this local view.
    pub recorder: Arc<FlightRecorder>,
    /// Repair-loop round durations and outcomes.
    pub repair_stats: LoopStats,
    /// Prober round durations and outcomes (shared with the prober
    /// thread).
    pub probe_stats: Arc<LoopStats>,
    /// Consecutive clean repair rounds (the stray-GC grace counter; see
    /// [`crate::repair::GC_GRACE_ROUNDS`]).
    pub(crate) repair_clean_streak: AtomicU64,
    /// Membership epoch the last repair round ran under; a change
    /// resets the clean streak.
    pub(crate) repair_epoch: AtomicU64,
    /// Event-loop data-plane counters and pool gauges (populated when
    /// the router fronts with [`crate::dataplane::DataPlane`]).
    pub dataplane: Arc<crate::dataplane::DataPlaneStats>,
    /// Router start, for `/healthz` uptime and the uptime gauge.
    pub started: Instant,
}

impl FleetState {
    /// Builds the router state over `backends` with `replication`
    /// replicas per table (capped per lookup to the live fleet size),
    /// `vnodes` virtual nodes per backend, and an idle TTL for session
    /// mappings. The initial membership is epoch 1.
    pub fn new(
        backends: Vec<Arc<Backend>>,
        replication: usize,
        vnodes: usize,
        session_ttl: Option<Duration>,
    ) -> Self {
        let vnodes = vnodes.max(1);
        Self {
            membership: RwLock::new(Arc::new(Membership::build(1, backends, vnodes))),
            replication: replication.max(1),
            vnodes,
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            session_ttl,
            last_session_sweep: Mutex::new(None),
            round_robin: AtomicUsize::new(0),
            metrics: FleetMetrics::default(),
            route_latency: RouteHistograms::new(FLEET_ROUTE_KEYS),
            recorder: Arc::new(FlightRecorder::new(DEFAULT_TRACE_CAPACITY, DEFAULT_SLOW_US)),
            repair_stats: LoopStats::new(),
            probe_stats: Arc::new(LoopStats::new()),
            repair_clean_streak: AtomicU64::new(0),
            repair_epoch: AtomicU64::new(0),
            dataplane: Arc::new(crate::dataplane::DataPlaneStats::default()),
            started: Instant::now(),
        }
    }

    /// Snapshots the current membership view. One snapshot per request:
    /// everything the request does (placement, fan-out, failover) runs
    /// against this immutable view, so a concurrent admin change cannot
    /// tear a request between two rings.
    pub fn membership(&self) -> Arc<Membership> {
        Arc::clone(&self.membership.read())
    }

    /// The current membership epoch.
    pub fn epoch(&self) -> u64 {
        self.membership.read().epoch
    }

    /// Adds a backend to the membership at runtime, bumping the epoch.
    /// Fails when the id is already a member. Returns the backend plus
    /// the epoch of the membership *this* add produced — captured under
    /// the write lock, so a racing admin change cannot make the caller
    /// report someone else's epoch. Tables whose replica set now
    /// includes the newcomer are re-materialized by the repair loop,
    /// not here — the admin call only changes routing.
    pub fn add_backend(
        &self,
        id: impl Into<String>,
        addr: std::net::SocketAddr,
    ) -> Result<(Arc<Backend>, u64), String> {
        let id = id.into();
        let mut slot = self.membership.write();
        if slot.backend(&id).is_some() {
            return Err(format!("backend `{id}` is already a member"));
        }
        let backend = Arc::new(Backend::new(id, addr));
        let mut backends = slot.backends.clone();
        backends.push(Arc::clone(&backend));
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Membership::build(epoch, backends, self.vnodes));
        self.metrics.membership_changes.inc();
        Ok((backend, epoch))
    }

    /// Removes a backend from the membership at runtime, bumping the
    /// epoch; returns the removed backend (its `Arc` — and connection
    /// pool — stays alive for requests already in flight on the old
    /// view, which is what makes removal a *drain*, not a kill) plus the
    /// epoch this removal produced (captured under the write lock, as on
    /// the add path). Returns `None` when the id is not a member.
    pub fn remove_backend(&self, id: &str) -> Option<(Arc<Backend>, u64)> {
        let mut slot = self.membership.write();
        let index = slot.backends.iter().position(|b| b.id() == id)?;
        let mut backends = slot.backends.clone();
        let removed = backends.remove(index);
        let epoch = slot.epoch + 1;
        *slot = Arc::new(Membership::build(epoch, backends, self.vnodes));
        self.metrics.membership_changes.inc();
        Some((removed, epoch))
    }

    /// Drops session mappings idle past the TTL. Abandoned sessions
    /// would otherwise accumulate forever: the backend's own TTL reaps
    /// *its* half, but the router only notices on an explicit DELETE or
    /// a step that happens to see the backend's 404. Throttled to ~8
    /// sweeps per TTL so the step path stays O(1).
    fn sweep_sessions(&self) {
        let Some(ttl) = self.session_ttl else { return };
        let interval = (ttl / 8).max(Duration::from_millis(10));
        {
            let mut last = self.last_session_sweep.lock();
            let now = Instant::now();
            match *last {
                Some(prev) if now.duration_since(prev) < interval => return,
                _ => *last = Some(now),
            }
        }
        let now = Instant::now();
        self.sessions
            .write()
            .retain(|_, s| now.duration_since(s.last_used) < ttl);
    }

    /// A snapshot of the current member backends, in membership order.
    pub fn backends(&self) -> Vec<Arc<Backend>> {
        self.membership.read().backends.clone()
    }

    /// Desired replicas per table (the effective count is capped by the
    /// live membership size at each placement).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The replica set for `table` under the current membership, in ring
    /// (failover) order.
    pub fn replicas_for(&self, table: &str) -> Vec<Arc<Backend>> {
        self.membership().replicas_for(table, self.replication)
    }

    /// The backends to try for a read of `table`, in order:
    ///
    /// 1. the *healthy* nominal replicas, rotated by a per-request
    ///    counter so repeated reads spread across the replica set;
    /// 2. **only when some nominal replica is unhealthy**, the healthy
    ///    backends *beyond* the nominal set, continuing the ring walk —
    ///    exactly where the repair loop re-materializes a table whose
    ///    nominal replica died, so a repaired copy serves reads even
    ///    while the dead member is still on the ring (a backend there
    ///    that never received the table answers 404 and the failover
    ///    loop simply moves on);
    /// 3. the unhealthy nominal replicas, as a last resort (the prober
    ///    may lag reality, and a desperate try beats a guaranteed 503).
    ///
    /// With every nominal replica healthy the order is exactly the
    /// nominal set, so a request for an *unknown* table still costs at
    /// most R hops (each answering 404), never a full-fleet sweep.
    /// Shared with the event-loop data plane, whose hot path runs the
    /// same failover walk.
    pub(crate) fn read_order(&self, view: &Membership, table: &str) -> Vec<Arc<Backend>> {
        let walk = view.replicas_for(table, view.backends().len());
        if walk.is_empty() {
            return walk;
        }
        let nominal = self.replication.min(walk.len());
        let replicas = &walk[..nominal];
        let any_nominal_unhealthy = replicas.iter().any(|b| !b.is_healthy());
        let rotation = self.round_robin.fetch_add(1, Ordering::Relaxed) % nominal;
        let mut ordered: Vec<Arc<Backend>> = Vec::with_capacity(walk.len());
        for offset in 0..nominal {
            let candidate = &replicas[(rotation + offset) % nominal];
            if candidate.is_healthy() {
                ordered.push(Arc::clone(candidate));
            }
        }
        if any_nominal_unhealthy {
            for candidate in &walk[nominal..] {
                if candidate.is_healthy() {
                    ordered.push(Arc::clone(candidate));
                }
            }
            for offset in 0..nominal {
                let candidate = &replicas[(rotation + offset) % nominal];
                if !candidate.is_healthy() {
                    ordered.push(Arc::clone(candidate));
                }
            }
        }
        ordered
    }
}

/// Routes one request. Returns the response plus the id of the backend
/// that served it, when exactly one did (for the access log).
/// Compatibility wrapper over [`route_fleet_traced`] for callers
/// without a trace id (in-process tests and benchmarks).
pub fn route_fleet(state: &FleetState, req: &Request) -> (Response, Option<String>) {
    route_fleet_traced(state, req, None)
}

/// Routes one request, propagating `trace` (the request's
/// `X-Request-Id`) on every proxied leg so backend access logs carry
/// the same id as the router's. Returns the response plus the id of the
/// backend that served it, when exactly one did (for the access log).
pub fn route_fleet_traced(
    state: &FleetState,
    req: &Request,
    trace: Option<&str>,
) -> (Response, Option<String>) {
    state.metrics.requests_total.inc();
    // One membership snapshot per request: the whole request — placement,
    // fan-out, failover — drains on this view even if an admin call swaps
    // the membership mid-flight.
    let view = state.membership();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (response, backend) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (handle_healthz(state, &view), None),
        ("GET", ["metrics"]) => (handle_metrics(state, &view, req), None),
        ("GET", ["tables"]) => (handle_list_tables(state, &view), None),
        ("POST", ["tables"]) => (handle_create_table(state, &view, &req.body), None),
        ("POST", ["tables", name, "characterize"]) => {
            handle_characterize(state, &view, name, req, trace)
        }
        ("GET", ["tables", name, "csv"]) => handle_export_csv(state, &view, name, trace),
        ("DELETE", ["tables", name]) => (handle_delete_table(state, &view, name), None),
        ("POST", ["sessions"]) => handle_create_session(state, &view, &req.body, trace),
        ("POST", ["sessions", id, "step"]) => handle_session_step(state, id, &req.body, trace),
        ("DELETE", ["sessions", id]) => handle_delete_session(state, id),
        ("GET", ["debug", "traces"]) => (handle_list_traces(state, req), None),
        ("GET", ["debug", "traces", id]) => (handle_get_trace(state, &view, id), None),
        ("GET", ["admin", "backends"]) => (handle_admin_list(&view), None),
        ("POST", ["admin", "backends"]) => (handle_admin_add(state, &req.body), None),
        ("DELETE", ["admin", "backends", id]) => (handle_admin_remove(state, &view, id, req), None),
        (
            _,
            ["healthz"]
            | ["metrics"]
            | ["tables"]
            | ["tables", _]
            | ["tables", _, "characterize"]
            | ["tables", _, "csv"]
            | ["sessions"]
            | ["sessions", _]
            | ["sessions", _, "step"]
            | ["debug", "traces"]
            | ["debug", "traces", _]
            | ["admin", "backends"]
            | ["admin", "backends", _],
        ) => (error_response(405, "method not allowed"), None),
        _ => (
            error_response(404, &format!("no route for {}", req.path)),
            None,
        ),
    };
    if response.status >= 400 {
        state.metrics.errors_total.inc();
    }
    // Every response reports the membership version it was routed under,
    // so clients (and the churn smoke) can correlate responses with
    // membership changes. Successful admin mutations already attached
    // their *post-change* epoch (reporting the pre-change view there
    // would tell a client its own accepted change hadn't happened);
    // don't overwrite it.
    let response = if response.headers.iter().any(|(k, _)| k == "X-Fleet-Epoch") {
        response
    } else {
        response.with_header("X-Fleet-Epoch", view.epoch().to_string())
    };
    (response, backend)
}

/// Whether a forwarded request may be transparently re-sent by the
/// connection pool. GET/PUT/DELETE are idempotent by contract (the
/// replicate path is *designed* to converge on retry), and POST
/// characterize is a pure read; POST session create/step mutate backend
/// state, so a duplicate would orphan a session or double-advance a
/// history.
fn retry_safe(method: &str, path: &str) -> bool {
    method != "POST" || path.ends_with("/characterize")
}

/// One forwarded request leg, with passive health bookkeeping.
pub(crate) fn forward(
    state: &FleetState,
    backend: &Backend,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = forward_with_headers(state, backend, method, path, &[], body)?;
    Ok((status, body))
}

/// [`forward`] carrying extra request headers and returning the
/// backend's response headers — the conditional-request leg of the
/// characterize proxy path.
///
/// Every leg opens a `fleet.upstream` child span (backend id and path
/// as attributes) and forwards its identity as `X-Span-Context`, so the
/// backend's own root span becomes a *child* of this leg — one trace id
/// then assembles the router's view and the backend's breakdown into a
/// single tree. Legs issued outside a request context (scatter threads,
/// the repair loop's direct [`forward`] calls) simply carry no span.
fn forward_with_headers(
    state: &FleetState,
    backend: &Backend,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<ziggy_serve::http::FullResponse> {
    state.metrics.proxied_total.inc();
    let mut leg = span::child("fleet.upstream");
    let span_ctx = leg.as_mut().map(|g| {
        g.attr("backend", backend.id());
        g.attr("path", path);
        span::encode_span_context(g.trace_id(), g.span_id())
    });
    let mut headers: Vec<(&str, &str)> = extra_headers.to_vec();
    if let Some(ctx) = span_ctx.as_deref() {
        headers.push((SPAN_CONTEXT_HEADER, ctx));
    }
    let started = Instant::now();
    match backend.pool().request_with_headers(
        method,
        path,
        &headers,
        body,
        retry_safe(method, path),
    ) {
        Ok(response) => {
            backend.record_upstream(started.elapsed());
            backend.record_success();
            Ok(response)
        }
        Err(e) => {
            backend.record_failure();
            if let Some(g) = leg.as_mut() {
                g.set_error(true);
            }
            Err(e)
        }
    }
}

/// The extra request headers carrying the trace id, when one exists.
fn trace_headers(trace: Option<&str>) -> Vec<(&'static str, &str)> {
    trace.map(|t| vec![(TRACE_HEADER, t)]).unwrap_or_default()
}

fn utf8_body(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| error_response(400, "request body is not UTF-8"))
}

fn backend_summary(b: &Backend) -> Value {
    Value::Object(vec![
        ("id".into(), Value::String(b.id().to_string())),
        ("addr".into(), Value::String(b.addr().to_string())),
        ("healthy".into(), Value::Bool(b.is_healthy())),
    ])
}

fn handle_healthz(state: &FleetState, view: &Membership) -> Response {
    let backends: Vec<Value> = view.backends().iter().map(|b| backend_summary(b)).collect();
    let any_healthy = view.backends().iter().any(|b| b.is_healthy());
    // Age of the last completed repair round; null until one has run
    // (including when the repair loop is disabled).
    let repair_age = state
        .repair_stats
        .last_round_age()
        .map(|age| Value::Number(serde_json::Number::F(age.as_secs_f64())))
        .unwrap_or(Value::Null);
    let body = Value::Object(vec![
        (
            "status".into(),
            Value::String(if any_healthy { "ok" } else { "degraded" }.into()),
        ),
        ("epoch".into(), num_u(view.epoch())),
        ("replication".into(), num_u(state.replication as u64)),
        ("uptime_s".into(), num_u(state.started.elapsed().as_secs())),
        (
            "version".into(),
            Value::String(env!("CARGO_PKG_VERSION").into()),
        ),
        ("last_repair_round_age_s".into(), repair_age),
        ("backends".into(), Value::Array(backends)),
    ]);
    Response::new(
        if any_healthy { 200 } else { 503 },
        serde_json::to_string(&body).expect("health bodies always render"),
    )
}

fn handle_admin_list(view: &Membership) -> Response {
    let backends: Vec<Value> = view.backends().iter().map(|b| backend_summary(b)).collect();
    Response::new(
        200,
        serde_json::to_string(&Value::Object(vec![
            ("epoch".into(), num_u(view.epoch())),
            ("backends".into(), Value::Array(backends)),
        ]))
        .expect("admin listings always render"),
    )
}

/// `POST /admin/backends {"id": "...", "addr": "host:port"}` — grows the
/// ring at runtime. The new backend joins with no tables; the repair
/// loop re-materializes every table whose replica set now includes it
/// (bounded remapping keeps that set small — ~K/N tables for a fleet of
/// N), after which reads rotate onto it like any other replica.
fn handle_admin_add(state: &FleetState, body: &[u8]) -> Response {
    let parsed = match parse_object(body) {
        Ok(v) => v,
        Err(e) => return error_response(e.status, &e.message),
    };
    let id = match required_str(&parsed, "id") {
        Ok(v) => v.to_string(),
        Err(e) => return error_response(e.status, &e.message),
    };
    // Same alphabet as table names: the id is interpolated into log
    // lines and JSON documents, and a whitespace/CRLF-bearing id has no
    // legitimate use.
    if !ziggy_serve::valid_table_name(&id) {
        return error_response(400, "backend id must be 1-64 chars of [A-Za-z0-9_-]");
    }
    let addr = match required_str(&parsed, "addr") {
        Ok(v) => v,
        Err(e) => return error_response(e.status, &e.message),
    };
    let addr: std::net::SocketAddr = match addr.parse() {
        Ok(a) => a,
        Err(_) => return error_response(400, "addr must be a host:port socket address"),
    };
    match state.add_backend(id.clone(), addr) {
        Ok((backend, epoch)) => {
            Response::new(
                201,
                serde_json::to_string(&Value::Object(vec![
                    ("added".into(), Value::String(id)),
                    ("addr".into(), Value::String(backend.addr().to_string())),
                    ("epoch".into(), num_u(epoch)),
                ]))
                .expect("admin bodies always render"),
            )
            // The *post-change* epoch: this response acknowledges the
            // new membership, not the view the request was routed under.
            .with_header("X-Fleet-Epoch", epoch.to_string())
        }
        Err(message) => error_response(409, &message),
    }
}

/// `DELETE /admin/backends/{id}` — shrinks the ring at runtime. This is
/// a *drain*, not a kill: requests already routed to the backend finish
/// on the old membership view, its sticky sessions keep stepping while
/// the process lives, and only new placement/read decisions exclude it.
/// Tables that drop below R live replicas are re-materialized onto the
/// surviving members by the repair loop.
///
/// **Pre-drain safety**: removing the *only* holder of a table (R=1, or
/// every other replica already lost) would leave the repair loop no
/// source to re-materialize from — silent data loss by admin action. So
/// before the membership changes, the handler finds every table solely
/// held by the leaving backend and copies it out to the next healthy
/// ring holder. Only if a copy-out fails does the request refuse with
/// `409` and the stranded table list; `?force=true` skips the check
/// (the operator accepting the loss, e.g. removing a corrupt member).
fn handle_admin_remove(state: &FleetState, view: &Membership, id: &str, req: &Request) -> Response {
    let force = req.query_param("force") == Some("true");
    let mut copied_out: Vec<Value> = Vec::new();
    if !force {
        if let Some(doomed) = view.backend(id) {
            match copy_out_solely_held(state, view, doomed) {
                Ok(copied) => {
                    copied_out = copied.into_iter().map(Value::String).collect();
                }
                Err(stranded) => {
                    let body = Value::Object(vec![
                        (
                            "error".into(),
                            Value::String(format!(
                                "backend `{id}` solely holds {} table(s) that could not be \
                                 copied out; removing it would lose them (retry, or use \
                                 ?force=true to accept the loss)",
                                stranded.len()
                            )),
                        ),
                        (
                            "solely_held".into(),
                            Value::Array(stranded.into_iter().map(Value::String).collect()),
                        ),
                    ]);
                    return Response::new(
                        409,
                        serde_json::to_string(&body).expect("admin bodies always render"),
                    );
                }
            }
        }
    }
    match state.remove_backend(id) {
        Some((_, epoch)) => {
            Response::new(
                200,
                serde_json::to_string(&Value::Object(vec![
                    ("removed".into(), Value::String(id.to_string())),
                    ("copied_out".into(), Value::Array(copied_out)),
                    ("epoch".into(), num_u(epoch)),
                ]))
                .expect("admin bodies always render"),
            )
            // Post-change epoch, as on the add path.
            .with_header("X-Fleet-Epoch", epoch.to_string())
        }
        None => error_response(404, &format!("no backend `{id}` in the membership")),
    }
}

/// Finds every table held *only* by `doomed` (no other member lists it)
/// and replicates each to the first healthy ring holder that isn't
/// `doomed`. Returns the copied table names, or — when any leg fails —
/// the names still stranded on the backend. A `doomed` that cannot even
/// list its tables is treated as holding nothing: its data is already
/// unreachable, and blocking the drain would not bring it back.
fn copy_out_solely_held(
    state: &FleetState,
    view: &Membership,
    doomed: &Arc<Backend>,
) -> Result<Vec<String>, Vec<String>> {
    let table_names = |body: &str| -> Vec<String> {
        serde_json::from_str_value(body)
            .ok()
            .and_then(|v| {
                v.get("tables").and_then(Value::as_array).map(|tables| {
                    tables
                        .iter()
                        .filter_map(|t| t.get("name").and_then(Value::as_str).map(str::to_string))
                        .collect()
                })
            })
            .unwrap_or_default()
    };
    let held: Vec<String> = match forward(state, doomed, "GET", "/tables", None) {
        Ok((200, body)) => table_names(&body),
        _ => return Ok(Vec::new()),
    };
    if held.is_empty() {
        return Ok(Vec::new());
    }
    // Who else holds what, asked in parallel. A member that fails to
    // answer contributes nothing — conservatively, that makes more
    // tables look solely-held, which errs toward copying.
    let others: Vec<&Arc<Backend>> = view
        .backends()
        .iter()
        .filter(|b| !Arc::ptr_eq(b, doomed))
        .collect();
    let listings: Vec<std::io::Result<(u16, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = others
            .iter()
            .map(|b| s.spawn(move || forward(state, b, "GET", "/tables", None)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("drain scatter thread panicked"))
            .collect()
    });
    let mut elsewhere: std::collections::HashSet<String> = std::collections::HashSet::new();
    for result in listings {
        if let Ok((200, body)) = result {
            elsewhere.extend(table_names(&body));
        }
    }
    let solely_held: Vec<String> = held
        .into_iter()
        .filter(|t| !elsewhere.contains(t))
        .collect();
    let mut copied = Vec::new();
    let mut stranded = Vec::new();
    for table in solely_held {
        let exported = match forward(state, doomed, "GET", &format!("/tables/{table}/csv"), None) {
            Ok((200, body)) => serde_json::from_str_value(&body)
                .ok()
                .and_then(|v| v.get("csv").and_then(Value::as_str).map(str::to_string)),
            _ => None,
        };
        // Target: the first healthy backend walking the ring from the
        // table's hash, skipping the leaving member — exactly where the
        // repair loop and failover reads will look for it afterwards.
        let target = view
            .replicas_for(&table, view.backends().len())
            .into_iter()
            .find(|b| !Arc::ptr_eq(b, doomed) && b.is_healthy());
        let ok = match (exported, target) {
            (Some(csv), Some(target)) => {
                let body =
                    serde_json::to_string(&Value::Object(vec![("csv".into(), Value::String(csv))]))
                        .expect("replicate bodies always render");
                matches!(
                    forward(state, &target, "PUT", &format!("/tables/{table}"), Some(&body)),
                    Ok((status, _)) if (200..300).contains(&status)
                )
            }
            _ => false,
        };
        if ok {
            state.metrics.drain_copyouts_total.inc();
            copied.push(table);
        } else {
            stranded.push(table);
        }
    }
    if stranded.is_empty() {
        Ok(copied)
    } else {
        Err(stranded)
    }
}

/// Scatter one GET to every backend of `view` in parallel; gather
/// `io::Result<(status, body)>` in membership order. Each leg adopts
/// the calling request's span context, so the fan-out shows up as
/// parallel `fleet.upstream` spans in its trace.
fn scatter_get(
    state: &FleetState,
    view: &Membership,
    path: &str,
) -> Vec<std::io::Result<(u16, String)>> {
    let ctx = span::current_recorder();
    std::thread::scope(|s| {
        let handles: Vec<_> = view
            .backends()
            .iter()
            .map(|b| {
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _adopted = ctx
                        .as_ref()
                        .map(|(rec, trace, parent)| span::adopt(Arc::clone(rec), trace, parent));
                    forward(state, b, "GET", path, None)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter thread panicked"))
            .collect()
    })
}

/// `GET /debug/traces` — the router's committed traces, newest first,
/// with the same filters as the single-node server (`?min_ms=`,
/// `?route=`, `?errors=1`). Listing stays local to the router; the
/// detail endpoint is where backend spans are gathered in.
fn handle_list_traces(state: &FleetState, req: &Request) -> Response {
    let min_us = match req.query_param("min_ms") {
        Some(raw) => match raw.parse::<u64>() {
            Ok(ms) => ms.saturating_mul(1000),
            Err(_) => return error_response(400, "`min_ms` must be an integer"),
        },
        None => 0,
    };
    let route = req.query_param("route");
    let errors_only = req.query_param("errors") == Some("1");
    let traces: Vec<Value> = state
        .recorder
        .recent()
        .iter()
        .filter(|e| e.duration_us >= min_us)
        .filter(|e| route.is_none_or(|r| e.route.as_deref() == Some(r)))
        .filter(|e| !errors_only || e.error)
        .map(|e| trace_json(e, false))
        .collect();
    Response::new(
        200,
        serde_json::to_string(&Value::Object(vec![(
            "traces".into(),
            Value::Array(traces),
        )]))
        .expect("trace listings always render"),
    )
}

/// `GET /debug/traces/{id}` — one trace, **fleet-assembled**: the
/// router's local spans (request root + upstream legs) plus every
/// backend's spans for the same trace id, scatter-gathered from their
/// `/debug/traces/{id}` and stamped with a `backend` field. The
/// backends' roots carry the upstream leg's span id as their parent
/// (propagated via `X-Span-Context`), so the merged flat list links
/// into one tree. A backend that fails to answer contributes nothing —
/// assembly degrades rather than 503s — and a trace the router already
/// evicted still renders from whatever the backends retained.
fn handle_get_trace(state: &FleetState, view: &Membership, id: &str) -> Response {
    let local = state.recorder.trace(id);
    let gathered = scatter_get(state, view, &format!("/debug/traces/{id}"));
    let mut remote_spans: Vec<Value> = Vec::new();
    for (backend, result) in view.backends().iter().zip(gathered) {
        let Ok((200, body)) = result else { continue };
        let Ok(v) = serde_json::from_str_value(&body) else {
            continue;
        };
        let Some(spans) = v.get("spans").and_then(Value::as_array) else {
            continue;
        };
        for s in spans {
            if let Value::Object(pairs) = s {
                let mut pairs = pairs.clone();
                pairs.push(("backend".into(), Value::String(backend.id().to_string())));
                remote_spans.push(Value::Object(pairs));
            }
        }
    }
    let mut pairs = match local {
        Some(entry) => match trace_json(&entry, true) {
            Value::Object(pairs) => pairs,
            _ => unreachable!("trace_json renders an object"),
        },
        None if remote_spans.is_empty() => {
            return error_response(404, &format!("no trace `{id}` anywhere in the fleet"));
        }
        // Evicted locally but still held by a backend: serve what
        // remains of the tree.
        None => vec![
            ("trace_id".into(), Value::String(id.to_string())),
            ("spans".into(), Value::Array(Vec::new())),
        ],
    };
    if let Some((_, Value::Array(spans))) = pairs.iter_mut().find(|(k, _)| k == "spans") {
        spans.extend(remote_spans);
    }
    Response::new(
        200,
        serde_json::to_string(&Value::Object(pairs)).expect("trace bodies always render"),
    )
}

/// The router's own metrics as a Prometheus document (`ziggy_fleet_`
/// prefix, so scraping a router and a backend into one job cannot
/// collide family names).
fn router_prometheus(state: &FleetState, view: &Membership) -> PromDoc {
    let mut doc = PromDoc::new();
    for (name, counter) in [
        ("ziggy_fleet_requests_total", &state.metrics.requests_total),
        ("ziggy_fleet_errors_total", &state.metrics.errors_total),
        ("ziggy_fleet_proxied_total", &state.metrics.proxied_total),
        (
            "ziggy_fleet_failovers_total",
            &state.metrics.failovers_total,
        ),
        (
            "ziggy_fleet_rate_limited_total",
            &state.metrics.rate_limited,
        ),
        (
            "ziggy_fleet_membership_changes_total",
            &state.metrics.membership_changes,
        ),
        ("ziggy_fleet_repairs_total", &state.metrics.repairs_total),
        (
            "ziggy_fleet_repair_failures_total",
            &state.metrics.repair_failures_total,
        ),
        (
            "ziggy_fleet_deletes_propagated_total",
            &state.metrics.deletes_propagated_total,
        ),
        (
            "ziggy_fleet_strays_collected_total",
            &state.metrics.strays_collected_total,
        ),
        (
            "ziggy_fleet_session_failovers_total",
            &state.metrics.session_failovers_total,
        ),
        (
            "ziggy_fleet_drain_copyouts_total",
            &state.metrics.drain_copyouts_total,
        ),
    ] {
        doc.counter(name, &[], counter.get());
    }
    let dp = &state.dataplane;
    for (name, value) in [
        (
            "ziggy_fleet_reactor_loop_iterations_total",
            &dp.loop_iterations,
        ),
        ("ziggy_fleet_reactor_wakeups_total", &dp.wakeups),
        ("ziggy_fleet_reactor_hot_requests_total", &dp.hot_requests),
        (
            "ziggy_fleet_reactor_offloaded_requests_total",
            &dp.offloaded_requests,
        ),
        (
            "ziggy_fleet_reactor_pool_checkouts_total",
            &dp.pool_checkouts,
        ),
        (
            "ziggy_fleet_reactor_pool_fresh_connects_total",
            &dp.pool_fresh_connects,
        ),
        (
            "ziggy_fleet_reactor_pool_retried_reconnects_total",
            &dp.pool_retried_reconnects,
        ),
    ] {
        doc.counter(name, &[], value.load(Ordering::Relaxed));
    }
    for (backend, gauge) in dp.pool_gauges() {
        doc.gauge(
            "ziggy_fleet_reactor_pool_connections",
            &[("backend", &backend), ("state", "idle")],
            gauge.idle as f64,
        );
        doc.gauge(
            "ziggy_fleet_reactor_pool_connections",
            &[("backend", &backend), ("state", "in_flight")],
            gauge.in_flight as f64,
        );
    }
    for b in view.backends() {
        let pool = b.pool().stats();
        doc.gauge(
            "ziggy_fleet_backend_pool_idle_connections",
            &[("backend", b.id())],
            pool.idle as f64,
        );
        doc.counter(
            "ziggy_fleet_backend_pool_checkouts_total",
            &[("backend", b.id())],
            pool.checkouts,
        );
        doc.counter(
            "ziggy_fleet_backend_pool_fresh_connects_total",
            &[("backend", b.id())],
            pool.fresh_connects,
        );
        doc.counter(
            "ziggy_fleet_backend_pool_retried_reconnects_total",
            &[("backend", b.id())],
            pool.retried_reconnects,
        );
    }
    doc.gauge(
        "ziggy_fleet_repair_clean_streak",
        &[],
        state.repair_clean_streak.load(Ordering::Relaxed) as f64,
    );
    doc.gauge("ziggy_fleet_epoch", &[], view.epoch() as f64);
    doc.gauge(
        "ziggy_fleet_uptime_seconds",
        &[],
        state.started.elapsed().as_secs_f64(),
    );
    doc.gauge(
        "ziggy_fleet_build_info",
        &[("version", env!("CARGO_PKG_VERSION"))],
        1.0,
    );
    doc.gauge("ziggy_fleet_backends", &[], view.backends().len() as f64);
    doc.gauge(
        "ziggy_fleet_backends_healthy",
        &[],
        view.backends().iter().filter(|b| b.is_healthy()).count() as f64,
    );
    for (route, hist) in state.route_latency.iter() {
        if hist.count() > 0 {
            doc.histogram_us(
                "ziggy_fleet_request_duration_seconds",
                &[("route", route)],
                &hist.snapshot(),
            );
        }
    }
    for b in view.backends() {
        if b.upstream_latency().count() > 0 {
            doc.histogram_us(
                "ziggy_fleet_upstream_duration_seconds",
                &[("backend", b.id())],
                &b.upstream_latency().snapshot(),
            );
        }
    }
    for (loop_name, stats) in [
        ("repair", &state.repair_stats),
        ("probe", &*state.probe_stats),
    ] {
        doc.counter(
            "ziggy_fleet_loop_rounds_total",
            &[("loop", loop_name)],
            stats.rounds(),
        );
        doc.counter(
            "ziggy_fleet_loop_round_failures_total",
            &[("loop", loop_name)],
            stats.failures(),
        );
        doc.gauge(
            "ziggy_fleet_loop_consecutive_failures",
            &[("loop", loop_name)],
            stats.consecutive_failures() as f64,
        );
        if let Some(age) = stats.last_round_age() {
            doc.gauge(
                "ziggy_fleet_loop_last_round_age_seconds",
                &[("loop", loop_name)],
                age.as_secs_f64(),
            );
        }
        if stats.durations().count() > 0 {
            doc.histogram_us(
                "ziggy_fleet_loop_round_duration_seconds",
                &[("loop", loop_name)],
                &stats.durations().snapshot(),
            );
        }
    }
    doc
}

/// `GET /metrics?format=prometheus`: the router's own families plus
/// every backend's exposition scatter-gathered in parallel, each sample
/// stamped with its `shard` label. A backend that fails to answer (or
/// answers unparseable text) contributes nothing — the scrape must
/// degrade, not 503.
fn handle_metrics_prometheus(state: &FleetState, view: &Membership) -> Response {
    let mut doc = router_prometheus(state, view);
    let gathered = scatter_get(state, view, "/metrics?format=prometheus");
    for (backend, result) in view.backends().iter().zip(gathered) {
        if let Ok((200, body)) = result {
            if let Ok(shard_doc) = PromDoc::parse(&body) {
                doc.absorb(shard_doc, Some(("shard", backend.id())));
            }
        }
    }
    Response::new(200, doc.render()).with_header("Content-Type", "text/plain; version=0.0.4")
}

fn handle_metrics(state: &FleetState, view: &Membership, req: &Request) -> Response {
    if req.query_param("format") == Some("prometheus") {
        return handle_metrics_prometheus(state, view);
    }
    let gathered = scatter_get(state, view, "/metrics");
    let shards: Vec<Value> = view
        .backends()
        .iter()
        .zip(gathered)
        .map(|(b, result)| {
            let metrics = match result {
                Ok((200, body)) => serde_json::from_str_value(&body).unwrap_or(Value::Null),
                _ => Value::Null,
            };
            let pool = b.pool().stats();
            Value::Object(vec![
                ("id".into(), Value::String(b.id().to_string())),
                ("addr".into(), Value::String(b.addr().to_string())),
                ("healthy".into(), Value::Bool(b.is_healthy())),
                ("failures_total".into(), num_u(b.failures_total())),
                (
                    "pool".into(),
                    Value::Object(vec![
                        ("idle".into(), num_u(pool.idle)),
                        ("checkouts_total".into(), num_u(pool.checkouts)),
                        ("fresh_connects_total".into(), num_u(pool.fresh_connects)),
                        (
                            "retried_reconnects_total".into(),
                            num_u(pool.retried_reconnects),
                        ),
                    ]),
                ),
                ("metrics".into(), metrics),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("router".into(), state.metrics.to_json()),
        ("dataplane".into(), state.dataplane.to_json()),
        (
            "latency_exemplars".into(),
            ziggy_serve::metrics::route_exemplars_json(&state.route_latency),
        ),
        ("epoch".into(), num_u(view.epoch())),
        ("replication".into(), num_u(state.replication as u64)),
        ("shards".into(), Value::Array(shards)),
    ]);
    Response::new(
        200,
        serde_json::to_string(&body).expect("metrics bodies always render"),
    )
}

fn handle_list_tables(state: &FleetState, view: &Membership) -> Response {
    let gathered = scatter_get(state, view, "/tables");
    // name -> (n_rows, n_cols, live replica count)
    let mut merged: HashMap<String, (u64, u64, u64)> = HashMap::new();
    for result in gathered {
        let Ok((200, body)) = result else { continue };
        let Ok(v) = serde_json::from_str_value(&body) else {
            continue;
        };
        let Some(tables) = v.get("tables").and_then(Value::as_array) else {
            continue;
        };
        for t in tables {
            let (Some(name), Some(rows), Some(cols)) = (
                t.get("name").and_then(Value::as_str),
                t.get("n_rows").and_then(Value::as_u64),
                t.get("n_cols").and_then(Value::as_u64),
            ) else {
                continue;
            };
            let entry = merged.entry(name.to_string()).or_insert((rows, cols, 0));
            entry.2 += 1;
        }
    }
    let mut names: Vec<&String> = merged.keys().collect();
    names.sort();
    let tables: Vec<Value> = names
        .iter()
        .map(|name| {
            let (rows, cols, replicas) = merged[*name];
            Value::Object(vec![
                ("name".into(), Value::String((*name).clone())),
                ("n_rows".into(), num_u(rows)),
                ("n_cols".into(), num_u(cols)),
                ("replicas".into(), num_u(replicas)),
            ])
        })
        .collect();
    Response::new(
        200,
        serde_json::to_string(&Value::Object(vec![(
            "tables".into(),
            Value::Array(tables),
        )]))
        .expect("table listings always render"),
    )
}

fn handle_create_table(state: &FleetState, view: &Membership, body: &[u8]) -> Response {
    let parsed = match parse_object(body) {
        Ok(v) => v,
        Err(e) => return error_response(e.status, &e.message),
    };
    let name = match required_str(&parsed, "name") {
        Ok(n) => n.to_string(),
        Err(e) => return error_response(e.status, &e.message),
    };
    // Validate *here*, not just on the backend: this name is about to be
    // interpolated into proxied request lines, where whitespace or CRLF
    // from a hostile JSON body would corrupt the framing of (or smuggle
    // a second request onto) a pooled backend connection.
    if !ziggy_serve::valid_table_name(&name) {
        return error_response(400, "table name must be 1-64 chars of [A-Za-z0-9_-]");
    }
    if required_str(&parsed, "csv").is_err() {
        return error_response(400, "missing string field `csv`");
    }
    let replicas = view.replicas_for(&name, state.replication);
    if replicas.is_empty() {
        return error_response(503, "fleet has no backends");
    }
    // Re-frame the upload as the idempotent replicate body so a retried
    // ingest (or a racing duplicate from another client) converges
    // instead of flapping 409.
    let replicate_body = serde_json::to_string(&Value::Object(vec![(
        "csv".into(),
        parsed.get("csv").expect("checked above").clone(),
    )]))
    .expect("replicate bodies always render");
    let path = format!("/tables/{name}");

    // Each replicate leg adopts the request's span context: the ingest
    // trace shows one parallel `fleet.upstream` per replica, with the
    // backend's own spans (durable append/fsync included) as children.
    let ctx = span::current_recorder();
    let results: Vec<std::io::Result<(u16, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = replicas
            .iter()
            .map(|b| {
                let replicate_body = replicate_body.as_str();
                let path = path.as_str();
                let ctx = ctx.clone();
                s.spawn(move || {
                    let _adopted = ctx
                        .as_ref()
                        .map(|(rec, trace, parent)| span::adopt(Arc::clone(rec), trace, parent));
                    forward(state, b, "PUT", path, Some(replicate_body))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest fan-out thread panicked"))
            .collect()
    });

    let mut placement: Vec<Value> = Vec::with_capacity(replicas.len());
    let mut first_success: Option<String> = None;
    let mut first_client_error: Option<(u16, String)> = None;
    let mut placed = 0u64;
    for (backend, result) in replicas.iter().zip(&results) {
        let status = match result {
            Ok((status, body)) => {
                if (200..300).contains(status) {
                    placed += 1;
                    if first_success.is_none() {
                        first_success = Some(body.clone());
                    }
                } else if (400..500).contains(status) && first_client_error.is_none() {
                    first_client_error = Some((*status, body.clone()));
                }
                num_u(u64::from(*status))
            }
            Err(_) => Value::Null,
        };
        placement.push(Value::Object(vec![
            ("backend".into(), Value::String(backend.id().to_string())),
            ("status".into(), status),
        ]));
    }

    let Some(success_body) = first_success else {
        // Nothing materialized. A deterministic client error (bad CSV,
        // name conflict) beats a vague 503.
        return match first_client_error {
            Some((status, body)) => Response::new(status, body),
            None => error_response(503, "no replica accepted the table"),
        };
    };
    let summary = serde_json::from_str_value(&success_body).unwrap_or(Value::Null);
    let body = Value::Object(vec![
        ("name".into(), Value::String(name)),
        (
            "n_rows".into(),
            summary.get("n_rows").cloned().unwrap_or(Value::Null),
        ),
        (
            "n_cols".into(),
            summary.get("n_cols").cloned().unwrap_or(Value::Null),
        ),
        ("placed".into(), num_u(placed)),
        ("replicas".into(), Value::Array(placement)),
    ]);
    Response::new(
        201,
        serde_json::to_string(&body).expect("placements always render"),
    )
}

/// Forwards a read to `table`'s replicas in routing order, failing over
/// on transport errors and 5xx; 404 is remembered but the other
/// replicas still get a chance (one replica may have missed the
/// materialization). `extra_headers` are forwarded on every leg (the
/// characterize path sends the client's `If-None-Match` so a replica
/// can answer `304` without shipping the body), and the winning
/// backend's `ETag` is relayed to the client verbatim. Tags are
/// deterministic across replicas (report bytes are timing-free), so
/// rotation and failover revalidate each other's tags with `304`s.
/// Returns the winning backend id for logging.
fn proxy_read_with_failover(
    state: &FleetState,
    view: &Membership,
    table: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> (Response, Option<String>) {
    let order = state.read_order(view, table);
    if order.is_empty() {
        return (error_response(503, "fleet has no backends"), None);
    }
    let mut fallback: Option<(u16, String)> = None;
    for (attempt, backend) in order.into_iter().enumerate() {
        if attempt > 0 {
            state.metrics.failovers_total.inc();
        }
        match forward_with_headers(state, &backend, method, path, extra_headers, body) {
            Ok((status, headers, resp_body)) => {
                if status == 404 || (500..600).contains(&status) {
                    if fallback.is_none() || status != 404 {
                        fallback = Some((status, resp_body));
                    }
                    continue;
                }
                // Verbatim: characterize responses (bytes, 304s, and
                // validators) must stay identical to a single-node
                // serve. Server-Timing rides along so the client sees
                // the winning replica's stage timings and reuse level.
                let mut response = Response::new(status, resp_body);
                if let Some((_, etag)) = headers.iter().find(|(k, _)| k == "etag") {
                    response = response.with_header("ETag", etag.clone());
                }
                if let Some((_, timing)) = headers.iter().find(|(k, _)| k == "server-timing") {
                    response = response.with_header("Server-Timing", timing.clone());
                }
                return (response, Some(backend.id().to_string()));
            }
            Err(_) => continue,
        }
    }
    match fallback {
        Some((status, body)) => (Response::new(status, body), None),
        None => (
            error_response(503, &format!("no live replica for table `{table}`")),
            None,
        ),
    }
}

fn handle_characterize(
    state: &FleetState,
    view: &Membership,
    name: &str,
    req: &Request,
    trace: Option<&str>,
) -> (Response, Option<String>) {
    let body = match utf8_body(&req.body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    // Forward the conditional header so the backend's report cache can
    // answer 304 without shipping the body across either hop, and the
    // trace id so the backend's access log carries it.
    let mut extra = trace_headers(trace);
    if let Some(v) = req.header("if-none-match") {
        extra.push(("If-None-Match", v));
    }
    let path = format!("/tables/{name}/characterize");
    proxy_read_with_failover(state, view, name, "POST", &path, &extra, Some(body))
}

fn handle_export_csv(
    state: &FleetState,
    view: &Membership,
    name: &str,
    trace: Option<&str>,
) -> (Response, Option<String>) {
    let path = format!("/tables/{name}/csv");
    proxy_read_with_failover(state, view, name, "GET", &path, &trace_headers(trace), None)
}

/// Deletes a table from **every member**, not just its nominal replica
/// set. Membership churn strands copies on backends the ring walked
/// away from; a delete that missed them would leave the repair loop a
/// live "holder" to faithfully re-materialize from — a deleted table
/// resurrecting itself. Sweeping all members makes delete and repair
/// agree. (A backend that is *outside the membership* at delete time
/// and later rejoins can still bring a stale copy back — see ROADMAP.)
fn handle_delete_table(state: &FleetState, view: &Membership, name: &str) -> Response {
    let members = view.backends();
    if members.is_empty() {
        return error_response(503, "fleet has no backends");
    }
    let path = format!("/tables/{name}");
    let mut statuses: Vec<Value> = Vec::with_capacity(members.len());
    let mut any_deleted = false;
    let mut all_404 = true;
    for backend in members {
        match forward(state, backend, "DELETE", &path, None) {
            Ok((status, _)) => {
                any_deleted |= (200..300).contains(&status);
                all_404 &= status == 404;
                statuses.push(Value::Object(vec![
                    ("backend".into(), Value::String(backend.id().to_string())),
                    ("status".into(), num_u(u64::from(status))),
                ]));
            }
            Err(_) => {
                all_404 = false;
                statuses.push(Value::Object(vec![
                    ("backend".into(), Value::String(backend.id().to_string())),
                    ("status".into(), Value::Null),
                ]));
            }
        }
    }
    if any_deleted {
        // Cascade only on an actual delete: a failed fan-out (every
        // replica unreachable) must not wipe live sessions on a table
        // that still exists everywhere.
        state.sessions.write().retain(|_, s| s.table != name);
        Response::new(
            200,
            serde_json::to_string(&Value::Object(vec![
                ("deleted".into(), Value::String(name.to_string())),
                ("replicas".into(), Value::Array(statuses)),
            ]))
            .expect("delete bodies always render"),
        )
    } else if all_404 {
        error_response(404, &format!("no table named `{name}`"))
    } else {
        error_response(503, &format!("no live replica for table `{name}`"))
    }
}

fn handle_create_session(
    state: &FleetState,
    view: &Membership,
    body: &[u8],
    trace: Option<&str>,
) -> (Response, Option<String>) {
    let parsed = match parse_object(body) {
        Ok(v) => v,
        Err(e) => return (error_response(e.status, &e.message), None),
    };
    let table = match required_str(&parsed, "table") {
        Ok(t) => t.to_string(),
        Err(e) => return (error_response(e.status, &e.message), None),
    };
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    state.sweep_sessions();
    if state.sessions.read().len() >= MAX_FLEET_SESSIONS {
        return (
            error_response(
                409,
                &format!("session limit reached ({MAX_FLEET_SESSIONS})"),
            ),
            None,
        );
    }
    let order = state.read_order(view, &table);
    if order.is_empty() {
        return (error_response(503, "fleet has no backends"), None);
    }
    let mut fallback: Option<(u16, String)> = None;
    for backend in order {
        let leg = forward_with_headers(
            state,
            &backend,
            "POST",
            "/sessions",
            &trace_headers(trace),
            Some(body),
        )
        .map(|(status, _, resp_body)| (status, resp_body));
        match leg {
            Ok((201, resp_body)) => {
                let Some(backend_session) = serde_json::from_str_value(&resp_body)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("session_id"))
                    .and_then(Value::as_u64)
                else {
                    fallback = Some((
                        502,
                        r#"{"error":"backend returned a malformed session"}"#.into(),
                    ));
                    continue;
                };
                let id = state.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                {
                    // Authoritative cap check under the write lock: the
                    // read-lock pre-check above races concurrent
                    // creates, and the bound must actually hold.
                    let mut sessions = state.sessions.write();
                    if sessions.len() >= MAX_FLEET_SESSIONS {
                        drop(sessions);
                        // Undo the backend half so it does not linger
                        // until its TTL.
                        let path = format!("/sessions/{backend_session}");
                        let _ = forward(state, &backend, "DELETE", &path, None);
                        return (
                            error_response(
                                409,
                                &format!("session limit reached ({MAX_FLEET_SESSIONS})"),
                            ),
                            None,
                        );
                    }
                    sessions.insert(
                        id,
                        FleetSession {
                            backend: Arc::clone(&backend),
                            backend_session,
                            table: table.clone(),
                            queries: Vec::new(),
                            last_used: Instant::now(),
                        },
                    );
                }
                let backend_id = backend.id().to_string();
                let resp = Value::Object(vec![
                    ("session_id".into(), num_u(id)),
                    ("table".into(), Value::String(table)),
                    ("backend".into(), Value::String(backend_id.clone())),
                ]);
                return (
                    Response::new(
                        201,
                        serde_json::to_string(&resp).expect("session bodies always render"),
                    ),
                    Some(backend_id),
                );
            }
            Ok((status, resp_body)) => {
                if fallback.is_none() || status != 404 {
                    fallback = Some((status, resp_body));
                }
                continue;
            }
            Err(_) => {
                state.metrics.failovers_total.inc();
                continue;
            }
        }
    }
    match fallback {
        Some((status, body)) => (Response::new(status, body), None),
        None => (
            error_response(503, &format!("no live replica for table `{table}`")),
            None,
        ),
    }
}

fn parse_fleet_session_id(id: &str) -> Result<u64, Response> {
    id.parse()
        .map_err(|_| error_response(400, "session id must be an integer"))
}

/// Appends one stepped query to a session's failover ledger, mirroring
/// the backend's own history cap so the ledger and the real history
/// describe the same window.
fn record_query(session: &mut FleetSession, query: &str) {
    if session.queries.len() >= ziggy_serve::sessions::MAX_HISTORY {
        session.queries.remove(0);
    }
    session.queries.push(query.to_string());
}

fn handle_session_step(
    state: &FleetState,
    id: &str,
    body: &[u8],
    trace: Option<&str>,
) -> (Response, Option<String>) {
    let id = match parse_fleet_session_id(id) {
        Ok(id) => id,
        Err(resp) => return (resp, None),
    };
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    state.sweep_sessions();
    let (backend, backend_session) = {
        let sessions = state.sessions.read();
        match sessions.get(&id) {
            Some(s) => (Arc::clone(&s.backend), s.backend_session),
            None => return (error_response(404, &format!("no session {id}")), None),
        }
    };
    // The stepped query, for the failover ledger (a body the backend
    // will reject never needs replaying).
    let query: Option<String> = parse_object(body.as_bytes())
        .ok()
        .and_then(|v| v.get("query").and_then(Value::as_str).map(str::to_string));
    let path = format!("/sessions/{backend_session}/step");
    let leg = forward_with_headers(
        state,
        &backend,
        "POST",
        &path,
        &trace_headers(trace),
        Some(body),
    )
    .map(|(status, _, resp_body)| (status, resp_body));
    match leg {
        Ok((404, resp_body)) => {
            // The backend forgot the session (TTL expiry, table delete):
            // the fleet mapping is stale too.
            state.sessions.write().remove(&id);
            (Response::new(404, resp_body), None)
        }
        Ok((status, resp_body)) => {
            if let Some(s) = state.sessions.write().get_mut(&id) {
                s.last_used = Instant::now();
                if (200..300).contains(&status) {
                    if let Some(q) = &query {
                        record_query(s, q);
                    }
                }
            }
            (
                Response::new(status, resp_body),
                Some(backend.id().to_string()),
            )
        }
        // The home backend is gone at the transport level. Session
        // history lives in that process's memory, but the router holds
        // the ledger of every query stepped so far — rebuild the
        // session on another replica of the table and continue the
        // conversation there.
        Err(_) => failover_session(state, id, &backend, query.as_deref(), body, trace),
    }
}

/// Rebuilds a dead-homed session on another healthy replica of its
/// table: create a fresh backend session, replay the recorded queries
/// in order (reports are deterministic, so the rebuilt history matches
/// the lost one), then forward the interrupted step. On success the
/// fleet mapping is re-pointed and the response carries an
/// `X-Fleet-Session-Failover` header naming the new home. Only when no
/// replica can host the rebuild — the table has no other live copy —
/// does the client see a 503, and that 503 states exactly that, instead
/// of the old blanket "create a new session" hint for a session that
/// was in fact recoverable.
fn failover_session(
    state: &FleetState,
    id: u64,
    dead: &Arc<Backend>,
    query: Option<&str>,
    step_body: &str,
    trace: Option<&str>,
) -> (Response, Option<String>) {
    let (table, queries) = {
        let sessions = state.sessions.read();
        match sessions.get(&id) {
            Some(s) => (s.table.clone(), s.queries.clone()),
            None => return (error_response(404, &format!("no session {id}")), None),
        }
    };
    let view = state.membership();
    let candidates: Vec<Arc<Backend>> = state
        .read_order(&view, &table)
        .into_iter()
        .filter(|b| !Arc::ptr_eq(b, dead))
        .collect();
    let create_body = serde_json::to_string(&Value::Object(vec![(
        "table".into(),
        Value::String(table.clone()),
    )]))
    .expect("session bodies always render");
    for backend in candidates {
        let created = forward_with_headers(
            state,
            &backend,
            "POST",
            "/sessions",
            &trace_headers(trace),
            Some(&create_body),
        )
        .map(|(status, _, resp_body)| (status, resp_body));
        let Ok((201, resp_body)) = created else {
            continue;
        };
        let Some(new_session) = serde_json::from_str_value(&resp_body)
            .ok()
            .as_ref()
            .and_then(|v| v.get("session_id"))
            .and_then(Value::as_u64)
        else {
            continue;
        };
        let step_path = format!("/sessions/{new_session}/step");
        let abandon = |host: &Arc<Backend>| {
            let _ = forward(
                state,
                host,
                "DELETE",
                &format!("/sessions/{new_session}"),
                None,
            );
        };
        // Replay the ledger. Any refused replay leg means this replica
        // cannot faithfully host the session; try the next one.
        let mut replayed = true;
        for q in &queries {
            let replay_body = serde_json::to_string(&Value::Object(vec![(
                "query".into(),
                Value::String(q.clone()),
            )]))
            .expect("session bodies always render");
            match forward(state, &backend, "POST", &step_path, Some(&replay_body)) {
                Ok((status, _)) if (200..300).contains(&status) => {}
                _ => {
                    replayed = false;
                    break;
                }
            }
        }
        if !replayed {
            abandon(&backend);
            continue;
        }
        // The interrupted step itself. A client error (bad query) still
        // counts as a successful failover — the session lives here now
        // and the client sees the same 4xx a healthy home would return.
        let stepped = forward_with_headers(
            state,
            &backend,
            "POST",
            &step_path,
            &trace_headers(trace),
            Some(step_body),
        )
        .map(|(status, _, resp_body)| (status, resp_body));
        match stepped {
            Ok((status, resp_body)) if status != 404 && !(500..600).contains(&status) => {
                if let Some(s) = state.sessions.write().get_mut(&id) {
                    s.backend = Arc::clone(&backend);
                    s.backend_session = new_session;
                    s.last_used = Instant::now();
                    if (200..300).contains(&status) {
                        if let Some(q) = query {
                            record_query(s, q);
                        }
                    }
                }
                state.metrics.session_failovers_total.inc();
                state.metrics.failovers_total.inc();
                let backend_id = backend.id().to_string();
                return (
                    Response::new(status, resp_body)
                        .with_header("X-Fleet-Session-Failover", backend_id.clone()),
                    Some(backend_id),
                );
            }
            _ => {
                abandon(&backend);
                continue;
            }
        }
    }
    (
        error_response(
            503,
            &format!(
                "session {id} is unrecoverable: its home backend is unreachable and no other \
                 live replica of table `{table}` could rebuild it from {} recorded step(s)",
                queries.len()
            ),
        ),
        None,
    )
}

fn handle_delete_session(state: &FleetState, id: &str) -> (Response, Option<String>) {
    let id = match parse_fleet_session_id(id) {
        Ok(id) => id,
        Err(resp) => return (resp, None),
    };
    let Some(session) = state.sessions.write().remove(&id) else {
        return (error_response(404, &format!("no session {id}")), None);
    };
    // Best effort downstream: if the backend is unreachable its own TTL
    // sweep will reap the session; the fleet id is gone either way.
    let path = format!("/sessions/{}", session.backend_session);
    let _ = forward(state, &session.backend, "DELETE", &path, None);
    (
        Response::new(
            200,
            serde_json::to_string(&Value::Object(vec![("deleted".into(), num_u(id))]))
                .expect("delete bodies always render"),
        ),
        Some(session.backend.id().to_string()),
    )
}
