//! The fleet's request router: placement, replication, failover,
//! scatter-gather.
//!
//! Every table-addressed request hashes the table name onto the
//! [`HashRing`] to get its replica set (R backends in deterministic
//! failover order). Reads (`characterize`) try replicas healthy-first,
//! rotated per-request so load spreads across the replica set; a connect
//! or IO error marks the backend and fails over to the next replica
//! without the client noticing. Writes (ingest, delete) fan out to the
//! whole replica set. Fleet-wide reads (`GET /tables`, `GET /metrics`)
//! scatter to every backend in parallel and gather one merged document.
//!
//! Sessions are *sticky*: a session is created on one replica and its
//! steps always route there, because session history lives in that
//! backend's memory. If the replica dies, steps answer 503 and the
//! client re-creates the session (cross-shard session replication is
//! future work — see ROADMAP).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use ziggy_serve::http::{Request, Response};
use ziggy_serve::json::{parse_object, required_str};
use ziggy_serve::metrics::Counter;

use crate::backend::Backend;
use crate::ring::HashRing;

fn num_u(n: u64) -> Value {
    Value::Number(serde_json::Number::U(n))
}

fn error_response(status: u16, message: &str) -> Response {
    Response::new(
        status,
        serde_json::to_string(&Value::Object(vec![(
            "error".into(),
            Value::String(message.into()),
        )]))
        .expect("error bodies always render"),
    )
}

/// Router-level counters (backend `/metrics` are gathered separately).
#[derive(Debug, Default)]
pub struct FleetMetrics {
    /// Requests that reached the fleet router.
    pub requests_total: Counter,
    /// Requests answered with 4xx/5xx by the router itself.
    pub errors_total: Counter,
    /// Requests forwarded to a backend (including fan-out legs).
    pub proxied_total: Counter,
    /// Failovers: a replica attempt failed at the transport level and
    /// the request moved on to the next replica.
    pub failovers_total: Counter,
    /// Requests refused with 429 by the router's rate limiter.
    pub rate_limited: Counter,
}

impl FleetMetrics {
    fn to_json(&self) -> Value {
        Value::Object(vec![
            ("requests_total".into(), num_u(self.requests_total.get())),
            ("errors_total".into(), num_u(self.errors_total.get())),
            ("proxied_total".into(), num_u(self.proxied_total.get())),
            ("failovers_total".into(), num_u(self.failovers_total.get())),
            ("rate_limited".into(), num_u(self.rate_limited.get())),
        ])
    }
}

/// Upper bound on live fleet→backend session mappings; creation beyond
/// it is refused (409). Mirrors the single-node `MAX_SESSIONS` so the
/// router cannot be grown without bound by abandoned clients.
pub const MAX_FLEET_SESSIONS: usize = 4096;

/// A fleet session: which backend holds the real session, under what id.
struct FleetSession {
    backend: usize,
    backend_session: u64,
    table: String,
    /// Last create/step activity; mappings idle past the TTL are swept
    /// (their backend sessions expire independently on the backend).
    last_used: Instant,
}

/// Shared router state: the ring, the backends, the session map.
pub struct FleetState {
    backends: Vec<Arc<Backend>>,
    ring: HashRing,
    replication: usize,
    sessions: RwLock<HashMap<u64, FleetSession>>,
    next_session: AtomicU64,
    /// Idle TTL for session mappings; `None` disables sweeping (the
    /// [`MAX_FLEET_SESSIONS`] cap still bounds the map).
    session_ttl: Option<Duration>,
    /// Last sweep time, for throttling (see
    /// [`FleetState::sweep_sessions`]).
    last_session_sweep: Mutex<Option<Instant>>,
    /// Per-request rotation so reads spread over a table's replica set.
    round_robin: AtomicUsize,
    /// Router-level counters.
    pub metrics: FleetMetrics,
}

impl FleetState {
    /// Builds the router state over `backends` with `replication`
    /// replicas per table (clamped to the fleet size), `vnodes` virtual
    /// nodes per backend, and an idle TTL for session mappings.
    pub fn new(
        backends: Vec<Arc<Backend>>,
        replication: usize,
        vnodes: usize,
        session_ttl: Option<Duration>,
    ) -> Self {
        let ids: Vec<String> = backends.iter().map(|b| b.id().to_string()).collect();
        Self {
            ring: HashRing::build(&ids, vnodes),
            replication: replication.clamp(1, backends.len().max(1)),
            backends,
            sessions: RwLock::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            session_ttl,
            last_session_sweep: Mutex::new(None),
            round_robin: AtomicUsize::new(0),
            metrics: FleetMetrics::default(),
        }
    }

    /// Drops session mappings idle past the TTL. Abandoned sessions
    /// would otherwise accumulate forever: the backend's own TTL reaps
    /// *its* half, but the router only notices on an explicit DELETE or
    /// a step that happens to see the backend's 404. Throttled to ~8
    /// sweeps per TTL so the step path stays O(1).
    fn sweep_sessions(&self) {
        let Some(ttl) = self.session_ttl else { return };
        let interval = (ttl / 8).max(Duration::from_millis(10));
        {
            let mut last = self.last_session_sweep.lock();
            let now = Instant::now();
            match *last {
                Some(prev) if now.duration_since(prev) < interval => return,
                _ => *last = Some(now),
            }
        }
        let now = Instant::now();
        self.sessions
            .write()
            .retain(|_, s| now.duration_since(s.last_used) < ttl);
    }

    /// The backends, in ring index order.
    pub fn backends(&self) -> &[Arc<Backend>] {
        &self.backends
    }

    /// The consistent-hash ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// Replicas per table.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The replica set for `table`, in ring (failover) order.
    pub fn replicas_for(&self, table: &str) -> Vec<usize> {
        self.ring.replicas_for(table, self.replication)
    }

    /// The replica set for `table` in *routing* order for a read:
    /// healthy backends first, rotated by a per-request counter so
    /// repeated reads of one table spread across its replicas; unhealthy
    /// backends trail as a last resort (the prober may lag reality, and
    /// a desperate try beats a guaranteed 503).
    fn read_order(&self, table: &str) -> Vec<usize> {
        let replicas = self.replicas_for(table);
        if replicas.is_empty() {
            return replicas;
        }
        let rotation = self.round_robin.fetch_add(1, Ordering::Relaxed) % replicas.len();
        let mut ordered: Vec<usize> = Vec::with_capacity(replicas.len());
        for healthy_pass in [true, false] {
            for offset in 0..replicas.len() {
                let idx = replicas[(rotation + offset) % replicas.len()];
                if self.backends[idx].is_healthy() == healthy_pass && !ordered.contains(&idx) {
                    ordered.push(idx);
                }
            }
        }
        ordered
    }
}

/// Routes one request. Returns the response plus the id of the backend
/// that served it, when exactly one did (for the access log).
pub fn route_fleet(state: &FleetState, req: &Request) -> (Response, Option<String>) {
    state.metrics.requests_total.inc();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let (response, backend) = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => (handle_healthz(state), None),
        ("GET", ["metrics"]) => (handle_metrics(state), None),
        ("GET", ["tables"]) => (handle_list_tables(state), None),
        ("POST", ["tables"]) => (handle_create_table(state, &req.body), None),
        ("POST", ["tables", name, "characterize"]) => handle_characterize(state, name, req),
        ("DELETE", ["tables", name]) => (handle_delete_table(state, name), None),
        ("POST", ["sessions"]) => handle_create_session(state, &req.body),
        ("POST", ["sessions", id, "step"]) => handle_session_step(state, id, &req.body),
        ("DELETE", ["sessions", id]) => handle_delete_session(state, id),
        (
            _,
            ["healthz"]
            | ["metrics"]
            | ["tables"]
            | ["tables", _]
            | ["tables", _, "characterize"]
            | ["sessions"]
            | ["sessions", _]
            | ["sessions", _, "step"],
        ) => (error_response(405, "method not allowed"), None),
        _ => (
            error_response(404, &format!("no route for {}", req.path)),
            None,
        ),
    };
    if response.status >= 400 {
        state.metrics.errors_total.inc();
    }
    (response, backend)
}

/// Whether a forwarded request may be transparently re-sent by the
/// connection pool. GET/PUT/DELETE are idempotent by contract (the
/// replicate path is *designed* to converge on retry), and POST
/// characterize is a pure read; POST session create/step mutate backend
/// state, so a duplicate would orphan a session or double-advance a
/// history.
fn retry_safe(method: &str, path: &str) -> bool {
    method != "POST" || path.ends_with("/characterize")
}

/// One forwarded request leg, with passive health bookkeeping.
fn forward(
    state: &FleetState,
    backend: usize,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = forward_with_headers(state, backend, method, path, &[], body)?;
    Ok((status, body))
}

/// [`forward`] carrying extra request headers and returning the
/// backend's response headers — the conditional-request leg of the
/// characterize proxy path.
fn forward_with_headers(
    state: &FleetState,
    backend: usize,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> std::io::Result<ziggy_serve::http::FullResponse> {
    state.metrics.proxied_total.inc();
    let b = &state.backends[backend];
    match b
        .pool()
        .request_with_headers(method, path, extra_headers, body, retry_safe(method, path))
    {
        Ok(response) => {
            b.record_success();
            Ok(response)
        }
        Err(e) => {
            b.record_failure();
            Err(e)
        }
    }
}

fn utf8_body(body: &[u8]) -> Result<&str, Response> {
    std::str::from_utf8(body).map_err(|_| error_response(400, "request body is not UTF-8"))
}

fn handle_healthz(state: &FleetState) -> Response {
    let backends: Vec<Value> = state
        .backends
        .iter()
        .map(|b| {
            Value::Object(vec![
                ("id".into(), Value::String(b.id().to_string())),
                ("addr".into(), Value::String(b.addr().to_string())),
                ("healthy".into(), Value::Bool(b.is_healthy())),
            ])
        })
        .collect();
    let any_healthy = state.backends.iter().any(|b| b.is_healthy());
    let body = Value::Object(vec![
        (
            "status".into(),
            Value::String(if any_healthy { "ok" } else { "degraded" }.into()),
        ),
        ("replication".into(), num_u(state.replication as u64)),
        ("backends".into(), Value::Array(backends)),
    ]);
    Response::new(
        if any_healthy { 200 } else { 503 },
        serde_json::to_string(&body).expect("health bodies always render"),
    )
}

/// Scatter one GET to every backend in parallel; gather
/// `(backend index, io::Result<(status, body)>)` in index order.
fn scatter_get(state: &FleetState, path: &str) -> Vec<std::io::Result<(u16, String)>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..state.backends.len())
            .map(|i| s.spawn(move || forward(state, i, "GET", path, None)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scatter thread panicked"))
            .collect()
    })
}

fn handle_metrics(state: &FleetState) -> Response {
    let gathered = scatter_get(state, "/metrics");
    let shards: Vec<Value> = state
        .backends
        .iter()
        .zip(gathered)
        .map(|(b, result)| {
            let metrics = match result {
                Ok((200, body)) => serde_json::from_str_value(&body).unwrap_or(Value::Null),
                _ => Value::Null,
            };
            Value::Object(vec![
                ("id".into(), Value::String(b.id().to_string())),
                ("addr".into(), Value::String(b.addr().to_string())),
                ("healthy".into(), Value::Bool(b.is_healthy())),
                ("failures_total".into(), num_u(b.failures_total())),
                ("metrics".into(), metrics),
            ])
        })
        .collect();
    let body = Value::Object(vec![
        ("router".into(), state.metrics.to_json()),
        ("replication".into(), num_u(state.replication as u64)),
        ("shards".into(), Value::Array(shards)),
    ]);
    Response::new(
        200,
        serde_json::to_string(&body).expect("metrics bodies always render"),
    )
}

fn handle_list_tables(state: &FleetState) -> Response {
    let gathered = scatter_get(state, "/tables");
    // name -> (n_rows, n_cols, live replica count)
    let mut merged: HashMap<String, (u64, u64, u64)> = HashMap::new();
    for result in gathered {
        let Ok((200, body)) = result else { continue };
        let Ok(v) = serde_json::from_str_value(&body) else {
            continue;
        };
        let Some(tables) = v.get("tables").and_then(Value::as_array) else {
            continue;
        };
        for t in tables {
            let (Some(name), Some(rows), Some(cols)) = (
                t.get("name").and_then(Value::as_str),
                t.get("n_rows").and_then(Value::as_u64),
                t.get("n_cols").and_then(Value::as_u64),
            ) else {
                continue;
            };
            let entry = merged.entry(name.to_string()).or_insert((rows, cols, 0));
            entry.2 += 1;
        }
    }
    let mut names: Vec<&String> = merged.keys().collect();
    names.sort();
    let tables: Vec<Value> = names
        .iter()
        .map(|name| {
            let (rows, cols, replicas) = merged[*name];
            Value::Object(vec![
                ("name".into(), Value::String((*name).clone())),
                ("n_rows".into(), num_u(rows)),
                ("n_cols".into(), num_u(cols)),
                ("replicas".into(), num_u(replicas)),
            ])
        })
        .collect();
    Response::new(
        200,
        serde_json::to_string(&Value::Object(vec![(
            "tables".into(),
            Value::Array(tables),
        )]))
        .expect("table listings always render"),
    )
}

fn handle_create_table(state: &FleetState, body: &[u8]) -> Response {
    let parsed = match parse_object(body) {
        Ok(v) => v,
        Err(e) => return error_response(e.status, &e.message),
    };
    let name = match required_str(&parsed, "name") {
        Ok(n) => n.to_string(),
        Err(e) => return error_response(e.status, &e.message),
    };
    // Validate *here*, not just on the backend: this name is about to be
    // interpolated into proxied request lines, where whitespace or CRLF
    // from a hostile JSON body would corrupt the framing of (or smuggle
    // a second request onto) a pooled backend connection.
    if !ziggy_serve::valid_table_name(&name) {
        return error_response(400, "table name must be 1-64 chars of [A-Za-z0-9_-]");
    }
    if required_str(&parsed, "csv").is_err() {
        return error_response(400, "missing string field `csv`");
    }
    let replicas = state.replicas_for(&name);
    if replicas.is_empty() {
        return error_response(503, "fleet has no backends");
    }
    // Re-frame the upload as the idempotent replicate body so a retried
    // ingest (or a racing duplicate from another client) converges
    // instead of flapping 409.
    let replicate_body = serde_json::to_string(&Value::Object(vec![(
        "csv".into(),
        parsed.get("csv").expect("checked above").clone(),
    )]))
    .expect("replicate bodies always render");
    let path = format!("/tables/{name}");

    let results: Vec<std::io::Result<(u16, String)>> = std::thread::scope(|s| {
        let handles: Vec<_> = replicas
            .iter()
            .map(|&i| {
                let replicate_body = replicate_body.as_str();
                let path = path.as_str();
                s.spawn(move || forward(state, i, "PUT", path, Some(replicate_body)))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("ingest fan-out thread panicked"))
            .collect()
    });

    let mut placement: Vec<Value> = Vec::with_capacity(replicas.len());
    let mut first_success: Option<String> = None;
    let mut first_client_error: Option<(u16, String)> = None;
    let mut placed = 0u64;
    for (&i, result) in replicas.iter().zip(&results) {
        let backend = &state.backends[i];
        let status = match result {
            Ok((status, body)) => {
                if (200..300).contains(status) {
                    placed += 1;
                    if first_success.is_none() {
                        first_success = Some(body.clone());
                    }
                } else if (400..500).contains(status) && first_client_error.is_none() {
                    first_client_error = Some((*status, body.clone()));
                }
                num_u(u64::from(*status))
            }
            Err(_) => Value::Null,
        };
        placement.push(Value::Object(vec![
            ("backend".into(), Value::String(backend.id().to_string())),
            ("status".into(), status),
        ]));
    }

    let Some(success_body) = first_success else {
        // Nothing materialized. A deterministic client error (bad CSV,
        // name conflict) beats a vague 503.
        return match first_client_error {
            Some((status, body)) => Response::new(status, body),
            None => error_response(503, "no replica accepted the table"),
        };
    };
    let summary = serde_json::from_str_value(&success_body).unwrap_or(Value::Null);
    let body = Value::Object(vec![
        ("name".into(), Value::String(name)),
        (
            "n_rows".into(),
            summary.get("n_rows").cloned().unwrap_or(Value::Null),
        ),
        (
            "n_cols".into(),
            summary.get("n_cols").cloned().unwrap_or(Value::Null),
        ),
        ("placed".into(), num_u(placed)),
        ("replicas".into(), Value::Array(placement)),
    ]);
    Response::new(
        201,
        serde_json::to_string(&body).expect("placements always render"),
    )
}

/// Forwards a read to `table`'s replicas in routing order, failing over
/// on transport errors and 5xx; 404 is remembered but the other
/// replicas still get a chance (one replica may have missed the
/// materialization). `extra_headers` are forwarded on every leg (the
/// characterize path sends the client's `If-None-Match` so a replica
/// can answer `304` without shipping the body), and the winning
/// backend's `ETag` is relayed to the client verbatim. The tag
/// fingerprints one replica's cached bytes (stage timings included), so
/// after a rotation or failover to a replica that built its own copy a
/// conditional request may be answered `200` with that replica's bytes
/// instead of `304` — a re-transfer, never a stale or wrong report.
/// Returns the winning backend id for logging.
fn proxy_read_with_failover(
    state: &FleetState,
    table: &str,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: Option<&str>,
) -> (Response, Option<String>) {
    let order = state.read_order(table);
    if order.is_empty() {
        return (error_response(503, "fleet has no backends"), None);
    }
    let mut fallback: Option<(u16, String)> = None;
    for (attempt, backend) in order.into_iter().enumerate() {
        if attempt > 0 {
            state.metrics.failovers_total.inc();
        }
        match forward_with_headers(state, backend, method, path, extra_headers, body) {
            Ok((status, headers, resp_body)) => {
                if status == 404 || (500..600).contains(&status) {
                    if fallback.is_none() || status != 404 {
                        fallback = Some((status, resp_body));
                    }
                    continue;
                }
                // Verbatim: characterize responses (bytes, 304s, and
                // validators) must stay identical to a single-node
                // serve.
                let mut response = Response::new(status, resp_body);
                if let Some((_, etag)) = headers.iter().find(|(k, _)| k == "etag") {
                    response = response.with_header("ETag", etag.clone());
                }
                return (response, Some(state.backends[backend].id().to_string()));
            }
            Err(_) => continue,
        }
    }
    match fallback {
        Some((status, body)) => (Response::new(status, body), None),
        None => (
            error_response(503, &format!("no live replica for table `{table}`")),
            None,
        ),
    }
}

fn handle_characterize(
    state: &FleetState,
    name: &str,
    req: &Request,
) -> (Response, Option<String>) {
    let body = match utf8_body(&req.body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    // Forward the conditional header so the backend's report cache can
    // answer 304 without shipping the body across either hop.
    let conditional: Vec<(&str, &str)> = req
        .header("if-none-match")
        .map(|v| vec![("If-None-Match", v)])
        .unwrap_or_default();
    let path = format!("/tables/{name}/characterize");
    proxy_read_with_failover(state, name, "POST", &path, &conditional, Some(body))
}

fn handle_delete_table(state: &FleetState, name: &str) -> Response {
    let replicas = state.replicas_for(name);
    if replicas.is_empty() {
        return error_response(503, "fleet has no backends");
    }
    let path = format!("/tables/{name}");
    let mut statuses: Vec<Value> = Vec::with_capacity(replicas.len());
    let mut any_deleted = false;
    let mut all_404 = true;
    for &i in &replicas {
        match forward(state, i, "DELETE", &path, None) {
            Ok((status, _)) => {
                any_deleted |= (200..300).contains(&status);
                all_404 &= status == 404;
                statuses.push(Value::Object(vec![
                    (
                        "backend".into(),
                        Value::String(state.backends[i].id().to_string()),
                    ),
                    ("status".into(), num_u(u64::from(status))),
                ]));
            }
            Err(_) => {
                all_404 = false;
                statuses.push(Value::Object(vec![
                    (
                        "backend".into(),
                        Value::String(state.backends[i].id().to_string()),
                    ),
                    ("status".into(), Value::Null),
                ]));
            }
        }
    }
    if any_deleted {
        // Cascade only on an actual delete: a failed fan-out (every
        // replica unreachable) must not wipe live sessions on a table
        // that still exists everywhere.
        state.sessions.write().retain(|_, s| s.table != name);
        Response::new(
            200,
            serde_json::to_string(&Value::Object(vec![
                ("deleted".into(), Value::String(name.to_string())),
                ("replicas".into(), Value::Array(statuses)),
            ]))
            .expect("delete bodies always render"),
        )
    } else if all_404 {
        error_response(404, &format!("no table named `{name}`"))
    } else {
        error_response(503, &format!("no live replica for table `{name}`"))
    }
}

fn handle_create_session(state: &FleetState, body: &[u8]) -> (Response, Option<String>) {
    let parsed = match parse_object(body) {
        Ok(v) => v,
        Err(e) => return (error_response(e.status, &e.message), None),
    };
    let table = match required_str(&parsed, "table") {
        Ok(t) => t.to_string(),
        Err(e) => return (error_response(e.status, &e.message), None),
    };
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    state.sweep_sessions();
    if state.sessions.read().len() >= MAX_FLEET_SESSIONS {
        return (
            error_response(
                409,
                &format!("session limit reached ({MAX_FLEET_SESSIONS})"),
            ),
            None,
        );
    }
    let order = state.read_order(&table);
    if order.is_empty() {
        return (error_response(503, "fleet has no backends"), None);
    }
    let mut fallback: Option<(u16, String)> = None;
    for backend in order {
        match forward(state, backend, "POST", "/sessions", Some(body)) {
            Ok((201, resp_body)) => {
                let Some(backend_session) = serde_json::from_str_value(&resp_body)
                    .ok()
                    .as_ref()
                    .and_then(|v| v.get("session_id"))
                    .and_then(Value::as_u64)
                else {
                    fallback = Some((
                        502,
                        r#"{"error":"backend returned a malformed session"}"#.into(),
                    ));
                    continue;
                };
                let id = state.next_session.fetch_add(1, Ordering::Relaxed) + 1;
                {
                    // Authoritative cap check under the write lock: the
                    // read-lock pre-check above races concurrent
                    // creates, and the bound must actually hold.
                    let mut sessions = state.sessions.write();
                    if sessions.len() >= MAX_FLEET_SESSIONS {
                        drop(sessions);
                        // Undo the backend half so it does not linger
                        // until its TTL.
                        let path = format!("/sessions/{backend_session}");
                        let _ = forward(state, backend, "DELETE", &path, None);
                        return (
                            error_response(
                                409,
                                &format!("session limit reached ({MAX_FLEET_SESSIONS})"),
                            ),
                            None,
                        );
                    }
                    sessions.insert(
                        id,
                        FleetSession {
                            backend,
                            backend_session,
                            table: table.clone(),
                            last_used: Instant::now(),
                        },
                    );
                }
                let backend_id = state.backends[backend].id().to_string();
                let resp = Value::Object(vec![
                    ("session_id".into(), num_u(id)),
                    ("table".into(), Value::String(table)),
                    ("backend".into(), Value::String(backend_id.clone())),
                ]);
                return (
                    Response::new(
                        201,
                        serde_json::to_string(&resp).expect("session bodies always render"),
                    ),
                    Some(backend_id),
                );
            }
            Ok((status, resp_body)) => {
                if fallback.is_none() || status != 404 {
                    fallback = Some((status, resp_body));
                }
                continue;
            }
            Err(_) => {
                state.metrics.failovers_total.inc();
                continue;
            }
        }
    }
    match fallback {
        Some((status, body)) => (Response::new(status, body), None),
        None => (
            error_response(503, &format!("no live replica for table `{table}`")),
            None,
        ),
    }
}

fn parse_fleet_session_id(id: &str) -> Result<u64, Response> {
    id.parse()
        .map_err(|_| error_response(400, "session id must be an integer"))
}

fn handle_session_step(state: &FleetState, id: &str, body: &[u8]) -> (Response, Option<String>) {
    let id = match parse_fleet_session_id(id) {
        Ok(id) => id,
        Err(resp) => return (resp, None),
    };
    let body = match utf8_body(body) {
        Ok(b) => b,
        Err(resp) => return (resp, None),
    };
    state.sweep_sessions();
    let (backend, backend_session) = {
        let sessions = state.sessions.read();
        match sessions.get(&id) {
            Some(s) => (s.backend, s.backend_session),
            None => return (error_response(404, &format!("no session {id}")), None),
        }
    };
    let path = format!("/sessions/{backend_session}/step");
    match forward(state, backend, "POST", &path, Some(body)) {
        Ok((404, resp_body)) => {
            // The backend forgot the session (TTL expiry, table delete):
            // the fleet mapping is stale too.
            state.sessions.write().remove(&id);
            (Response::new(404, resp_body), None)
        }
        Ok((status, resp_body)) => {
            if let Some(s) = state.sessions.write().get_mut(&id) {
                s.last_used = Instant::now();
            }
            (
                Response::new(status, resp_body),
                Some(state.backends[backend].id().to_string()),
            )
        }
        // Sticky by design: the session's history lives on that backend.
        Err(_) => (
            error_response(
                503,
                "session replica unavailable; create a new session to continue",
            ),
            None,
        ),
    }
}

fn handle_delete_session(state: &FleetState, id: &str) -> (Response, Option<String>) {
    let id = match parse_fleet_session_id(id) {
        Ok(id) => id,
        Err(resp) => return (resp, None),
    };
    let Some(session) = state.sessions.write().remove(&id) else {
        return (error_response(404, &format!("no session {id}")), None);
    };
    // Best effort downstream: if the backend is unreachable its own TTL
    // sweep will reap the session; the fleet id is gone either way.
    let path = format!("/sessions/{}", session.backend_session);
    let _ = forward(state, session.backend, "DELETE", &path, None);
    (
        Response::new(
            200,
            serde_json::to_string(&Value::Object(vec![("deleted".into(), num_u(id))]))
                .expect("delete bodies always render"),
        ),
        Some(state.backends[session.backend].id().to_string()),
    )
}
