//! In-process fleet tests: real TCP between router and backends, but
//! backends as in-process servers so the suite stays fast. The
//! multi-process supervision path is covered by the workspace-level
//! `tests/fleet_integration.rs`.

use std::time::Duration;

use ziggy_fleet::{start_fleet, FleetOptions};
use ziggy_serve::http::{request_once, Client};
use ziggy_serve::{serve, ServeOptions, ServerHandle};

fn demo_csv() -> String {
    let mut csv = String::from("key,hot,cold\n");
    for i in 0..200 {
        csv.push_str(&format!(
            "{},{},{}\n",
            i,
            if i >= 150 { 25 } else { 0 } + (i * 13) % 7,
            (i * 7919) % 31
        ));
    }
    csv
}

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

fn spawn_backends(n: usize) -> (Vec<ServerHandle>, Vec<(String, std::net::SocketAddr)>) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
        .collect();
    let addrs = handles
        .iter()
        .enumerate()
        .map(|(i, h)| (format!("shard-{i}"), h.local_addr()))
        .collect();
    (handles, addrs)
}

#[test]
fn ingest_replicates_and_reads_fail_over() {
    let (mut backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            // Deliberately glacial: this test exercises the *passive*
            // failure path (transport errors during real traffic mark
            // the backend and retry the next replica). Active probing
            // has its own unit test.
            probe_interval: Duration::from_secs(60),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    // Ingest through the router: placed on exactly R=2 backends.
    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let v = serde_json::from_str_value(&resp).unwrap();
    assert_eq!(v.get("placed").unwrap().as_u64(), Some(2), "{resp}");
    assert_eq!(v.get("n_rows").unwrap().as_u64(), Some(200), "{resp}");

    // The backends really hold it: exactly 2 of the 3 list the table.
    let holders: Vec<usize> = backends
        .iter()
        .enumerate()
        .filter(|(_, b)| {
            let (s, body) = request_once(b.local_addr(), "GET", "/tables", None).unwrap();
            assert_eq!(s, 200);
            body.contains("\"demo\"")
        })
        .map(|(i, _)| i)
        .collect();
    assert_eq!(holders.len(), 2, "replication factor must be honored");

    // Scatter-gather listing dedups replicas into one entry.
    let (status, listing) = request_once(router, "GET", "/tables", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str_value(&listing).unwrap();
    let tables = v.get("tables").unwrap().as_array().unwrap();
    assert_eq!(tables.len(), 1, "{listing}");
    assert_eq!(tables[0].get("replicas").unwrap().as_u64(), Some(2));

    // Characterize through the router; responses must be byte-identical
    // to asking a holding backend directly.
    let query_body = json_body(&[("query", "key >= 150")]);
    let (status, via_router) = request_once(
        router,
        "POST",
        "/tables/demo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{via_router}");
    let (_, direct) = request_once(
        backends[holders[0]].local_addr(),
        "POST",
        "/tables/demo/characterize",
        Some(&query_body),
    )
    .unwrap();
    let zero_timings = |s: &str| {
        let mut r: ziggy_core::CharacterizationReport = serde_json::from_str(s).unwrap();
        r.timings = ziggy_core::StageTimings::default();
        serde_json::to_string(&r).unwrap()
    };
    assert_eq!(zero_timings(&via_router), zero_timings(&direct));

    // Kill one replica; reads keep succeeding through failover.
    let victim = holders[0];
    backends.remove(victim).shutdown();
    let mut client = Client::connect(router).unwrap();
    for _ in 0..6 {
        let (status, body) = client
            .request("POST", "/tables/demo/characterize", Some(&query_body))
            .unwrap();
        assert_eq!(status, 200, "failover must hide a dead replica: {body}");
        assert_eq!(zero_timings(&body), zero_timings(&direct));
    }
    // Passive health: the transport failures observed while failing
    // over marked the victim unhealthy without any probe's help.
    let (_, health) = request_once(router, "GET", "/healthz", None).unwrap();
    let v = serde_json::from_str_value(&health).unwrap();
    let down = v
        .get("backends")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter(|b| b.get("healthy").unwrap().as_bool() == Some(false))
        .count();
    assert_eq!(down, 1, "proxy failures must mark the backend: {health}");

    let failovers = fleet.state().metrics.failovers_total.get();
    assert!(failovers > 0, "failover counter must move");
    fleet.shutdown();
}

#[test]
fn sessions_are_sticky_and_survive_other_replicas_dying() {
    let (mut backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 3,
            probe_interval: Duration::from_millis(50),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let body = json_body(&[("name", "t"), ("csv", &demo_csv())]);
    let (status, _) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);

    let (status, created) = request_once(
        router,
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "t")])),
    )
    .unwrap();
    assert_eq!(status, 201, "{created}");
    let v = serde_json::from_str_value(&created).unwrap();
    let sid = v.get("session_id").unwrap().as_u64().unwrap();
    let home = v.get("backend").unwrap().as_str().unwrap().to_string();

    let step_body = json_body(&[("query", "key >= 150")]);
    let step_path = format!("/sessions/{sid}/step");
    let (status, step1) = request_once(router, "POST", &step_path, Some(&step_body)).unwrap();
    assert_eq!(status, 200, "{step1}");
    assert!(step1.contains("\"step\":1"), "{step1}");

    // Kill a *different* replica: the sticky session keeps stepping.
    let victim = backends
        .iter()
        .position(|b| {
            let idx = home
                .strip_prefix("shard-")
                .unwrap()
                .parse::<usize>()
                .unwrap();
            b.local_addr() != fleet.state().backends()[idx].addr()
        })
        .unwrap();
    backends.remove(victim).shutdown();
    let (status, step2) = request_once(router, "POST", &step_path, Some(&step_body)).unwrap();
    assert_eq!(status, 200, "{step2}");
    assert!(step2.contains("\"step\":2"), "{step2}");

    // Kill the session's home backend: the router replays the query
    // ledger onto the surviving replica and the interrupted step
    // succeeds *there* — same step counter, failover header set.
    let home_idx = home
        .strip_prefix("shard-")
        .unwrap()
        .parse::<usize>()
        .unwrap();
    let home_addr = fleet.state().backends()[home_idx].addr();
    let victim = backends
        .iter()
        .position(|b| b.local_addr() == home_addr)
        .unwrap();
    backends.remove(victim).shutdown();
    let mut client = Client::connect(router).unwrap();
    let (status, headers, step3) = client
        .request_with_headers("POST", &step_path, &[], Some(&step_body))
        .unwrap();
    assert_eq!(status, 200, "{step3}");
    assert!(step3.contains("\"step\":3"), "{step3}");
    let new_home = headers
        .iter()
        .find(|(k, _)| k == "x-fleet-session-failover")
        .map(|(_, v)| v.clone())
        .expect("failed-over step must carry X-Fleet-Session-Failover");
    assert_ne!(new_home, home);
    assert_eq!(fleet.state().metrics.session_failovers_total.get(), 1);
    // The mapping is re-pointed: the next step runs on the new home
    // without another failover.
    let (status, headers, step4) = client
        .request_with_headers("POST", &step_path, &[], Some(&step_body))
        .unwrap();
    assert_eq!(status, 200, "{step4}");
    assert!(step4.contains("\"step\":4"), "{step4}");
    assert!(!headers.iter().any(|(k, _)| k == "x-fleet-session-failover"));
    assert_eq!(fleet.state().metrics.session_failovers_total.get(), 1);

    // Kill the last replica too: now the session is *genuinely*
    // unrecoverable, and the 503 says exactly why.
    backends.remove(0).shutdown();
    assert!(backends.is_empty());
    let (status, dead_step) = request_once(router, "POST", &step_path, Some(&step_body)).unwrap();
    assert_eq!(status, 503, "{dead_step}");
    assert!(dead_step.contains("unrecoverable"), "{dead_step}");
    fleet.shutdown();
}

#[test]
fn metrics_scatter_gather_and_router_edge_limits() {
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            rate_limit: Some(3),
            probe_interval: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    // /metrics aggregates one section per shard.
    let mut client = Client::connect(router).unwrap();
    let (status, metrics) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str_value(&metrics).unwrap();
    let shards = v.get("shards").unwrap().as_array().unwrap();
    assert_eq!(shards.len(), 2, "{metrics}");
    for shard in shards {
        assert!(shard.get("metrics").unwrap().get("requests").is_some());
        assert_eq!(shard.get("healthy").unwrap().as_bool(), Some(true));
    }
    assert!(v.get("router").unwrap().get("requests_total").is_some());

    // The router edge throttles like a single node; /healthz is exempt.
    let mut saw_429 = false;
    for _ in 0..10 {
        let (status, _) = client.request("GET", "/tables", None).unwrap();
        if status == 429 {
            saw_429 = true;
            break;
        }
    }
    assert!(saw_429, "router edge must rate limit");
    let (status, _) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200);
    assert!(fleet.state().metrics.rate_limited.get() >= 1);

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn admin_membership_lifecycle() {
    // Fast repair/probe so the test observes self-healing promptly.
    let (backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(50),
            repair_interval: Some(Duration::from_millis(75)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    // Initial membership is epoch 1 and is reported on every response.
    let mut client = Client::connect(router).unwrap();
    let (status, headers, listing) = client
        .request_with_headers("GET", "/admin/backends", &[], None)
        .unwrap();
    assert_eq!(status, 200, "{listing}");
    let v = serde_json::from_str_value(&listing).unwrap();
    assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1), "{listing}");
    assert_eq!(
        v.get("backends").unwrap().as_array().unwrap().len(),
        3,
        "{listing}"
    );
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "x-fleet-epoch" && v == "1"),
        "every response must carry the epoch: {headers:?}"
    );

    // Ingest a table on R=2 of the 3 members.
    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Find a holder and remove it from the membership. This is a drain,
    // not a kill: the process stays up, only routing changes.
    let holder = backends
        .iter()
        .position(|b| {
            let (_, listing) = request_once(b.local_addr(), "GET", "/tables", None).unwrap();
            listing.contains("\"demo\"")
        })
        .expect("someone holds the table");
    let holder_id = format!("shard-{holder}");
    let (status, resp) = request_once(
        router,
        "DELETE",
        &format!("/admin/backends/{holder_id}"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    let v = serde_json::from_str_value(&resp).unwrap();
    assert_eq!(v.get("epoch").unwrap().as_u64(), Some(2), "{resp}");

    // Reads keep working off the surviving replica, and the repair loop
    // restores R=2 live copies on the remaining members.
    let query_body = json_body(&[("query", "key >= 150")]);
    let (status, body_after) = request_once(
        router,
        "POST",
        "/tables/demo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{body_after}");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, listing) = request_once(router, "GET", "/tables", None).unwrap();
        let v = serde_json::from_str_value(&listing).unwrap();
        let replicas = v.get("tables").unwrap().as_array().unwrap()[0]
            .get("replicas")
            .unwrap()
            .as_u64()
            .unwrap();
        if replicas >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "repair never restored replication: {listing}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    assert!(
        fleet.state().metrics.repairs_total.get() >= 1,
        "the repair counter must move"
    );

    // Rejoin: the drained backend re-enters under its old id (its copy
    // is intact, CSV-fingerprint matched — over-replication is
    // harmless).
    let rejoin_body = json_body(&[
        ("id", holder_id.as_str()),
        ("addr", &backends[holder].local_addr().to_string()),
    ]);
    let (status, headers, resp) = client
        .request_with_headers("POST", "/admin/backends", &[], Some(&rejoin_body))
        .unwrap();
    assert_eq!(status, 201, "{resp}");
    let v = serde_json::from_str_value(&resp).unwrap();
    assert_eq!(v.get("epoch").unwrap().as_u64(), Some(3), "{resp}");
    // A successful admin mutation reports its *post-change* epoch in the
    // header (not the pre-change view it was routed under).
    assert!(
        headers
            .iter()
            .any(|(k, v)| k == "x-fleet-epoch" && v == "3"),
        "admin responses must carry the new epoch: {headers:?}"
    );
    let (_, health) = request_once(router, "GET", "/healthz", None).unwrap();
    let v = serde_json::from_str_value(&health).unwrap();
    assert_eq!(
        v.get("backends").unwrap().as_array().unwrap().len(),
        3,
        "{health}"
    );

    // Validation: duplicate id, hostile id, bad addr, unknown removal.
    for (body, want) in [
        (
            json_body(&[("id", "shard-0"), ("addr", "127.0.0.1:1")]),
            409,
        ),
        (
            json_body(&[("id", "has space"), ("addr", "127.0.0.1:1")]),
            400,
        ),
        (json_body(&[("id", "fresh"), ("addr", "not-an-addr")]), 400),
        (json_body(&[("id", "fresh")]), 400),
    ] {
        let (status, resp) = request_once(router, "POST", "/admin/backends", Some(&body)).unwrap();
        assert_eq!(status, want, "{body} -> {resp}");
    }
    let (status, _) = request_once(router, "DELETE", "/admin/backends/nobody", None).unwrap();
    assert_eq!(status, 404);
    let (status, _) = request_once(router, "PUT", "/admin/backends", None).unwrap();
    assert_eq!(status, 405);

    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

#[test]
fn removal_and_rejoin_under_load_sees_zero_5xx() {
    // The acceptance criterion: an in-flight workload survives
    // `DELETE /admin/backends/{id}` followed by a rejoin with zero 5xx
    // responses, and the table converges back to R live replicas.
    let (backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(50),
            repair_interval: Some(Duration::from_millis(75)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();
    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let holder = backends
        .iter()
        .position(|b| {
            let (_, listing) = request_once(b.local_addr(), "GET", "/tables", None).unwrap();
            listing.contains("\"demo\"")
        })
        .unwrap();
    let holder_id = format!("shard-{holder}");
    let holder_addr = backends[holder].local_addr().to_string();

    // Reference bytes: deterministic across replicas (timings are out of
    // the wire form), so every response during churn must equal them.
    let query_body = json_body(&[("query", "key >= 150")]);
    let (_, reference) = request_once(
        router,
        "POST",
        "/tables/demo/characterize",
        Some(&query_body),
    )
    .unwrap();

    let stop = std::sync::atomic::AtomicBool::new(false);
    let bad: Vec<(u16, String)> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..3)
            .map(|_| {
                s.spawn(|| {
                    let mut bad = Vec::new();
                    let mut client = Client::connect(router).unwrap();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let (status, body) = client
                            .request("POST", "/tables/demo/characterize", Some(&query_body))
                            .unwrap();
                        if status != 200 || body != reference {
                            bad.push((status, body));
                        }
                    }
                    bad
                })
            })
            .collect();
        // Mid-traffic: drain the holder, give repair a beat, rejoin it.
        std::thread::sleep(Duration::from_millis(100));
        let (status, resp) = request_once(
            router,
            "DELETE",
            &format!("/admin/backends/{holder_id}"),
            None,
        )
        .unwrap();
        assert_eq!(status, 200, "{resp}");
        std::thread::sleep(Duration::from_millis(300));
        let rejoin = json_body(&[("id", holder_id.as_str()), ("addr", &holder_addr)]);
        let (status, resp) =
            request_once(router, "POST", "/admin/backends", Some(&rejoin)).unwrap();
        assert_eq!(status, 201, "{resp}");
        std::thread::sleep(Duration::from_millis(300));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        workers
            .into_iter()
            .flat_map(|w| w.join().unwrap())
            .collect()
    });
    assert!(
        bad.is_empty(),
        "churn must be invisible to clients; saw {} bad responses, first: {:?}",
        bad.len(),
        bad.first()
    );

    // Convergence: the table ends with at least R live replicas.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, listing) = request_once(router, "GET", "/tables", None).unwrap();
        let v = serde_json::from_str_value(&listing).unwrap();
        let replicas = v.get("tables").unwrap().as_array().unwrap()[0]
            .get("replicas")
            .unwrap()
            .as_u64()
            .unwrap();
        if replicas >= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "replication never converged: {listing}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }

    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

#[test]
fn delete_sweeps_stranded_copies_so_repair_cannot_resurrect() {
    // Membership churn can strand a table copy on a member outside the
    // table's nominal replica set. DELETE must sweep *every member* —
    // a stranded survivor would be a live "holder" the repair loop
    // faithfully re-materializes from, resurrecting the deleted table.
    let (backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(50),
            repair_interval: Some(Duration::from_millis(75)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();
    let csv = demo_csv();
    let body = json_body(&[("name", "demo"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Simulate the stranded copy: replicate the table directly onto the
    // member that is NOT in the nominal set.
    let outsider = backends
        .iter()
        .position(|b| {
            let (_, listing) = request_once(b.local_addr(), "GET", "/tables", None).unwrap();
            !listing.contains("\"demo\"")
        })
        .expect("R=2 of 3 leaves one non-holder");
    let put_body = json_body(&[("csv", &csv)]);
    let (status, resp) = request_once(
        backends[outsider].local_addr(),
        "PUT",
        "/tables/demo",
        Some(&put_body),
    )
    .unwrap();
    assert_eq!(status, 201, "{resp}");

    // Delete through the router: the sweep must reach the outsider too.
    let (status, resp) = request_once(router, "DELETE", "/tables/demo", None).unwrap();
    assert_eq!(status, 200, "{resp}");
    let (_, listing) =
        request_once(backends[outsider].local_addr(), "GET", "/tables", None).unwrap();
    assert_eq!(
        listing, r#"{"tables":[]}"#,
        "the stranded copy must be swept"
    );

    // And the table stays dead across several repair rounds.
    std::thread::sleep(Duration::from_millis(300));
    let (_, listing) = request_once(router, "GET", "/tables", None).unwrap();
    assert_eq!(
        listing, r#"{"tables":[]}"#,
        "repair must not resurrect a deleted table"
    );
    assert_eq!(fleet.state().metrics.repairs_total.get(), 0);

    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

#[test]
fn etag_revalidates_across_replica_rotation() {
    // Two backends, R=2: reads rotate, so consecutive requests land on
    // *different* replicas, each having built its own copy of the
    // report. The wire bytes are timing-free, so both builds fingerprint
    // identically and every conditional repeat must be answered 304 —
    // the PR 4 caveat (rotation re-transferred a 200) is closed.
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            probe_interval: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();
    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // Warm both replicas (rotation alternates) and pin byte identity
    // across them.
    let query = json_body(&[("query", "key >= 150")]);
    let mut client = Client::connect(router).unwrap();
    let mut first_etag: Option<String> = None;
    for round in 0..4 {
        let (status, headers, body) = client
            .request_with_headers("POST", "/tables/demo/characterize", &[], Some(&query))
            .unwrap();
        assert_eq!(status, 200, "round {round}: {body}");
        let etag = headers
            .iter()
            .find(|(k, _)| k == "etag")
            .map(|(_, v)| v.clone())
            .expect("characterize must carry an ETag");
        match &first_etag {
            None => first_etag = Some(etag),
            Some(expected) => assert_eq!(
                &etag, expected,
                "round {round}: replicas must agree on the validator"
            ),
        }
    }
    let etag = first_etag.unwrap();

    // Every conditional repeat is a 304, whichever replica rotation
    // picks — and still after a failover (kill one replica).
    for round in 0..4 {
        let (status, _, empty) = client
            .request_with_headers(
                "POST",
                "/tables/demo/characterize",
                &[("If-None-Match", &etag)],
                Some(&query),
            )
            .unwrap();
        assert_eq!(status, 304, "round {round}: {empty}");
        assert!(empty.is_empty());
    }
    let mut backends = backends;
    backends.remove(0).shutdown();
    for round in 0..3 {
        let (status, _, empty) = client
            .request_with_headers(
                "POST",
                "/tables/demo/characterize",
                &[("If-None-Match", &etag)],
                Some(&query),
            )
            .unwrap();
        assert_eq!(status, 304, "post-failover round {round}: {empty}");
    }

    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

#[test]
fn etag_revalidation_passes_through_the_router() {
    // Replication 1 over two backends: the table lives on exactly one
    // replica, so every read routes there; this pins the ETag relay
    // through the proxy hop (the R > 1 rotation case is
    // `etag_revalidates_across_replica_rotation`).
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            probe_interval: Duration::from_millis(100),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    // First characterize: full body plus an ETag relayed from the
    // backend.
    let query = json_body(&[("query", "key >= 150")]);
    let mut client = Client::connect(router).unwrap();
    let (status, headers, first) = client
        .request_with_headers("POST", "/tables/demo/characterize", &[], Some(&query))
        .unwrap();
    assert_eq!(status, 200, "{first}");
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("router must relay the backend ETag");

    // Conditional repeat: 304 through both hops, no body on either.
    let (status, headers, empty) = client
        .request_with_headers(
            "POST",
            "/tables/demo/characterize",
            &[("If-None-Match", &etag)],
            Some(&query),
        )
        .unwrap();
    assert_eq!(status, 304, "{empty}");
    assert!(empty.is_empty());
    assert!(headers.iter().any(|(k, v)| k == "etag" && *v == etag));

    // A stale validator still gets the full (byte-identical) report.
    let (status, _, full) = client
        .request_with_headers(
            "POST",
            "/tables/demo/characterize",
            &[("If-None-Match", "\"0000000000000000\"")],
            Some(&query),
        )
        .unwrap();
    assert_eq!(status, 200);
    assert_eq!(full, first, "warm repeats must be byte-identical");

    // The scatter-gathered /metrics picks up the per-table `reports`
    // section from whichever shard holds the table.
    let (status, metrics) = request_once(router, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    let v = serde_json::from_str_value(&metrics).unwrap();
    let report_hits: u64 = v
        .get("shards")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .filter_map(|s| s.get("metrics")?.get("tables")?.as_array())
        .flatten()
        .filter_map(|t| t.get("reports")?.get("hits")?.as_u64())
        .sum();
    assert!(
        report_hits >= 2,
        "both repeats must be report-cache hits: {metrics}"
    );

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn hostile_table_names_are_rejected_at_the_router() {
    let (backends, addrs) = spawn_backends(1);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let router = fleet.local_addr();
    // A body-supplied name reaches proxied request lines; CRLF or
    // whitespace there would corrupt (or smuggle a request onto) the
    // pooled backend connection, so the router must refuse it outright.
    for hostile in [
        "x HTTP/1.1\r\nContent-Length: 0\r\n\r\nDELETE /tables/y",
        "has space",
        "new\nline",
        "",
        "way-too-long-aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
    ] {
        let body = json_body(&[("name", hostile), ("csv", "a,b\n1,2\n")]);
        let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
        assert_eq!(status, 400, "{hostile:?} -> {resp}");
    }
    // Nothing leaked through to the backend.
    let (_, listing) = request_once(backends[0].local_addr(), "GET", "/tables", None).unwrap();
    assert_eq!(listing, r#"{"tables":[]}"#);
    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

#[test]
fn stale_fleet_session_mappings_are_swept() {
    let (backends, addrs) = spawn_backends(1);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            session_ttl: Some(Duration::from_millis(40)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();
    let body = json_body(&[("name", "t"), ("csv", &demo_csv())]);
    let (status, _) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201);

    let (status, created) = request_once(
        router,
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "t")])),
    )
    .unwrap();
    assert_eq!(status, 201, "{created}");
    let sid = serde_json::from_str_value(&created)
        .unwrap()
        .get("session_id")
        .unwrap()
        .as_u64()
        .unwrap();

    // Abandon the session past the TTL: the next session op sweeps the
    // stale router mapping, so a later step 404s at the router (not via
    // a backend round trip — the mapping itself is gone).
    std::thread::sleep(Duration::from_millis(80));
    let (status, _) = request_once(
        router,
        "POST",
        "/sessions",
        Some(&json_body(&[("table", "t")])),
    )
    .unwrap();
    assert_eq!(status, 201);
    let step_body = json_body(&[("query", "key >= 150")]);
    let (status, resp) = request_once(
        router,
        "POST",
        &format!("/sessions/{sid}/step"),
        Some(&step_body),
    )
    .unwrap();
    assert_eq!(status, 404, "{resp}");
    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

/// Stray-copy GC: a replica the ring no longer assigns is collected —
/// but only after the grace period, and *without* the clean-up ever
/// reading as a fleet-wide delete. The stray here is deliberately
/// *newer* (higher local ingest timestamp) than the nominal copy, the
/// exact shape that would poison last-writer-wins if the GC tombstone
/// were exported.
#[test]
fn stray_copies_are_collected_after_grace_and_never_poison_the_fleet() {
    let (backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            probe_interval: Duration::from_millis(50),
            repair_interval: None, // rounds driven by hand below
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let csv = demo_csv();
    let body = json_body(&[("name", "demo"), ("csv", &csv)]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");

    let lists = |i: usize| {
        let (s, body) = request_once(backends[i].local_addr(), "GET", "/tables", None).unwrap();
        assert_eq!(s, 200);
        body.contains("\"demo\"")
    };
    let holder = (0..3).find(|&i| lists(i)).unwrap();
    // Plant a stray on some non-holder, via the same replicate path a
    // ring shift would have used. Its local HLC stamp is necessarily
    // newer than the holder's.
    let stray = (0..3).find(|&i| i != holder).unwrap();
    let put = json_body(&[("csv", &csv)]);
    let (status, resp) = request_once(
        backends[stray].local_addr(),
        "PUT",
        "/tables/demo",
        Some(&put),
    )
    .unwrap();
    assert!((200..300).contains(&status), "{resp}");

    // Grace period: the first GC_GRACE_ROUNDS clean rounds arm the
    // collector but must not fire it.
    for round in 0..ziggy_fleet::repair::GC_GRACE_ROUNDS {
        let report = ziggy_fleet::repair_round(fleet.state());
        assert_eq!(report.under_replicated, 0, "round {round}: {report:?}");
        assert_eq!(report.strays_collected, 0, "round {round}: {report:?}");
        assert_eq!(report.deletes_propagated, 0, "round {round}: {report:?}");
    }
    assert!(lists(stray), "grace period must leave the stray alone");

    // The armed round collects exactly the stray.
    let report = ziggy_fleet::repair_round(fleet.state());
    assert_eq!(report.strays_collected, 1, "{report:?}");
    assert_eq!(report.deletes_propagated, 0, "{report:?}");
    assert!(!lists(stray), "stray copy must be gone");
    assert!(lists(holder), "nominal copy must survive GC");
    assert_eq!(fleet.state().metrics.strays_collected_total.get(), 1);

    // The regression this design exists for: the GC tombstone (stamped
    // on the *newer* copy) must be invisible to the fleet. No follow-up
    // round may read it as "demo was deleted" and cascade.
    let (status, stones) =
        request_once(backends[stray].local_addr(), "GET", "/tombstones", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        !stones.contains("\"demo\""),
        "stray tombstones must not be exported: {stones}"
    );
    for round in 0..3 {
        let report = ziggy_fleet::repair_round(fleet.state());
        assert_eq!(report.deletes_propagated, 0, "round {round}: {report:?}");
        assert_eq!(report.strays_collected, 0, "round {round}: {report:?}");
    }
    assert!(lists(holder), "the live table must never be collected");
    let query_body = json_body(&[("query", "key >= 150")]);
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables/demo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");

    fleet.shutdown();
    backends.into_iter().for_each(|b| b.shutdown());
}

/// Drain safety at R=1: removing the sole holder of a table copies the
/// data out first; when no healthy target exists the removal is refused
/// with the solely-held list, and `?force=true` remains the explicit
/// data-losing override.
#[test]
fn drain_copies_out_solely_held_tables_or_refuses() {
    let (backends, addrs) = spawn_backends(3);
    let backend_addrs: Vec<std::net::SocketAddr> =
        backends.iter().map(|b| b.local_addr()).collect();
    let mut backends: Vec<Option<ServerHandle>> = backends.into_iter().map(Some).collect();
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 1,
            probe_interval: Duration::from_millis(50),
            repair_interval: None,
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let body = json_body(&[("name", "solo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let lists = |addr: std::net::SocketAddr| {
        let (s, body) = request_once(addr, "GET", "/tables", None).unwrap();
        assert_eq!(s, 200);
        body.contains("\"solo\"")
    };
    let holder = (0..3).find(|&i| lists(backend_addrs[i])).unwrap();

    // Draining the sole holder copies the table out instead of losing it.
    let (status, resp) = request_once(
        router,
        "DELETE",
        &format!("/admin/backends/shard-{holder}"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");
    assert!(resp.contains("\"copied_out\""), "{resp}");
    assert!(resp.contains("\"solo\""), "{resp}");
    assert_eq!(fleet.state().metrics.drain_copyouts_total.get(), 1);
    let new_holder = (0..3)
        .find(|&i| i != holder && lists(backend_addrs[i]))
        .expect("the drained table must land on a surviving member");
    let query_body = json_body(&[("query", "key >= 150")]);
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables/solo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(
        status, 200,
        "the fleet must keep serving after a drain: {resp}"
    );

    // Kill the only *other* member: now there is nowhere to copy to,
    // and the drain must refuse rather than silently lose the table.
    let bystander = (0..3).find(|&i| i != holder && i != new_holder).unwrap();
    backends[bystander].take().unwrap().shutdown();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let (_, health) = request_once(router, "GET", "/healthz", None).unwrap();
        let v = serde_json::from_str_value(&health).unwrap();
        let down = v
            .get("backends")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|b| b.get("healthy").unwrap().as_bool() == Some(false))
            .count();
        if down == 1 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "prober never noticed: {health}"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
    let (status, resp) = request_once(
        router,
        "DELETE",
        &format!("/admin/backends/shard-{new_holder}"),
        None,
    )
    .unwrap();
    assert_eq!(status, 409, "{resp}");
    assert!(resp.contains("\"solely_held\""), "{resp}");
    assert!(resp.contains("\"solo\""), "{resp}");
    assert!(resp.contains("force=true"), "{resp}");
    // The refused removal changed nothing: the member still serves.
    let (status, resp) = request_once(
        router,
        "POST",
        "/tables/solo/characterize",
        Some(&query_body),
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");

    // The operator accepts the loss explicitly.
    let (status, resp) = request_once(
        router,
        "DELETE",
        &format!("/admin/backends/shard-{new_holder}?force=true"),
        None,
    )
    .unwrap();
    assert_eq!(status, 200, "{resp}");

    fleet.shutdown();
    backends.into_iter().flatten().for_each(|b| b.shutdown());
}
