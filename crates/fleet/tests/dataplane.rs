//! Event-loop data-plane tests: client-side keep-alive + pipelining,
//! reactor failover, the offload path, and the reactor's observability
//! surface. Everything here talks to the router over real TCP; the
//! backends are in-process servers.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use ziggy_fleet::{start_fleet, FleetOptions};
use ziggy_serve::http::{request_once, Client};
use ziggy_serve::{serve, ServeOptions, ServerHandle};

fn demo_csv() -> String {
    let mut csv = String::from("key,hot,cold\n");
    for i in 0..200 {
        csv.push_str(&format!(
            "{},{},{}\n",
            i,
            if i >= 150 { 25 } else { 0 } + (i * 13) % 7,
            (i * 7919) % 31
        ));
    }
    csv
}

fn json_body(fields: &[(&str, &str)]) -> String {
    serde_json::to_string(&serde_json::Value::Object(
        fields
            .iter()
            .map(|(k, v)| {
                (
                    (*k).to_string(),
                    serde_json::Value::String((*v).to_string()),
                )
            })
            .collect(),
    ))
    .unwrap()
}

fn spawn_backends(n: usize) -> (Vec<ServerHandle>, Vec<(String, std::net::SocketAddr)>) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
        .collect();
    let addrs = handles
        .iter()
        .enumerate()
        .map(|(i, h)| (format!("shard-{i}"), h.local_addr()))
        .collect();
    (handles, addrs)
}

fn ingest_demo(router: std::net::SocketAddr) {
    let body = json_body(&[("name", "demo"), ("csv", &demo_csv())]);
    let (status, resp) = request_once(router, "POST", "/tables", Some(&body)).unwrap();
    assert_eq!(status, 201, "{resp}");
}

/// Reads exactly one HTTP/1.1 response off a raw socket (head +
/// `Content-Length` body), returning `(status, head, body)`. Bytes of
/// a following pipelined response stay in `buf` for the next call.
fn read_raw_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> (u16, String, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break pos + 4;
        }
        let n = stream.read(&mut chunk).expect("response head");
        assert!(n > 0, "EOF before response head: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).unwrap();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .expect("status line");
    let content_length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length");
    while buf.len() < head_end + content_length {
        let n = stream.read(&mut chunk).expect("response body");
        assert!(n > 0, "EOF mid-body");
        buf.extend_from_slice(&chunk[..n]);
    }
    let rest = buf.split_off(head_end + content_length);
    let body = buf[head_end..].to_vec();
    *buf = rest;
    (status, head, body)
}

#[test]
fn pipelined_requests_answer_in_order_on_one_connection() {
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let router = fleet.local_addr();
    ingest_demo(router);

    // Three characterize requests written back-to-back without reading:
    // the reactor must answer all three, in order, on one socket.
    let query = json_body(&[("query", "key >= 150")]);
    let mut stream = TcpStream::connect(router).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut batch = Vec::new();
    for i in 0..3 {
        batch.extend_from_slice(
            format!(
                "POST /tables/demo/characterize HTTP/1.1\r\nX-Request-Id: pipeline-{i}\r\nContent-Length: {}\r\n\r\n{query}",
                query.len()
            )
            .as_bytes(),
        );
    }
    stream.write_all(&batch).unwrap();
    let mut leftover = Vec::new();
    let mut first_body = Vec::new();
    for i in 0..3 {
        let (status, head, body) = read_raw_response(&mut stream, &mut leftover);
        assert_eq!(status, 200, "response {i}: {head}");
        assert!(
            head.contains(&format!("X-Request-Id: pipeline-{i}")),
            "responses must come back in request order: {head}"
        );
        assert!(head.contains("X-Fleet-Epoch: "), "{head}");
        if i == 0 {
            first_body = body;
        } else {
            assert_eq!(body, first_body, "warm repeats must be byte-identical");
        }
    }

    // The connection is still usable afterwards (keep-alive held).
    stream
        .write_all(
            format!(
                "POST /tables/demo/characterize HTTP/1.1\r\nContent-Length: {}\r\n\r\n{query}",
                query.len()
            )
            .as_bytes(),
        )
        .unwrap();
    let (status, _, _) = read_raw_response(&mut stream, &mut leftover);
    assert_eq!(status, 200);

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn hot_and_control_routes_share_one_keepalive_connection() {
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let router = fleet.local_addr();
    ingest_demo(router);

    // Interleave offloaded control-plane routes and hot relays on the
    // same client connection.
    let query = json_body(&[("query", "key >= 150")]);
    let mut client = Client::connect(router).unwrap();
    let (status, body) = client.request("GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, body) = client
        .request("POST", "/tables/demo/characterize", Some(&query))
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let (status, metrics) = client.request("GET", "/metrics", None).unwrap();
    assert_eq!(status, 200, "{metrics}");

    // The JSON metrics document reports the split and the pools.
    let v = serde_json::from_str_value(&metrics).unwrap();
    let dp = v.get("dataplane").expect("dataplane section: {metrics}");
    assert!(dp.get("hot_requests_total").unwrap().as_u64().unwrap() >= 1);
    assert!(
        dp.get("offloaded_requests_total")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 2,
        "healthz and metrics offload: {metrics}"
    );
    assert!(
        dp.get("pool_fresh_connects_total")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );
    assert!(dp.get("loop_iterations").unwrap().as_u64().unwrap() >= 1);
    let pools = dp.get("pools").unwrap();
    let busy: u64 = ["shard-0", "shard-1"]
        .iter()
        .filter_map(|s| pools.get(s))
        .map(|g| {
            g.get("idle").unwrap().as_u64().unwrap() + g.get("in_flight").unwrap().as_u64().unwrap()
        })
        .sum();
    assert!(busy >= 1, "reactor keeps upstream conns pooled: {metrics}");
    // Per-shard threaded-pool counters ride the shard entries.
    let shards = v.get("shards").unwrap().as_array().unwrap();
    assert!(shards.iter().all(|s| s
        .get("pool")
        .and_then(|p| p.get("checkouts_total"))
        .is_some()));

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn hot_path_fails_over_and_assembles_traces() {
    let (mut backends, addrs) = spawn_backends(3);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication: 2,
            // Passive failure detection only: the reactor's relay must
            // mark the dead replica and fail over mid-request.
            probe_interval: Duration::from_secs(60),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();
    ingest_demo(router);

    // Find one holder of the table and kill it.
    let holder = backends
        .iter()
        .position(|b| {
            request_once(b.local_addr(), "GET", "/tables", None)
                .map(|(_, body)| body.contains("demo"))
                .unwrap_or(false)
        })
        .expect("a backend holds the table");
    backends.remove(holder).shutdown();

    // Every read must still succeed (failover to the live replica).
    let query = json_body(&[("query", "key >= 150")]);
    for i in 0..6 {
        let (status, _, body) = Client::connect(router)
            .unwrap()
            .request_with_headers(
                "POST",
                "/tables/demo/characterize",
                &[("X-Request-Id", &format!("failover-{i}"))],
                Some(&query),
            )
            .unwrap();
        assert_eq!(status, 200, "read {i}: {body}");
    }

    // The router's flight recorder assembled the trace: a fleet.request
    // root with at least one fleet.upstream child parented under it.
    let (status, trace) = request_once(router, "GET", "/debug/traces/failover-0", None).unwrap();
    assert_eq!(status, 200, "{trace}");
    let v = serde_json::from_str_value(&trace).unwrap();
    let spans = v.get("spans").unwrap().as_array().unwrap();
    let root = spans
        .iter()
        .find(|s| s.get("name").unwrap().as_str() == Some("fleet.request"))
        .expect("root span: {trace}");
    assert_eq!(root.get("parent_id"), Some(&serde_json::Value::Null));
    let root_id = root.get("span_id").unwrap().as_str().unwrap();
    assert!(
        spans.iter().any(|s| {
            s.get("name").unwrap().as_str() == Some("fleet.upstream")
                && s.get("parent_id").unwrap().as_str() == Some(root_id)
        }),
        "upstream leg parents under the root: {trace}"
    );

    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn unknown_tables_404_through_the_relay() {
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let router = fleet.local_addr();
    let query = json_body(&[("query", "key >= 150")]);
    let (status, body) =
        request_once(router, "POST", "/tables/nosuch/characterize", Some(&query)).unwrap();
    assert_eq!(status, 404, "{body}");
    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn malformed_requests_get_400_then_close() {
    let (backends, addrs) = spawn_backends(1);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let mut stream = TcpStream::connect(fleet.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(b"NONSENSE\r\n\r\n").unwrap();
    let (status, head, _) = read_raw_response(&mut stream, &mut Vec::new());
    assert_eq!(status, 400, "{head}");
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    let closed = stream
        .read_to_end(&mut rest)
        .map(|n| n == 0)
        .unwrap_or(true);
    assert!(closed, "connection must close after a 400");
    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}

#[test]
fn reactor_counters_appear_in_prometheus() {
    let (backends, addrs) = spawn_backends(2);
    let fleet = start_fleet("127.0.0.1:0", addrs, FleetOptions::default()).unwrap();
    let router = fleet.local_addr();
    ingest_demo(router);
    let query = json_body(&[("query", "key >= 150")]);
    let (status, _) =
        request_once(router, "POST", "/tables/demo/characterize", Some(&query)).unwrap();
    assert_eq!(status, 200);
    let (status, text) = request_once(router, "GET", "/metrics?format=prometheus", None).unwrap();
    assert_eq!(status, 200);
    for family in [
        "ziggy_fleet_reactor_loop_iterations_total",
        "ziggy_fleet_reactor_hot_requests_total",
        "ziggy_fleet_reactor_offloaded_requests_total",
        "ziggy_fleet_reactor_pool_fresh_connects_total",
        "ziggy_fleet_backend_pool_checkouts_total",
    ] {
        assert!(text.contains(family), "missing {family}");
    }
    fleet.shutdown();
    for b in backends {
        b.shutdown();
    }
}
