//! Property tests for the consistent-hash ring: balance within a
//! tolerance, and bounded remapping on membership change — the two
//! properties the fleet's placement correctness and cache-friendliness
//! rest on.

use proptest::prelude::*;
use ziggy_fleet::HashRing;

const VNODES: usize = 128;

fn ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("shard-{i}")).collect()
}

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("table-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Key ownership is balanced: with 128 vnodes, every backend's share
    /// of 4000 keys stays within a constant factor of fair. (The
    /// expected relative spread is ~1/sqrt(vnodes) ≈ 9%; the 2.2x/0.3x
    /// envelope leaves room for unlucky draws without ever letting a
    /// pathological ring through.)
    #[test]
    fn distribution_is_balanced(n_backends in 2usize..9) {
        let ring = HashRing::build(&ids(n_backends), VNODES);
        let mut counts = vec![0usize; n_backends];
        let n_keys = 4000usize;
        for key in keys(n_keys) {
            counts[ring.primary_for(&key).unwrap()] += 1;
        }
        let fair = n_keys as f64 / n_backends as f64;
        for (backend, &count) in counts.iter().enumerate() {
            prop_assert!(
                (count as f64) < fair * 2.2,
                "backend {backend} overloaded: {count} keys, fair share {fair:.0}"
            );
            prop_assert!(
                (count as f64) > fair * 0.3,
                "backend {backend} starved: {count} keys, fair share {fair:.0}"
            );
        }
    }

    /// Removing one backend is *exactly* minimal: every key whose
    /// primary was not the removed backend keeps its primary, so the
    /// moved fraction equals the removed backend's share (~1/N).
    #[test]
    fn removing_a_backend_only_moves_its_own_keys(n_backends in 3usize..9) {
        let full = ids(n_backends);
        let ring = HashRing::build(&full, VNODES);
        // Remove the last backend so surviving indices are unchanged
        // (0..n-1 name the same ids in both rings).
        let removed = n_backends - 1;
        let shrunk = HashRing::build(&full[..removed], VNODES);
        let mut moved = 0usize;
        let n_keys = 2000usize;
        for key in keys(n_keys) {
            let before = ring.primary_for(&key).unwrap();
            let after = shrunk.primary_for(&key).unwrap();
            if before == removed {
                moved += 1;
            } else {
                prop_assert_eq!(
                    before, after,
                    "key {} moved although its owner survived", key
                );
            }
        }
        // The removed backend's share should be ~1/N of keys.
        let share = moved as f64 / n_keys as f64;
        prop_assert!(
            share < 2.2 / n_backends as f64,
            "removal remapped {share:.3} of keys, expected ~{:.3}",
            1.0 / n_backends as f64
        );
    }

    /// Adding one backend only moves keys *onto the newcomer*: every
    /// other key keeps its primary, and the newcomer takes ~1/(N+1).
    #[test]
    fn adding_a_backend_only_steals_keys(n_backends in 2usize..8) {
        let before_ids = ids(n_backends);
        let mut after_ids = before_ids.clone();
        after_ids.push("shard-new".to_string());
        let ring = HashRing::build(&before_ids, VNODES);
        let grown = HashRing::build(&after_ids, VNODES);
        let newcomer = n_backends; // index of shard-new
        let mut stolen = 0usize;
        let n_keys = 2000usize;
        for key in keys(n_keys) {
            let before = ring.primary_for(&key).unwrap();
            let after = grown.primary_for(&key).unwrap();
            if after == newcomer {
                stolen += 1;
            } else {
                prop_assert_eq!(
                    before, after,
                    "key {} moved between surviving backends", key
                );
            }
        }
        let share = stolen as f64 / n_keys as f64;
        prop_assert!(
            share < 2.2 / (n_backends + 1) as f64,
            "addition remapped {share:.3} of keys, expected ~{:.3}",
            1.0 / (n_backends + 1) as f64
        );
        prop_assert!(stolen > 0, "the newcomer must own something");
    }

    /// Membership *churn*: a random sequence of adds and removes, with
    /// the invariants checked at every epoch step (not just for a single
    /// change from a pristine ring):
    ///
    /// * **never route to a removed backend** — every key's full replica
    ///   walk maps only onto ids in the current membership, and a
    ///   just-removed id owns nothing;
    /// * **exactly minimal remapping** — on a remove, only keys whose
    ///   primary was the removed backend change primary; on an add, a
    ///   key either keeps its primary or moves onto the newcomer;
    /// * **balance holds at every step** — primaries stay within a
    ///   constant-factor envelope of the fair share whenever at least
    ///   two backends remain.
    #[test]
    fn membership_churn_remaps_minimally_and_stays_balanced(
        op_seeds in prop::collection::vec(0usize..1_000_000, 1..10)
    ) {
        let n_keys = 1500usize;
        let test_keys = keys(n_keys);
        let mut ids = ids(4);
        let mut next_id = 4usize;
        let mut ring = HashRing::build(&ids, VNODES);
        // Ownership tracked by *id* (indices shift as members come and
        // go; identities are what routing stability means).
        let owner_of = |ring: &HashRing, ids: &[String], key: &str| -> String {
            ids[ring.primary_for(key).unwrap()].clone()
        };
        for seed in op_seeds {
            // Grow when small, shrink when large, otherwise flip a coin
            // from the seed — keeps fleets between 2 and 9 members.
            let add = ids.len() <= 2 || (ids.len() < 9 && seed % 2 == 0);
            let before: Vec<String> = test_keys
                .iter()
                .map(|k| owner_of(&ring, &ids, k))
                .collect();
            let (newcomer, removed) = if add {
                let id = format!("shard-{next_id}");
                next_id += 1;
                ids.push(id.clone());
                (Some(id), None)
            } else {
                let victim = ids.remove(seed % ids.len());
                (None, Some(victim))
            };
            ring = HashRing::build(&ids, VNODES);

            for (key, old_owner) in test_keys.iter().zip(&before) {
                let new_owner = owner_of(&ring, &ids, key);
                // Never route to a removed backend — not as primary, not
                // anywhere in the full failover walk.
                if let Some(gone) = &removed {
                    let walk: Vec<&String> = ring
                        .replicas_for(key, ids.len())
                        .into_iter()
                        .map(|i| &ids[i])
                        .collect();
                    prop_assert!(
                        !walk.contains(&gone),
                        "key {} still walks onto removed {}", key, gone
                    );
                }
                // Exactly minimal remapping per epoch step.
                match (&newcomer, &removed) {
                    (Some(new), None) => prop_assert!(
                        new_owner == *old_owner || new_owner == *new,
                        "add moved {} from {} to {} (not the newcomer {})",
                        key, old_owner, new_owner, new
                    ),
                    (None, Some(gone)) => prop_assert!(
                        new_owner == *old_owner || old_owner == gone,
                        "remove of {} moved {} from surviving {} to {}",
                        gone, key, old_owner, new_owner
                    ),
                    _ => unreachable!(),
                }
            }

            // Balance at this epoch.
            if ids.len() >= 2 {
                let mut counts = vec![0usize; ids.len()];
                for key in &test_keys {
                    counts[ring.primary_for(key).unwrap()] += 1;
                }
                let fair = n_keys as f64 / ids.len() as f64;
                for (backend, &count) in counts.iter().enumerate() {
                    prop_assert!(
                        (count as f64) < fair * 2.5,
                        "backend {} overloaded after churn: {} keys, fair {:.0}",
                        backend, count, fair
                    );
                    prop_assert!(
                        (count as f64) > fair * 0.25,
                        "backend {} starved after churn: {} keys, fair {:.0}",
                        backend, count, fair
                    );
                }
            }
        }
    }

    /// Replica sets degrade minimally too: after removing one backend,
    /// a key's surviving replicas stay in its new replica set (the
    /// failover order may compact, but no data placement is lost).
    #[test]
    fn replica_sets_survive_membership_change(n_backends in 3usize..8) {
        let full = ids(n_backends);
        let ring = HashRing::build(&full, VNODES);
        let removed = n_backends - 1;
        let shrunk = HashRing::build(&full[..removed], VNODES);
        for key in keys(300) {
            let before: Vec<usize> = ring
                .replicas_for(&key, 2)
                .into_iter()
                .filter(|&b| b != removed)
                .collect();
            let after = shrunk.replicas_for(&key, 2);
            for b in before {
                prop_assert!(
                    after.contains(&b),
                    "backend {} lost its replica of {} on shrink", b, key
                );
            }
        }
    }
}
