//! Small shared utilities for the experiment binaries.

/// A plain-text/markdown table builder with aligned columns.
#[derive(Debug, Clone, Default)]
pub struct MarkdownTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl MarkdownTable {
    /// Creates a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        let mut r: Vec<String> = cells.to_vec();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
        self
    }

    /// Convenience for string-slice rows.
    pub fn row_strs(&mut self, cells: &[&str]) -> &mut Self {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with `|` separators and aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("|-{}-|", sep.join("-|-")));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Scheduler-visible parallelism (what `std::thread` sees; cgroup and
/// affinity limits included). `0` when the OS refuses to say.
pub fn host_parallelism() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(0)
}

/// Physical/logical CPU count from `/proc/cpuinfo` — can exceed
/// [`host_parallelism`] inside a CPU-limited container, which is
/// exactly the distinction a throughput number needs recorded.
pub fn host_cpus() -> u64 {
    std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count() as u64)
        .ok()
        .filter(|&n| n > 0)
        .unwrap_or_else(host_parallelism)
}

/// The `host` header every `BENCH_*.json` document carries: throughput
/// and scaling numbers are meaningless without knowing how many cores
/// the run actually had.
pub fn host_json() -> serde_json::Value {
    serde_json::Value::Object(vec![
        (
            "parallelism".into(),
            serde_json::Value::Number(serde_json::Number::U(host_parallelism())),
        ),
        (
            "cpus".into(),
            serde_json::Value::Number(serde_json::Number::U(host_cpus())),
        ),
    ])
}

/// Formats microseconds human-readably (`950 us`, `12.3 ms`, `4.56 s`).
pub fn format_duration_us(us: u64) -> String {
    if us < 1_000 {
        format!("{us} us")
    } else if us < 1_000_000 {
        format!("{:.1} ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2} s", us as f64 / 1_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = MarkdownTable::new(&["name", "value"]);
        t.row_strs(&["a", "1"]);
        t.row_strs(&["long_name", "22"]);
        let s = t.render();
        assert!(s.contains("| name      | value |"));
        assert!(s.contains("| long_name | 22    |"));
        assert_eq!(s.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = MarkdownTable::new(&["a", "b", "c"]);
        t.row_strs(&["x"]);
        assert!(t.render().lines().count() == 3);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration_us(950), "950 us");
        assert_eq!(format_duration_us(12_300), "12.3 ms");
        assert_eq!(format_duration_us(4_560_000), "4.56 s");
    }
}
