//! Regenerates paper Figure 5 (interface snapshot).
fn main() {
    print!("{}", ziggy_bench::experiments::fig5::run(7));
}
