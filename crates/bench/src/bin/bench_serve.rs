//! Serving-layer throughput microbenchmark.
//!
//! Starts an in-process `ziggy-serve` server, loads the US-crime
//! synthetic twin (1994×128, the paper's heaviest interactive dataset),
//! and measures characterization requests/second under concurrent
//! keep-alive clients issuing a *repeated* query — the exploratory warm
//! path all three reuse levels target. The warm phase reports the
//! report-cache counters so the step change from byte-level reuse is
//! visible in `BENCH_serve.json`, and a final conditional phase measures
//! the `If-None-Match`/`304` revalidation rate. Emits
//! `BENCH_serve.json` so later PRs can track the serving-path
//! trajectory.
//!
//! A second phase sweeps a **row-count scaling matrix**: synthetic
//! scaling twins (16 columns, sizes from `--scale-sizes`, default
//! 10k/100k/1M) each get a clustered `event_time` column so the
//! chunked data plane has something to zone-map against, and the
//! bench records per-size cold / warm / zone-query latency plus the
//! chunk counters (`chunks_skipped`/`filled`/`scanned`) into
//! `BENCH_serve.json`.
//!
//! ```text
//! cargo run --release -p ziggy-bench --bin bench_serve \
//!     [-- --clients 8 --requests 64 --scale-sizes 10000,100000,1000000 \
//!          --assert-report-hits --assert-zone-skips]
//! ```
//!
//! `--assert-report-hits` exits nonzero unless the warm phase recorded
//! report-cache hits (the CI smoke job pins the fast path with it).
//! `--assert-zone-skips` exits nonzero unless every multi-chunk
//! scaling entry both skipped and filled chunks via its zone maps —
//! the CI floor proving summary-based skipping stays engaged.

use std::io::Write as _;
use std::time::Instant;

use serde_json::{Number, Value};
use ziggy_obs::{Histogram, TraceEntry};
use ziggy_serve::http::Client;
use ziggy_serve::{serve, ServeOptions};
use ziggy_store::{Table, TableBuilder, CHUNK_ROWS};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_list(name: &str, default: &[usize]) -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| default.to_vec())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn num_u(n: u64) -> Value {
    Value::Number(Number::U(n))
}

fn num_f(x: f64) -> Value {
    Value::Number(Number::F(x))
}

/// Condensed span breakdown of one recorded trace — the per-stage µs
/// the flight recorder saw, without the attr noise of the full
/// `/debug/traces/{id}` form.
fn trace_breakdown(entry: &TraceEntry) -> Value {
    Value::Object(vec![
        ("trace_id".into(), Value::String(entry.trace_id.clone())),
        ("duration_us".into(), num_u(entry.duration_us)),
        (
            "spans".into(),
            Value::Array(
                entry
                    .spans
                    .iter()
                    .map(|s| {
                        Value::Object(vec![
                            ("name".into(), Value::String(s.name.clone())),
                            ("duration_us".into(), num_u(s.duration_us)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The scaling twin plus a clustered `event_time` column (the row
/// index): real tables almost always carry an ingest-ordered timestamp,
/// and it is exactly the shape zone maps exploit.
fn with_event_time(twin: &Table) -> Table {
    let n = twin.n_rows();
    let mut b = TableBuilder::new();
    b.add_numeric("event_time", (0..n).map(|i| i as f64).collect());
    for c in 0..twin.n_cols() {
        b.add_numeric(
            twin.name(c),
            twin.numeric(c).expect("scaling twins are numeric").to_vec(),
        );
    }
    b.build().expect("rebuilt scaling table")
}

fn query_json(predicate: &str) -> String {
    serde_json::to_string(&Value::Object(vec![(
        "query".to_string(),
        Value::String(predicate.to_string()),
    )]))
    .unwrap()
}

/// One characterize request, returning its wall latency in ms.
fn timed_characterize(client: &mut Client, path: &str, body: &str) -> f64 {
    let t = Instant::now();
    let (status, resp) = client.request("POST", path, Some(body)).unwrap();
    assert_eq!(status, 200, "{resp}");
    t.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let clients = arg("--clients", 8).max(1);
    let requests_per_client = arg("--requests", 64).max(1) / clients.max(1);
    let requests_per_client = requests_per_client.max(1);

    let twin = ziggy_synth::us_crime(7);
    let (n_rows, n_cols) = (twin.table.n_rows(), twin.table.n_cols());
    let query_body = serde_json::to_string(&serde_json::Value::Object(vec![(
        "query".to_string(),
        serde_json::Value::String(twin.predicate.clone()),
    )]))
    .unwrap();

    let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
    let addr = server.local_addr();
    server
        .state()
        .registry
        .insert_table("crime", twin.table, server.state().config.clone())
        .unwrap();

    // Cold request: pays the whole-table statistics + dependency graph.
    // A pinned request id lets the flight recorder hand back the cold
    // trace's span breakdown afterwards.
    let t_cold = Instant::now();
    let mut warmup = Client::connect(addr).unwrap();
    let (status, _, body) = warmup
        .request_with_headers(
            "POST",
            "/tables/crime/characterize",
            &[("X-Request-Id", "bench-cold")],
            Some(&query_body),
        )
        .unwrap();
    assert_eq!(status, 200, "{body}");
    let cold_ms = t_cold.elapsed().as_secs_f64() * 1e3;
    drop(warmup);
    let cold_trace = server
        .state()
        .recorder
        .trace("bench-cold")
        .map(|e| trace_breakdown(&e))
        .unwrap_or(Value::Null);

    // Warm phase: all clients hammer the shared engine concurrently.
    // Per-request latencies land in one shared lock-free histogram, the
    // same log-linear ladder `/metrics` exposes, so the JSON reports
    // tail percentiles instead of just a mean.
    let total_requests = clients * requests_per_client;
    let latency = Histogram::new();
    let t_warm = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            let query_body = &query_body;
            let latency = &latency;
            s.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..requests_per_client {
                    let t_req = Instant::now();
                    let (status, body) = client
                        .request("POST", "/tables/crime/characterize", Some(query_body))
                        .unwrap();
                    latency.record(t_req.elapsed());
                    assert_eq!(status, 200, "{body}");
                }
            });
        }
    });
    let elapsed = t_warm.elapsed().as_secs_f64();
    let rps = total_requests as f64 / elapsed;
    let snap = latency.snapshot();
    let pct_ms = |q: f64| snap.quantile_us(q).unwrap_or(0) as f64 / 1e3;

    // Slowest warm request, by the flight recorder's own clock: the
    // span breakdown shows *where* the warm tail spends its time.
    let slowest_warm_trace = server
        .state()
        .recorder
        .recent()
        .iter()
        .filter(|e| e.route.as_deref() == Some("characterize") && e.trace_id != "bench-cold")
        .max_by_key(|e| e.duration_us)
        .map(trace_breakdown)
        .unwrap_or(Value::Null);

    // Revalidation phase: warm clients holding the ETag revalidate with
    // If-None-Match and get bodyless 304s.
    let mut reval = Client::connect(addr).unwrap();
    let (_, headers, _) = reval
        .request_with_headers("POST", "/tables/crime/characterize", &[], Some(&query_body))
        .unwrap();
    let etag = headers
        .iter()
        .find(|(k, _)| k == "etag")
        .map(|(_, v)| v.clone())
        .expect("characterize must carry an ETag");
    let t_reval = Instant::now();
    let mut not_modified = 0usize;
    for _ in 0..total_requests {
        let (status, _, _) = reval
            .request_with_headers(
                "POST",
                "/tables/crime/characterize",
                &[("If-None-Match", &etag)],
                Some(&query_body),
            )
            .unwrap();
        if status == 304 {
            not_modified += 1;
        }
    }
    let reval_elapsed = t_reval.elapsed().as_secs_f64();
    let reval_rps = total_requests as f64 / reval_elapsed;

    // Row-count scaling matrix: per-size cold characterize (whole-table
    // statistics + chunked parallel prepare), warm repeat (report-cache
    // hit), and a clustered zone query that must engage summary-based
    // chunk skipping on every multi-chunk table.
    let scale_sizes = arg_list("--scale-sizes", &[10_000, 100_000, 1_000_000]);
    let mut scaling_entries = Vec::new();
    let mut zone_floor_ok = true;
    for &rows in &scale_sizes {
        let t_build = Instant::now();
        let twin = ziggy_synth::scaling_dataset(rows, 16, 7);
        let table = with_event_time(&twin.table);
        let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
        let name = format!("scale_{rows}");
        let entry = server
            .state()
            .registry
            .insert_table(&name, table, server.state().config.clone())
            .unwrap();
        let path = format!("/tables/{name}/characterize");
        let mut client = Client::connect(addr).unwrap();
        let driver_body = query_json(&twin.predicate);
        let cold_ms = timed_characterize(&mut client, &path, &driver_body);
        let warm_ms = timed_characterize(&mut client, &path, &driver_body);
        // Clustered predicate, chunk-aligned so the geometry is exact:
        // on a multi-chunk table the first chunk fills (all its
        // event_time values are below the cut) and every later chunk
        // skips (all at or above it).
        let cut = (rows * 7 / 10).min(CHUNK_ROWS);
        let zone_body = query_json(&format!("event_time < {cut}"));
        let zone_ms = timed_characterize(&mut client, &path, &zone_body);
        let (skipped, filled, scanned) = entry.cache().zone_maps().counters();
        if rows > CHUNK_ROWS && (skipped == 0 || filled == 0) {
            zone_floor_ok = false;
        }
        eprintln!(
            "scale {rows}: build {build_ms:.0} ms, cold {cold_ms:.1} ms, warm {warm_ms:.2} ms, \
             zone query {zone_ms:.1} ms (chunks skipped {skipped} / filled {filled} / scanned {scanned})"
        );
        scaling_entries.push(Value::Object(vec![
            ("rows".into(), num_u(rows as u64)),
            ("cols".into(), num_u(17)),
            ("build_ms".into(), num_f(build_ms)),
            ("cold_characterize_ms".into(), num_f(cold_ms)),
            ("warm_characterize_ms".into(), num_f(warm_ms)),
            ("zone_query_ms".into(), num_f(zone_ms)),
            (
                "zone_maps".into(),
                Value::Object(vec![
                    ("chunks_skipped".into(), num_u(skipped)),
                    ("chunks_filled".into(), num_u(filled)),
                    ("chunks_scanned".into(), num_u(scanned)),
                ]),
            ),
        ]));
        // Drop the table again so the matrix doesn't inflate resident
        // memory across sizes.
        server.state().registry.remove(&name).unwrap();
    }

    let entry = server.state().registry.get("crime").unwrap();
    let counters = entry.cache().counters();
    let prepared = entry.engine().prepared_cache().counters();
    let reports = entry.engine().report_cache().counters();

    let result = Value::Object(vec![
        ("benchmark".into(), Value::String("serve_throughput".into())),
        ("host".into(), ziggy_bench::host_json()),
        ("dataset".into(), Value::String("us_crime_twin".into())),
        ("n_rows".into(), num_u(n_rows as u64)),
        ("n_cols".into(), num_u(n_cols as u64)),
        ("client_threads".into(), num_u(clients as u64)),
        ("warm_requests".into(), num_u(total_requests as u64)),
        ("cold_first_request_ms".into(), num_f(cold_ms)),
        ("warm_elapsed_s".into(), num_f(elapsed)),
        ("warm_requests_per_sec".into(), num_f(rps)),
        (
            "warm_mean_latency_ms".into(),
            num_f(elapsed * 1e3 * clients as f64 / total_requests as f64),
        ),
        ("warm_p50_latency_ms".into(), num_f(pct_ms(0.50))),
        ("warm_p95_latency_ms".into(), num_f(pct_ms(0.95))),
        ("warm_p99_latency_ms".into(), num_f(pct_ms(0.99))),
        (
            "cache".into(),
            Value::Object(vec![
                ("hits".into(), num_u(counters.hits)),
                ("misses".into(), num_u(counters.misses)),
            ]),
        ),
        (
            "prepared".into(),
            Value::Object(vec![
                ("hits".into(), num_u(prepared.hits)),
                ("misses".into(), num_u(prepared.misses)),
                ("evictions".into(), num_u(prepared.evictions)),
            ]),
        ),
        (
            "reports".into(),
            Value::Object(vec![
                ("hits".into(), num_u(reports.hits)),
                ("misses".into(), num_u(reports.misses)),
                ("evictions".into(), num_u(reports.evictions)),
            ]),
        ),
        (
            "revalidation".into(),
            Value::Object(vec![
                ("requests".into(), num_u(total_requests as u64)),
                ("not_modified".into(), num_u(not_modified as u64)),
                ("requests_per_sec".into(), num_f(reval_rps)),
            ]),
        ),
        (
            "traces".into(),
            Value::Object(vec![
                ("cold".into(), cold_trace),
                ("slowest_warm".into(), slowest_warm_trace),
            ]),
        ),
        ("scaling".into(), Value::Array(scaling_entries)),
    ]);
    let rendered = serde_json::to_string_pretty(&result).unwrap();
    println!("{rendered}");
    let mut f = std::fs::File::create("BENCH_serve.json").expect("create BENCH_serve.json");
    f.write_all(rendered.as_bytes()).unwrap();
    f.write_all(b"\n").unwrap();
    eprintln!(
        "wrote BENCH_serve.json ({total_requests} requests, {rps:.1} req/s warm, \
         {reval_rps:.1} req/s revalidating, cache {counters:?}, reports {reports:?})"
    );
    if flag("--assert-report-hits") && reports.hits == 0 {
        eprintln!("FAIL: warm repeated-query phase recorded zero report-cache hits");
        std::process::exit(1);
    }
    if flag("--assert-zone-skips") && !zone_floor_ok {
        eprintln!(
            "FAIL: a multi-chunk scaling table answered its clustered zone query \
             without both skipping and filling chunks"
        );
        std::process::exit(1);
    }
    server.shutdown();
}
