//! Table T6: component-family ablation (cost vs accuracy).
fn main() {
    print!("{}", ziggy_bench::experiments::ablation::run(7));
}
