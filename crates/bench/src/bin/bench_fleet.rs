//! Fleet scaling microbenchmark: warm characterize throughput through
//! the router for 1, 2 and 4 backends.
//!
//! Each set spawns N backends with replication = N (the crime twin
//! fully replicated), so the read path spreads across all N engines —
//! the fleet's read-scaling story. Backends run as separate *processes*
//! when the sibling `ziggy` binary is present next to this one (built
//! by `cargo build --release`), else as in-process servers; the mode is
//! recorded in the output so the numbers are never compared across
//! modes by accident. Emits `BENCH_fleet.json` for the perf trajectory.
//!
//! With `--churn`, a membership-churn smoke phase follows the scaling
//! sets: a spare backend joins the ring mid-traffic (`POST
//! /admin/backends`), an original holder is drained out (`DELETE
//! /admin/backends/{id}`), and the phase **asserts zero failed
//! requests** (non-200, rate-limit 429s excluded) plus a converged
//! `replicas` count once the repair loop has re-materialized the table.
//! The phase is recorded under `"churn"` in `BENCH_fleet.json`.
//!
//! ```text
//! cargo run --release -p ziggy-bench --bin bench_fleet [-- --clients 8 --requests 64 --sets 1,2,4 --churn]
//! ```

use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use serde_json::{Number, Value};
use ziggy_fleet::{start_fleet, BackendProcess, FleetOptions};
use ziggy_obs::Histogram;
use ziggy_serve::http::{request_once, Client};
use ziggy_serve::{serve, ServeOptions, ServerHandle};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn arg_sets() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--sets")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn num_u(n: u64) -> Value {
    Value::Number(Number::U(n))
}

fn num_f(x: f64) -> Value {
    Value::Number(Number::F(x))
}

/// Condensed fleet-assembled span breakdown from the router's
/// `/debug/traces/{id}`: per-span name and µs, plus the shard label on
/// spans the backends recorded. `Null` when the trace has already been
/// evicted from the flight recorder.
fn fetch_trace_breakdown(router: SocketAddr, trace_id: &str) -> Value {
    let Ok((status, body)) =
        request_once(router, "GET", &format!("/debug/traces/{trace_id}"), None)
    else {
        return Value::Null;
    };
    if status != 200 {
        return Value::Null;
    }
    let v = serde_json::from_str_value(&body).unwrap();
    let spans: Vec<Value> = v
        .get("spans")
        .and_then(|s| s.as_array())
        .map(|spans| {
            spans
                .iter()
                .map(|s| {
                    let mut pairs = vec![
                        ("name".into(), s.get("name").cloned().unwrap_or(Value::Null)),
                        (
                            "duration_us".into(),
                            s.get("duration_us").cloned().unwrap_or(Value::Null),
                        ),
                    ];
                    if let Some(backend) = s.get("backend") {
                        pairs.push(("backend".into(), backend.clone()));
                    }
                    Value::Object(pairs)
                })
                .collect()
        })
        .unwrap_or_default();
    Value::Object(vec![
        ("trace_id".into(), Value::String(trace_id.to_string())),
        (
            "duration_us".into(),
            v.get("duration_us").cloned().unwrap_or(Value::Null),
        ),
        ("spans".into(), Value::Array(spans)),
    ])
}

/// Backends for one set: real processes when the `ziggy` binary sits
/// next to this bench, in-process servers otherwise.
enum Backends {
    Processes(Vec<BackendProcess>),
    Threads(Vec<ServerHandle>),
}

impl Backends {
    fn spawn(n: usize) -> (Self, Vec<(String, SocketAddr)>, &'static str) {
        let sibling = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("ziggy")))
            .filter(|p| p.is_file());
        if let Some(binary) = sibling {
            let mut children = Vec::with_capacity(n);
            let mut ok = true;
            for i in 0..n {
                match BackendProcess::spawn(&binary, format!("shard-{i}"), &[]) {
                    Ok(c) => children.push(c),
                    Err(e) => {
                        eprintln!("process backend spawn failed ({e}); using threads");
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let addrs = children
                    .iter()
                    .map(|c| (c.id().to_string(), c.addr()))
                    .collect();
                return (Self::Processes(children), addrs, "processes");
            }
        }
        let handles: Vec<ServerHandle> = (0..n)
            .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
            .collect();
        let addrs = handles
            .iter()
            .enumerate()
            .map(|(i, h)| (format!("shard-{i}"), h.local_addr()))
            .collect();
        (Self::Threads(handles), addrs, "threads")
    }

    fn shutdown(self) {
        match self {
            Self::Processes(mut children) => children.iter_mut().for_each(|c| c.kill()),
            Self::Threads(handles) => handles.into_iter().for_each(|h| h.shutdown()),
        }
    }
}

struct SetResult {
    backends: usize,
    mode: &'static str,
    ingest_ms: f64,
    warm_rps: f64,
    warm_elapsed_s: f64,
    warm_p50_ms: f64,
    warm_p95_ms: f64,
    warm_p99_ms: f64,
    total_requests: usize,
    failovers: u64,
    cold_trace: Value,
    slowest_warm_trace: Value,
}

fn run_set(
    n_backends: usize,
    clients: usize,
    requests_per_client: usize,
    ingest_body: &str,
    query_body: &str,
) -> SetResult {
    let (backends, addrs, mode) = Backends::spawn(n_backends);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            // Full replication: every backend serves the one hot table,
            // so throughput measures the read-scaling curve.
            replication: n_backends,
            probe_interval: Duration::from_millis(500),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let t_ingest = Instant::now();
    let (status, resp) = request_once(router, "POST", "/tables", Some(ingest_body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;

    // Warm every replica: reads rotate round-robin, so 2N requests give
    // each backend its cold build (stats cache + PreparedStats). The
    // first of them is the cold hop — a pinned request id lets the
    // router assemble its fleet-wide span breakdown afterwards.
    let cold_id = format!("bench-cold-{n_backends}");
    let cold_headers = [("X-Request-Id", cold_id.as_str())];
    let mut warm = Client::connect(router).unwrap();
    for i in 0..(2 * n_backends) {
        let headers: &[(&str, &str)] = if i == 0 { &cold_headers } else { &[] };
        let (status, _, body) = warm
            .request_with_headers(
                "POST",
                "/tables/crime/characterize",
                headers,
                Some(query_body),
            )
            .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    drop(warm);
    let cold_trace = fetch_trace_breakdown(router, &cold_id);

    let total_requests = clients * requests_per_client;
    // End-to-end (client → router → backend) latency percentiles, on
    // the same log-linear ladder `/metrics` exposes.
    let latency = Histogram::new();
    let t_warm = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            let latency = &latency;
            s.spawn(move || {
                let mut client = Client::connect(router).unwrap();
                for _ in 0..requests_per_client {
                    let t_req = Instant::now();
                    let (status, body) = client
                        .request("POST", "/tables/crime/characterize", Some(query_body))
                        .unwrap();
                    latency.record(t_req.elapsed());
                    assert_eq!(status, 200, "{body}");
                }
            });
        }
    });
    let warm_elapsed_s = t_warm.elapsed().as_secs_f64();
    let failovers = fleet.state().metrics.failovers_total.get();
    let snap = latency.snapshot();
    let pct_ms = |q: f64| snap.quantile_us(q).unwrap_or(0) as f64 / 1e3;

    // Slowest warm request by the router recorder's own clock; its
    // fleet-assembled breakdown shows which hop the tail hides in.
    let slowest_warm_trace = fleet
        .state()
        .recorder
        .recent()
        .iter()
        .filter(|e| e.route.as_deref() == Some("characterize") && e.trace_id != cold_id)
        .max_by_key(|e| e.duration_us)
        .map(|e| fetch_trace_breakdown(router, &e.trace_id))
        .unwrap_or(Value::Null);

    fleet.shutdown();
    backends.shutdown();
    SetResult {
        backends: n_backends,
        mode,
        ingest_ms,
        warm_rps: total_requests as f64 / warm_elapsed_s,
        warm_elapsed_s,
        warm_p50_ms: pct_ms(0.50),
        warm_p95_ms: pct_ms(0.95),
        warm_p99_ms: pct_ms(0.99),
        total_requests,
        failovers,
        cold_trace,
        slowest_warm_trace,
    }
}

/// Warm characterize throughput against a single backend with **no
/// router in between** — the data plane's speed-of-light. The router's
/// warm rate divided by this is the proxy's multiplicative overhead
/// (`router_direct_ratio`), the honest way to report relay cost.
fn run_direct(
    clients: usize,
    requests_per_client: usize,
    ingest_body: &str,
    query_body: &str,
) -> f64 {
    let (backends, addrs, _mode) = Backends::spawn(1);
    let direct = addrs[0].1;
    let (status, resp) = request_once(direct, "POST", "/tables", Some(ingest_body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    // Warm the caches off the clock.
    let mut warm = Client::connect(direct).unwrap();
    for _ in 0..2 {
        let (status, body) = warm
            .request("POST", "/tables/crime/characterize", Some(query_body))
            .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    drop(warm);
    let total_requests = clients * requests_per_client;
    let t = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(direct).unwrap();
                for _ in 0..requests_per_client {
                    let (status, body) = client
                        .request("POST", "/tables/crime/characterize", Some(query_body))
                        .unwrap();
                    assert_eq!(status, 200, "{body}");
                }
            });
        }
    });
    let rps = total_requests as f64 / t.elapsed().as_secs_f64();
    backends.shutdown();
    rps
}

struct ChurnResult {
    backends: usize,
    replication: usize,
    requests: usize,
    failed: usize,
    epoch_end: u64,
    converged_replicas: u64,
    repairs: u64,
    elapsed_s: f64,
}

/// The membership-churn smoke: live traffic over `n_backends` (+1 spare
/// joining mid-run), one admin add, one admin remove of a table holder,
/// zero tolerated failures, and convergence back to R live replicas.
/// Requires `n_backends >= 2` so removing a holder never strands the
/// only copy.
fn run_churn(
    n_backends: usize,
    clients: usize,
    ingest_body: &str,
    query_body: &str,
) -> ChurnResult {
    assert!(n_backends >= 2, "churn needs at least two initial backends");
    let (backends, mut addrs, _mode) = Backends::spawn(n_backends + 1);
    let (spare_id, spare_addr) = addrs.pop().expect("spawned n+1 backends");
    let replication = 2usize;
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            replication,
            probe_interval: Duration::from_millis(100),
            repair_interval: Some(Duration::from_millis(150)),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let (status, resp) = request_once(router, "POST", "/tables", Some(ingest_body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    // Which member holds the table? That's the one the churn drains.
    let holder = {
        let (status, resp) = request_once(router, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200, "{resp}");
        let health = serde_json::from_str_value(&resp).unwrap();
        let members: Vec<(String, String)> = health
            .get("backends")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .map(|b| {
                (
                    b.get("id").unwrap().as_str().unwrap().to_string(),
                    b.get("addr").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        members
            .into_iter()
            .find(|(_, addr)| {
                let addr: std::net::SocketAddr = addr.parse().unwrap();
                let (s, listing) = request_once(addr, "GET", "/tables", None).unwrap();
                s == 200 && listing.contains("\"crime\"")
            })
            .expect("a member holds the table")
            .0
    };

    let t_start = Instant::now();
    let stop = std::sync::atomic::AtomicBool::new(false);
    let spare_join = serde_json::to_string(&Value::Object(vec![
        ("id".into(), Value::String(spare_id)),
        ("addr".into(), Value::String(spare_addr.to_string())),
    ]))
    .unwrap();
    let (requests, failed) = std::thread::scope(|s| {
        let workers: Vec<_> = (0..clients.max(1))
            .map(|_| {
                s.spawn(|| {
                    let mut requests = 0usize;
                    let mut failed = 0usize;
                    let mut client = Client::connect(router).unwrap();
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let (status, _) = client
                            .request("POST", "/tables/crime/characterize", Some(query_body))
                            .unwrap();
                        requests += 1;
                        // Rate-limit 429s would be client pushback, not
                        // failures; everything else must be a 200.
                        if status != 200 && status != 429 {
                            failed += 1;
                        }
                    }
                    (requests, failed)
                })
            })
            .collect();
        // Mid-run: grow the ring, then drain a holder out of it.
        std::thread::sleep(Duration::from_millis(200));
        let (status, resp) =
            request_once(router, "POST", "/admin/backends", Some(&spare_join)).unwrap();
        assert_eq!(status, 201, "join mid-run: {resp}");
        std::thread::sleep(Duration::from_millis(400));
        let (status, resp) =
            request_once(router, "DELETE", &format!("/admin/backends/{holder}"), None).unwrap();
        assert_eq!(status, 200, "drain mid-run: {resp}");
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        workers
            .into_iter()
            .map(|w| w.join().unwrap())
            .fold((0, 0), |(r, f), (wr, wf)| (r + wr, f + wf))
    });

    // Convergence: the repair loop restores R live replicas among the
    // post-churn members.
    let deadline = Instant::now() + Duration::from_secs(30);
    let converged_replicas = loop {
        let (status, listing) = request_once(router, "GET", "/tables", None).unwrap();
        assert_eq!(status, 200);
        let v = serde_json::from_str_value(&listing).unwrap();
        let replicas = v.get("tables").unwrap().as_array().unwrap()[0]
            .get("replicas")
            .unwrap()
            .as_u64()
            .unwrap();
        if replicas >= replication as u64 {
            break replicas;
        }
        assert!(
            Instant::now() < deadline,
            "churn replication never converged: {listing}"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    let elapsed_s = t_start.elapsed().as_secs_f64();
    let epoch_end = fleet.state().epoch();
    let repairs = fleet.state().metrics.repairs_total.get();

    assert_eq!(
        failed, 0,
        "membership churn must be invisible to clients ({failed}/{requests} failed)"
    );

    fleet.shutdown();
    backends.shutdown();
    ChurnResult {
        backends: n_backends,
        replication,
        requests,
        failed,
        epoch_end,
        converged_replicas,
        repairs,
        elapsed_s,
    }
}

fn main() {
    let clients = arg("--clients", 8).max(1);
    let requests_per_client = (arg("--requests", 64).max(1) / clients).max(1);
    let sets = arg_sets();
    let min_rps = arg("--assert-min-rps", 0);

    if ziggy_bench::host_parallelism() <= 1 && sets.len() > 1 {
        eprintln!(
            "\n{0}\nWARNING: this host exposes 1 CPU to the scheduler — every set is\n\
             CPU-bound at the single-backend rate, so the scaling curve below is\n\
             NOT a scaling measurement. Compare sets only on multi-core hosts.\n{0}\n",
            "=".repeat(72)
        );
    }

    let twin = ziggy_synth::us_crime(7);
    let (n_rows, n_cols) = (twin.table.n_rows(), twin.table.n_cols());
    let csv = ziggy_store::csv::write_csv_string(&twin.table, ',');
    let ingest_body = serde_json::to_string(&Value::Object(vec![
        ("name".into(), Value::String("crime".into())),
        ("csv".into(), Value::String(csv)),
    ]))
    .unwrap();
    let query_body = serde_json::to_string(&Value::Object(vec![(
        "query".into(),
        Value::String(twin.predicate.clone()),
    )]))
    .unwrap();

    let mut results = Vec::new();
    for &n in &sets {
        eprintln!("--- fleet set: {n} backend(s), {clients} clients ---");
        let r = run_set(n, clients, requests_per_client, &ingest_body, &query_body);
        eprintln!(
            "    {} req in {:.2}s = {:.1} req/s ({} mode, {} failovers)",
            r.total_requests, r.warm_elapsed_s, r.warm_rps, r.mode, r.failovers
        );
        results.push(r);
    }

    let churn = if flag("--churn") {
        let n = sets.iter().copied().max().unwrap_or(2).max(2);
        eprintln!("--- churn smoke: {n}+1 backends, join + drain mid-traffic ---");
        let c = run_churn(n, clients, &ingest_body, &query_body);
        eprintln!(
            "    {} req, {} failed, epoch {} at end, {} repair(s), replicas {} (converged)",
            c.requests, c.failed, c.epoch_end, c.repairs, c.converged_replicas
        );
        Some(c)
    } else {
        None
    };

    // Speed-of-light comparison: the same workload with no router.
    eprintln!("--- direct set: 1 backend, no router ---");
    let direct_rps = run_direct(clients, requests_per_client, &ingest_body, &query_body);
    let baseline = results.first().map(|r| r.warm_rps).unwrap_or(1.0);
    let router_direct_ratio = baseline / direct_rps.max(f64::MIN_POSITIVE);
    eprintln!(
        "    direct {direct_rps:.1} req/s; router(n=1) {baseline:.1} req/s; ratio {router_direct_ratio:.2}"
    );
    let churn_json = match &churn {
        None => Value::Null,
        Some(c) => Value::Object(vec![
            ("backends".into(), num_u(c.backends as u64)),
            ("replication".into(), num_u(c.replication as u64)),
            ("requests".into(), num_u(c.requests as u64)),
            ("failed".into(), num_u(c.failed as u64)),
            ("epoch_end".into(), num_u(c.epoch_end)),
            ("converged_replicas".into(), num_u(c.converged_replicas)),
            ("repairs".into(), num_u(c.repairs)),
            ("elapsed_s".into(), num_f(c.elapsed_s)),
        ]),
    };
    let result = Value::Object(vec![
        ("benchmark".into(), Value::String("fleet_scaling".into())),
        ("churn".into(), churn_json),
        ("dataset".into(), Value::String("us_crime_twin".into())),
        ("n_rows".into(), num_u(n_rows as u64)),
        ("n_cols".into(), num_u(n_cols as u64)),
        ("client_threads".into(), num_u(clients as u64)),
        (
            "requests_per_set".into(),
            num_u((clients * requests_per_client) as u64),
        ),
        // The scaling curve is only meaningful relative to the host's
        // parallelism: on a 1-core container every set is CPU-bound at
        // the single-backend rate; the fleet's scaling shows up with
        // cores (or boxes) to spread across.
        ("host".into(), ziggy_bench::host_json()),
        (
            "host_parallelism".into(),
            num_u(ziggy_bench::host_parallelism()),
        ),
        (
            "direct".into(),
            Value::Object(vec![
                ("warm_requests_per_sec".into(), num_f(direct_rps)),
                ("router_direct_ratio".into(), num_f(router_direct_ratio)),
            ]),
        ),
        (
            "results".into(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("backends".into(), num_u(r.backends as u64)),
                            ("replication".into(), num_u(r.backends as u64)),
                            ("mode".into(), Value::String(r.mode.into())),
                            ("ingest_ms".into(), num_f(r.ingest_ms)),
                            ("warm_requests_per_sec".into(), num_f(r.warm_rps)),
                            ("warm_elapsed_s".into(), num_f(r.warm_elapsed_s)),
                            ("warm_p50_latency_ms".into(), num_f(r.warm_p50_ms)),
                            ("warm_p95_latency_ms".into(), num_f(r.warm_p95_ms)),
                            ("warm_p99_latency_ms".into(), num_f(r.warm_p99_ms)),
                            ("speedup_vs_1".into(), num_f(r.warm_rps / baseline)),
                            ("failovers".into(), num_u(r.failovers)),
                            (
                                "traces".into(),
                                Value::Object(vec![
                                    ("cold".into(), r.cold_trace.clone()),
                                    ("slowest_warm".into(), r.slowest_warm_trace.clone()),
                                ]),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&result).unwrap();
    println!("{rendered}");
    let mut f = std::fs::File::create("BENCH_fleet.json").expect("create BENCH_fleet.json");
    f.write_all(rendered.as_bytes()).unwrap();
    f.write_all(b"\n").unwrap();
    eprintln!("wrote BENCH_fleet.json");

    // CI throughput floor: the event-loop data plane must never regress
    // back into thread-per-connection territory unnoticed.
    if min_rps > 0 {
        let best = results.iter().map(|r| r.warm_rps).fold(0.0, f64::max);
        assert!(
            best >= min_rps as f64,
            "router warm throughput {best:.1} req/s is below the asserted floor of {min_rps} req/s"
        );
        eprintln!("throughput floor ok: {best:.1} >= {min_rps} req/s");
    }
}
