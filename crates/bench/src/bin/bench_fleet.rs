//! Fleet scaling microbenchmark: warm characterize throughput through
//! the router for 1, 2 and 4 backends.
//!
//! Each set spawns N backends with replication = N (the crime twin
//! fully replicated), so the read path spreads across all N engines —
//! the fleet's read-scaling story. Backends run as separate *processes*
//! when the sibling `ziggy` binary is present next to this one (built
//! by `cargo build --release`), else as in-process servers; the mode is
//! recorded in the output so the numbers are never compared across
//! modes by accident. Emits `BENCH_fleet.json` for the perf trajectory.
//!
//! ```text
//! cargo run --release -p ziggy-bench --bin bench_fleet [-- --clients 8 --requests 64 --sets 1,2,4]
//! ```

use std::io::Write as _;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use serde_json::{Number, Value};
use ziggy_fleet::{start_fleet, BackendProcess, FleetOptions};
use ziggy_serve::http::{request_once, Client};
use ziggy_serve::{serve, ServeOptions, ServerHandle};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_sets() -> Vec<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--sets")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4])
}

fn num_u(n: u64) -> Value {
    Value::Number(Number::U(n))
}

fn num_f(x: f64) -> Value {
    Value::Number(Number::F(x))
}

/// Backends for one set: real processes when the `ziggy` binary sits
/// next to this bench, in-process servers otherwise.
enum Backends {
    Processes(Vec<BackendProcess>),
    Threads(Vec<ServerHandle>),
}

impl Backends {
    fn spawn(n: usize) -> (Self, Vec<(String, SocketAddr)>, &'static str) {
        let sibling = std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join("ziggy")))
            .filter(|p| p.is_file());
        if let Some(binary) = sibling {
            let mut children = Vec::with_capacity(n);
            let mut ok = true;
            for i in 0..n {
                match BackendProcess::spawn(&binary, format!("shard-{i}"), &[]) {
                    Ok(c) => children.push(c),
                    Err(e) => {
                        eprintln!("process backend spawn failed ({e}); using threads");
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                let addrs = children
                    .iter()
                    .map(|c| (c.id().to_string(), c.addr()))
                    .collect();
                return (Self::Processes(children), addrs, "processes");
            }
        }
        let handles: Vec<ServerHandle> = (0..n)
            .map(|_| serve("127.0.0.1:0", ServeOptions::default()).unwrap())
            .collect();
        let addrs = handles
            .iter()
            .enumerate()
            .map(|(i, h)| (format!("shard-{i}"), h.local_addr()))
            .collect();
        (Self::Threads(handles), addrs, "threads")
    }

    fn shutdown(self) {
        match self {
            Self::Processes(mut children) => children.iter_mut().for_each(|c| c.kill()),
            Self::Threads(handles) => handles.into_iter().for_each(|h| h.shutdown()),
        }
    }
}

struct SetResult {
    backends: usize,
    mode: &'static str,
    ingest_ms: f64,
    warm_rps: f64,
    warm_elapsed_s: f64,
    total_requests: usize,
    failovers: u64,
}

fn run_set(
    n_backends: usize,
    clients: usize,
    requests_per_client: usize,
    ingest_body: &str,
    query_body: &str,
) -> SetResult {
    let (backends, addrs, mode) = Backends::spawn(n_backends);
    let fleet = start_fleet(
        "127.0.0.1:0",
        addrs,
        FleetOptions {
            // Full replication: every backend serves the one hot table,
            // so throughput measures the read-scaling curve.
            replication: n_backends,
            probe_interval: Duration::from_millis(500),
            ..FleetOptions::default()
        },
    )
    .unwrap();
    let router = fleet.local_addr();

    let t_ingest = Instant::now();
    let (status, resp) = request_once(router, "POST", "/tables", Some(ingest_body)).unwrap();
    assert_eq!(status, 201, "{resp}");
    let ingest_ms = t_ingest.elapsed().as_secs_f64() * 1e3;

    // Warm every replica: reads rotate round-robin, so 2N requests give
    // each backend its cold build (stats cache + PreparedStats).
    let mut warm = Client::connect(router).unwrap();
    for _ in 0..(2 * n_backends) {
        let (status, body) = warm
            .request("POST", "/tables/crime/characterize", Some(query_body))
            .unwrap();
        assert_eq!(status, 200, "{body}");
    }
    drop(warm);

    let total_requests = clients * requests_per_client;
    let t_warm = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..clients {
            s.spawn(move || {
                let mut client = Client::connect(router).unwrap();
                for _ in 0..requests_per_client {
                    let (status, body) = client
                        .request("POST", "/tables/crime/characterize", Some(query_body))
                        .unwrap();
                    assert_eq!(status, 200, "{body}");
                }
            });
        }
    });
    let warm_elapsed_s = t_warm.elapsed().as_secs_f64();
    let failovers = fleet.state().metrics.failovers_total.get();

    fleet.shutdown();
    backends.shutdown();
    SetResult {
        backends: n_backends,
        mode,
        ingest_ms,
        warm_rps: total_requests as f64 / warm_elapsed_s,
        warm_elapsed_s,
        total_requests,
        failovers,
    }
}

fn main() {
    let clients = arg("--clients", 8).max(1);
    let requests_per_client = (arg("--requests", 64).max(1) / clients).max(1);
    let sets = arg_sets();

    let twin = ziggy_synth::us_crime(7);
    let (n_rows, n_cols) = (twin.table.n_rows(), twin.table.n_cols());
    let csv = ziggy_store::csv::write_csv_string(&twin.table, ',');
    let ingest_body = serde_json::to_string(&Value::Object(vec![
        ("name".into(), Value::String("crime".into())),
        ("csv".into(), Value::String(csv)),
    ]))
    .unwrap();
    let query_body = serde_json::to_string(&Value::Object(vec![(
        "query".into(),
        Value::String(twin.predicate.clone()),
    )]))
    .unwrap();

    let mut results = Vec::new();
    for &n in &sets {
        eprintln!("--- fleet set: {n} backend(s), {clients} clients ---");
        let r = run_set(n, clients, requests_per_client, &ingest_body, &query_body);
        eprintln!(
            "    {} req in {:.2}s = {:.1} req/s ({} mode, {} failovers)",
            r.total_requests, r.warm_elapsed_s, r.warm_rps, r.mode, r.failovers
        );
        results.push(r);
    }

    let baseline = results.first().map(|r| r.warm_rps).unwrap_or(1.0);
    let result = Value::Object(vec![
        ("benchmark".into(), Value::String("fleet_scaling".into())),
        ("dataset".into(), Value::String("us_crime_twin".into())),
        ("n_rows".into(), num_u(n_rows as u64)),
        ("n_cols".into(), num_u(n_cols as u64)),
        ("client_threads".into(), num_u(clients as u64)),
        (
            "requests_per_set".into(),
            num_u((clients * requests_per_client) as u64),
        ),
        // The scaling curve is only meaningful relative to the host's
        // parallelism: on a 1-core container every set is CPU-bound at
        // the single-backend rate; the fleet's scaling shows up with
        // cores (or boxes) to spread across.
        (
            "host_parallelism".into(),
            num_u(
                std::thread::available_parallelism()
                    .map(|n| n.get() as u64)
                    .unwrap_or(0),
            ),
        ),
        (
            "results".into(),
            Value::Array(
                results
                    .iter()
                    .map(|r| {
                        Value::Object(vec![
                            ("backends".into(), num_u(r.backends as u64)),
                            ("replication".into(), num_u(r.backends as u64)),
                            ("mode".into(), Value::String(r.mode.into())),
                            ("ingest_ms".into(), num_f(r.ingest_ms)),
                            ("warm_requests_per_sec".into(), num_f(r.warm_rps)),
                            ("warm_elapsed_s".into(), num_f(r.warm_elapsed_s)),
                            ("speedup_vs_1".into(), num_f(r.warm_rps / baseline)),
                            ("failovers".into(), num_u(r.failovers)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    let rendered = serde_json::to_string_pretty(&result).unwrap();
    println!("{rendered}");
    let mut f = std::fs::File::create("BENCH_fleet.json").expect("create BENCH_fleet.json");
    f.write_all(rendered.as_bytes()).unwrap();
    f.write_all(b"\n").unwrap();
    eprintln!("wrote BENCH_fleet.json");
}
