//! Regenerates paper Figure 1 (four characteristic views, US Crime).
fn main() {
    print!("{}", ziggy_bench::experiments::fig1::run(7));
}
