//! Use case U2: US Crime with the surprise predictor (paper section 4.2).
fn main() {
    print!("{}", ziggy_bench::experiments::usecases::crime_usecase(7));
}
