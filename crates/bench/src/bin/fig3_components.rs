//! Regenerates paper Figure 3 (Zig-Components on one view).
fn main() {
    print!("{}", ziggy_bench::experiments::fig3::run(7));
}
