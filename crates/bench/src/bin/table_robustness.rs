//! Table T4: spurious-view control under the null.
fn main() {
    print!("{}", ziggy_bench::experiments::robustness::run(7, 20));
}
