//! Use case U3: Countries & Innovation at 519 columns (paper section 4.2).
fn main() {
    print!(
        "{}",
        ziggy_bench::experiments::usecases::innovation_usecase(7)
    );
}
