//! Regenerates paper Figure 4 (pipeline stage breakdown).
fn main() {
    print!("{}", ziggy_bench::experiments::fig4::run(7, true));
}
