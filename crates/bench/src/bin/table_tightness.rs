//! Table T3: tightness-threshold ablation.
fn main() {
    print!("{}", ziggy_bench::experiments::tightness::run(7));
}
