//! Durability-tier microbenchmark: what does each `--durability` mode
//! cost, and how fast does a crashed process come back?
//!
//! For each mode (`fsync`, `batch`, `async`) the harness opens a fresh
//! segmented log, appends session-step records from concurrent threads
//! (the shape the serve layer writes on every mutating request),
//! then drops and reopens the log to measure replay. Emits
//! `BENCH_durability.json` so later PRs can track the write-path and
//! recovery trajectory:
//!
//! * `appends_per_s` and the append-latency tail (p50/p99) — the tax a
//!   mutating request pays before it is acknowledged;
//! * `fsyncs` vs `group_commits` — how well batch mode amortizes the
//!   disk flush across concurrent writers;
//! * `replay_records_per_s` — how fast boot-time recovery re-reads the
//!   tail after a SIGKILL.
//!
//! ```text
//! cargo run --release -p ziggy-bench --bin bench_durability \
//!     [-- --records 2000 --threads 4]
//! ```

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use serde_json::{Number, Value};
use ziggy_durable::{DurabilityMode, DurableLog, DurableOptions, Record};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn num_u(n: u64) -> Value {
    Value::Number(Number::U(n))
}

fn num_f(x: f64) -> Value {
    Value::Number(Number::F(x))
}

fn bench_mode(mode: DurabilityMode, records: usize, threads: usize) -> Value {
    let dir = std::env::temp_dir().join(format!(
        "ziggy-bench-durability-{}-{mode:?}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    // Snapshots off: replay then re-reads every record, so the replay
    // phase measures pure log-scan throughput over a known count.
    let options = DurableOptions {
        mode,
        snapshot_every: 0,
        ..DurableOptions::default()
    };

    // Append phase: concurrent writers, one session per thread. The
    // query payload is ~100 bytes, the size of a realistic predicate.
    let query = "Theft > 120 && State = 'Colorado' && Year >= 1994 && Population < 500000 \
                 && Assault <= 42";
    let appended = AtomicU64::new(0);
    let per_thread = records.div_ceil(threads);
    let (log, _) = DurableLog::open(&dir, options.clone()).expect("open log");
    let t_append = Instant::now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let log = &log;
            let appended = &appended;
            s.spawn(move || {
                log.append(&Record::SessionCreate {
                    id: t as u64 + 1,
                    table: "crimes".into(),
                })
                .expect("append create");
                appended.fetch_add(1, Ordering::Relaxed);
                for i in 0..per_thread {
                    let tag = (t * per_thread + i) as u64;
                    log.append(&Record::SessionStep {
                        id: t as u64 + 1,
                        seq: i as u64 + 1,
                        query: format!("{query} /* {tag} */"),
                    })
                    .expect("append step");
                    appended.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let append_s = t_append.elapsed().as_secs_f64();
    let appended = appended.load(Ordering::Relaxed);
    let m = log.metrics();
    let fsyncs = m.fsyncs.load(Ordering::Relaxed);
    let group_commits = m.group_commits.load(Ordering::Relaxed);
    let p50_us = m.append_latency.quantile_us(0.50).unwrap_or(0);
    let p99_us = m.append_latency.quantile_us(0.99).unwrap_or(0);
    let segments = log.segment_count();
    // Drop = final sync + flusher join: everything is on disk, exactly
    // like a clean shutdown. The SIGKILL case differs only by a torn
    // tail record, which replay truncates.
    drop(log);

    // Replay phase: a cold open over the same directory, the boot path.
    let t_replay = Instant::now();
    let (reopened, outcome) = DurableLog::open(&dir, options).expect("reopen log");
    let replay_s = t_replay.elapsed().as_secs_f64();
    assert_eq!(
        outcome.records, appended,
        "replay must see every acknowledged append"
    );
    let replay_records = outcome.records;
    drop(reopened);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "  {mode:?}: {:.0} appends/s (p50 {p50_us}us, p99 {p99_us}us), \
         {fsyncs} fsyncs, {group_commits} group commits, \
         replayed {replay_records} records in {:.1}ms",
        appended as f64 / append_s,
        replay_s * 1e3,
    );
    Value::Object(vec![
        ("records".into(), num_u(appended)),
        ("appends_per_s".into(), num_f(appended as f64 / append_s)),
        ("append_p50_us".into(), num_u(p50_us)),
        ("append_p99_us".into(), num_u(p99_us)),
        ("fsyncs".into(), num_u(fsyncs)),
        ("group_commits".into(), num_u(group_commits)),
        ("segments".into(), num_u(segments as u64)),
        ("replay_records".into(), num_u(replay_records)),
        (
            "replay_records_per_s".into(),
            num_f(replay_records as f64 / replay_s.max(1e-9)),
        ),
        ("replay_ms".into(), num_f(replay_s * 1e3)),
    ])
}

fn main() {
    let records = arg("--records", 2000).max(1);
    let threads = arg("--threads", 4).max(1);
    println!("bench_durability: {records} records x {threads} writer threads per mode");

    let modes = [
        ("fsync", DurabilityMode::Fsync),
        ("batch", DurabilityMode::Batch),
        ("async", DurabilityMode::Async),
    ];
    let results: Vec<(String, Value)> = modes
        .iter()
        .map(|(name, mode)| (name.to_string(), bench_mode(*mode, records, threads)))
        .collect();

    let doc = Value::Object(vec![
        ("benchmark".into(), Value::String("durability".into())),
        ("host".into(), ziggy_bench::host_json()),
        (
            "config".into(),
            Value::Object(vec![
                ("records".into(), num_u(records as u64)),
                ("threads".into(), num_u(threads as u64)),
            ]),
        ),
        ("modes".into(), Value::Object(results)),
    ]);
    let mut f =
        std::fs::File::create("BENCH_durability.json").expect("create BENCH_durability.json");
    f.write_all(serde_json::to_string(&doc).unwrap().as_bytes())
        .unwrap();
    f.write_all(b"\n").unwrap();
    println!("wrote BENCH_durability.json");
}
