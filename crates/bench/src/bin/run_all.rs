//! Runs every figure/table experiment in sequence (the full reproduction
//! suite). Pass `--quick` to skip the 519-column twin and the large
//! scaling sweep.
use ziggy_bench::experiments as e;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let rule = "#".repeat(72);
    let mut sections: Vec<(&str, String)> = vec![
        ("F1", e::fig1::run(7)),
        ("F2", e::fig2::run(7)),
        ("F3", e::fig3::run(7)),
        ("F4", e::fig4::run(7, !quick)),
        ("F5", e::fig5::run(7)),
        ("U1", e::usecases::box_office_usecase(7)),
        ("U2", e::usecases::crime_usecase(7)),
        ("T3", e::tightness::run(7)),
        ("T4", e::robustness::run(7, if quick { 5 } else { 20 })),
        ("T6", e::ablation::run(7)),
    ];
    if quick {
        sections.push(("T1", e::quality::run(&[0.8, 1.6], &[11], 6)));
        sections.push(("T2", e::scaling::run(&[16, 64], 1_000, &[1_000, 5_000], 32)));
    } else {
        sections.push(("U3", e::usecases::innovation_usecase(7)));
        sections.push((
            "T1",
            e::quality::run(&[0.4, 0.8, 1.2, 1.6, 2.0], &[11, 22, 33], 6),
        ));
        sections.push((
            "T2",
            e::scaling::run(
                &[16, 32, 64, 128, 256, 512],
                2_000,
                &[1_000, 5_000, 10_000, 20_000, 50_000],
                64,
            ),
        ));
    }
    for (id, body) in sections {
        println!("{rule}\n# Experiment {id}\n{rule}\n{body}");
    }
}
