//! Table T2: runtime scaling in columns and rows.
fn main() {
    let cols = [16, 32, 64, 128, 256, 512];
    let rows = [1_000, 5_000, 10_000, 20_000, 50_000];
    print!(
        "{}",
        ziggy_bench::experiments::scaling::run(&cols, 2_000, &rows, 64)
    );
}
