//! Regenerates paper Figure 2 (the problem setting / selection split).
fn main() {
    print!("{}", ziggy_bench::experiments::fig2::run(7));
}
