//! Use case U1: Box Office (paper section 4.2).
fn main() {
    print!(
        "{}",
        ziggy_bench::experiments::usecases::box_office_usecase(7)
    );
}
