//! Table T1: recovery quality vs baselines across effect strengths.
fn main() {
    let shifts = [0.4, 0.8, 1.2, 1.6, 2.0];
    let seeds = [11, 22, 33];
    print!(
        "{}",
        ziggy_bench::experiments::quality::run(&shifts, &seeds, 6)
    );
}
