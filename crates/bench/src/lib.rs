#![warn(missing_docs)]

//! Benchmark harness regenerating every figure and table of the Ziggy
//! paper (see DESIGN.md §4 for the experiment index).
//!
//! Each experiment is a library function returning a printable report, so
//! the `src/bin/*` wrappers stay thin and integration tests can execute
//! scaled-down variants. Criterion micro/meso benchmarks live under
//! `benches/`.

pub mod experiments;
pub mod harness;

pub use harness::{format_duration_us, host_cpus, host_json, host_parallelism, MarkdownTable};
