//! Experiments U1–U3 — the three §4.2 demo use cases, end to end.

use std::time::Instant;

use crate::harness::{format_duration_us, MarkdownTable};
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_synth::{box_office, evaluate_recovery, oecd_innovation, us_crime, SyntheticDataset};

fn characterize_and_report(d: &SyntheticDataset, max_views: usize) -> String {
    let config = ZiggyConfig {
        max_views,
        ..ZiggyConfig::default()
    };
    let z = Ziggy::new(&d.table, config);
    let t0 = Instant::now();
    let report = z
        .characterize(&d.predicate)
        .expect("characterization succeeds");
    let wall = t0.elapsed().as_micros() as u64;

    let mut out = String::new();
    out.push_str(&format!(
        "dataset: {} ({} rows x {} cols)\nquery: {}\nselection: {} tuples ({:.1}%)\n\
         wall time: {}\n\n",
        d.spec.name,
        d.table.n_rows(),
        d.table.n_cols(),
        report.query,
        report.n_inside,
        report.selectivity() * 100.0,
        format_duration_us(wall)
    ));
    let mut table = MarkdownTable::new(&["#", "view", "score", "robustness p", "explanation"]);
    for (i, v) in report.views.iter().enumerate() {
        table.row(&[
            (i + 1).to_string(),
            v.view.to_string(),
            format!("{:.3}", v.score),
            format!("{:.1e}", v.robustness_p),
            v.explanation.sentences.first().cloned().unwrap_or_default(),
        ]);
    }
    out.push_str(&table.render());
    let discovered: Vec<Vec<String>> = report.views.iter().map(|v| v.view.names.clone()).collect();
    let q = evaluate_recovery(&discovered, &d.planted, 0.5);
    out.push_str(&format!(
        "\nplanted-view recovery: {}/{} matched, column precision {:.2}, recall {:.2}\n",
        q.matched_views, q.total_planted, q.column_precision, q.column_recall
    ));
    out
}

/// U1 — Box Office (900×12): introduces the concepts.
pub fn box_office_usecase(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("Use case 1 — Box Office (paper §4.2)\n\n");
    out.push_str(&characterize_and_report(&box_office(seed), 4));
    out
}

/// U2 — US Crime (1994×128): "seemingly superfluous variables can have a
/// strong predictive power — such as the number of boarded windows".
pub fn crime_usecase(seed: u64) -> String {
    let d = us_crime(seed);
    let mut out = String::new();
    out.push_str("Use case 2 — US Crime (paper §4.2)\n\n");
    out.push_str(&characterize_and_report(&d, 6));

    // The surprise-predictor claim: pct_boarded_windows must rank among
    // the very top views.
    let z = Ziggy::new(
        &d.table,
        ZiggyConfig {
            max_views: 6,
            ..ZiggyConfig::default()
        },
    );
    let report = z
        .characterize(&d.predicate)
        .expect("characterization succeeds");
    let position = report
        .views
        .iter()
        .position(|v| v.view.names.iter().any(|n| n.contains("boarded_windows")));
    match position {
        Some(idx) => out.push_str(&format!(
            "\nsurprise predictor: pct_boarded_windows surfaces at rank {} — the\n\
             \"seemingly superfluous variable with strong predictive power\".\n",
            idx + 1
        )),
        None => out.push_str("\nsurprise predictor NOT recovered (unexpected).\n"),
    }
    out
}

/// U3 — Countries & Innovation (6823×519): scale demonstration.
pub fn innovation_usecase(seed: u64) -> String {
    let mut out = String::new();
    out.push_str("Use case 3 — Countries & Innovation (paper §4.2)\n\n");
    out.push_str(&characterize_and_report(&oecd_innovation(seed), 8));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_office_runs_and_recovers() {
        let r = box_office_usecase(3);
        assert!(r.contains("Box Office"));
        assert!(r.contains("planted-view recovery"));
        // At least 2 of 3 planted views recovered on the small twin.
        let line = r
            .lines()
            .find(|l| l.contains("planted-view recovery"))
            .unwrap();
        let matched: usize = line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .split('/')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(matched >= 2, "{line}");
    }

    #[test]
    fn crime_surprise_predictor() {
        let r = crime_usecase(7);
        assert!(
            r.contains("boarded_windows"),
            "surprise predictor missing:\n{r}"
        );
        assert!(r.contains("surprise predictor: pct_boarded_windows"));
    }
}
