//! Experiment T3 — ablation: the tightness threshold MIN_tight.
//!
//! Sweeps MIN_tight and reports the candidate-view population: how many
//! candidates survive, their mean size, the tightness of the top selected
//! view, and its score. Expected shape: raising the threshold dissolves
//! groups monotonically (more, smaller candidates) until everything is a
//! singleton.

use crate::harness::MarkdownTable;
use ziggy_core::candidates::generate_candidates;
use ziggy_core::config::ZiggyConfig;
use ziggy_core::graph::{usable_columns, DependencyGraph};
use ziggy_core::prepare::prepare;
use ziggy_core::search::search;
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::us_crime;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct TightnessPoint {
    /// The MIN_tight value.
    pub min_tight: f64,
    /// Candidates generated.
    pub n_candidates: usize,
    /// Mean candidate size.
    pub mean_size: f64,
    /// Largest candidate size.
    pub max_size: usize,
    /// Score of the top selected view.
    pub top_score: f64,
}

/// Sweeps MIN_tight on the crime twin.
pub fn sweep(thresholds: &[f64], seed: u64, max_view_size: usize) -> Vec<TightnessPoint> {
    let d = us_crime(seed);
    let cache = StatsCache::new(&d.table);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let usable = usable_columns(&d.table);
    let base = ZiggyConfig {
        max_view_size,
        ..ZiggyConfig::default()
    };
    let graph = DependencyGraph::build(&cache, usable.clone(), base.dependence, base.mi_bins)
        .expect("graph builds");
    let prepared = prepare(&cache, &mask, &usable, &base).expect("preparation succeeds");

    thresholds
        .iter()
        .map(|&min_tight| {
            let config = ZiggyConfig {
                min_tightness: min_tight,
                ..base.clone()
            };
            let candidates = generate_candidates(&graph, &config).expect("candidates");
            let n_candidates = candidates.len();
            let mean_size = candidates.iter().map(|c| c.len()).sum::<usize>() as f64
                / n_candidates.max(1) as f64;
            let max_size = candidates.iter().map(|c| c.len()).max().unwrap_or(0);
            let views = search(&candidates, &prepared, &config);
            let top_score = views.first().map(|v| v.score).unwrap_or(0.0);
            TightnessPoint {
                min_tight,
                n_candidates,
                mean_size,
                max_size,
                top_score,
            }
        })
        .collect()
}

/// Runs T3 and renders the sweep table.
pub fn run(seed: u64) -> String {
    let thresholds = [0.05, 0.15, 0.25, 0.4, 0.6, 0.8, 0.95];
    let points = sweep(&thresholds, seed, 4);
    let mut out = String::new();
    out.push_str("Table T3 — tightness-threshold ablation (crime twin, D = 4)\n\n");
    let mut t = MarkdownTable::new(&[
        "MIN_tight",
        "candidates",
        "mean size",
        "max size",
        "top view score",
    ]);
    for p in &points {
        t.row(&[
            format!("{:.2}", p.min_tight),
            p.n_candidates.to_string(),
            format!("{:.2}", p.mean_size),
            p.max_size.to_string(),
            format!("{:.3}", p.top_score),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nexpected shape: candidate count grows and candidate size shrinks\n\
         monotonically with MIN_tight; at the top of the range every view\n\
         is a singleton. The dendrogram (Ziggy::dependency_dendrogram)\n\
         is the paper's visual aid for picking the knee.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_population_monotone() {
        let points = sweep(&[0.1, 0.5, 0.95], 7, 4);
        // Candidates never decrease as the threshold rises.
        assert!(points[0].n_candidates <= points[1].n_candidates);
        assert!(points[1].n_candidates <= points[2].n_candidates);
        // Mean size never increases.
        assert!(points[0].mean_size >= points[1].mean_size - 1e-9);
        assert!(points[1].mean_size >= points[2].mean_size - 1e-9);
        // Extreme threshold dissolves everything into singletons.
        assert_eq!(points[2].max_size.max(1), 1);
    }

    #[test]
    fn report_renders() {
        let r = run(7);
        assert!(r.contains("MIN_tight"));
        assert!(r.contains("candidates"));
    }
}
