//! Experiment T4 — ablation: robustness aggregation under the null.
//!
//! "The aim is to control spurious findings, that is, differences caused
//! by chance." (§3.) The experiment generates a dataset with *no* planted
//! effects, characterizes many random selections, and counts how often
//! each aggregation scheme would certify a view at α = 0.05. Expected
//! shape: min-p fires most (anti-conservative across a view's multiple
//! components), Bonferroni-min the least, Fisher/Stouffer in between —
//! and all far below the planted-signal regime.

use crate::harness::MarkdownTable;
use ziggy_core::robust::view_robustness;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_stats::Aggregation;
use ziggy_store::Bitmask;
use ziggy_synth::spec::{DatasetSpec, ThemeSpec};
use ziggy_synth::{generate, SyntheticDataset};

fn null_dataset(seed: u64) -> SyntheticDataset {
    // Correlated structure but NO planted selection effects.
    let themes: Vec<ThemeSpec> = (0..6)
        .map(|g| ThemeSpec {
            name: format!("group_{g}"),
            columns: (0..3).map(|k| format!("g{g}_{k}")).collect(),
            intra_r: 0.65,
            mean_shift: 0.0,
            scale: 1.0,
        })
        .collect();
    generate(&DatasetSpec {
        name: "null".into(),
        n_rows: 1200,
        driver: "driver".into(),
        selection_frac: 0.15,
        themes,
        noise_columns: (0..6).map(|k| format!("noise_{k}")).collect(),
        categoricals: vec![],
        seed,
    })
}

/// Deterministic pseudo-random mask independent of every column.
fn random_mask(n_rows: usize, frac: f64, salt: u64) -> Bitmask {
    Bitmask::from_fn(n_rows, |i| {
        let mut h = (i as u64).wrapping_mul(0x9E3779B97F4A7C15) ^ salt;
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51AFD7ED558CCD);
        h ^= h >> 33;
        (h as f64 / u64::MAX as f64) < frac
    })
}

/// Counts, per aggregation scheme, how many of `trials` random-selection
/// runs produce at least one view whose aggregated p clears `alpha`.
pub fn false_positive_counts(seed: u64, trials: usize, alpha: f64) -> Vec<(Aggregation, usize)> {
    let d = null_dataset(seed);
    let schemes = [
        Aggregation::MinP,
        Aggregation::Fisher,
        Aggregation::Stouffer,
        Aggregation::BonferroniMin,
    ];
    let mut counts = vec![0usize; schemes.len()];
    let z = Ziggy::new(&d.table, ZiggyConfig::default());
    for trial in 0..trials {
        let mask = random_mask(d.table.n_rows(), 0.15, seed ^ (trial as u64 * 7919));
        let Ok(report) = z.characterize_mask(&mask, "random") else {
            continue;
        };
        for (si, scheme) in schemes.iter().enumerate() {
            let fired = report.views.iter().any(|v| {
                let refs: Vec<&ziggy_core::ZigComponent> = v.components.iter().collect();
                view_robustness(&refs, *scheme) < alpha
            });
            if fired {
                counts[si] += 1;
            }
        }
    }
    schemes.iter().copied().zip(counts).collect()
}

/// Runs T4.
pub fn run(seed: u64, trials: usize) -> String {
    let alpha = 0.05;
    let results = false_positive_counts(seed, trials, alpha);
    let mut out = String::new();
    out.push_str(&format!(
        "Table T4 — spurious-view control under the null ({trials} random selections, α = {alpha})\n\n"
    ));
    let mut t = MarkdownTable::new(&["aggregation", "runs with a 'significant' view", "rate"]);
    for (scheme, count) in &results {
        t.row(&[
            format!("{scheme:?}"),
            count.to_string(),
            format!("{:.2}", *count as f64 / trials as f64),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nexpected shape: BonferroniMin fires least often (paper's suggested\n\
         correction), MinP most (it ignores multiplicity across a view's\n\
         components). Random selections should rarely produce certified\n\
         views under the conservative schemes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bonferroni_no_looser_than_minp() {
        let results = false_positive_counts(99, 6, 0.05);
        let get = |target: Aggregation| {
            results
                .iter()
                .find(|(s, _)| *s == target)
                .map(|(_, c)| *c)
                .unwrap()
        };
        assert!(
            get(Aggregation::BonferroniMin) <= get(Aggregation::MinP),
            "{results:?}"
        );
    }

    #[test]
    fn random_mask_fraction() {
        let m = random_mask(10_000, 0.15, 3);
        let frac = m.count_ones() as f64 / 10_000.0;
        assert!((frac - 0.15).abs() < 0.02, "{frac}");
    }

    #[test]
    fn report_renders() {
        let r = run(5, 3);
        assert!(r.contains("aggregation"));
        assert!(r.contains("BonferroniMin"));
    }
}
