//! Experiment F5 — paper Figure 5: snapshot of Ziggy's interface.
//!
//! The Shiny web UI is substituted by a faithful terminal layout: the
//! input-query box, the ranked view list (left panel), the detail plot of
//! the selected view, and the explanation pane (right panel).

use ziggy_core::render::render_interface;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::eval::select;
use ziggy_synth::us_crime;

/// Runs F5 on the crime twin.
pub fn run(seed: u64) -> String {
    let d = us_crime(seed);
    let z = Ziggy::new(
        &d.table,
        ZiggyConfig {
            max_views: 5,
            ..ZiggyConfig::default()
        },
    );
    let report = z
        .characterize(&d.predicate)
        .expect("characterization succeeds");
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let mut out = String::new();
    out.push_str("Figure 5 — interface snapshot (terminal substitute for the Shiny UI)\n\n");
    out.push_str(&render_interface(&d.table, &mask, &report));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_has_all_panels() {
        let ui = run(7);
        for panel in ["Input query", "VIEWS", "DETAIL", "EXPLANATIONS"] {
            assert!(ui.contains(panel), "missing panel {panel}");
        }
        // Ranked views carry scores; explanations carry sentences.
        assert!(ui.contains("score="));
        assert!(ui.contains("- "));
    }
}
