//! Experiment F2 — paper Figure 2: the problem setting.
//!
//! Figure 2 illustrates the split of every column `C_k` into the
//! selection part `Cᴵ_k` and the complement `Cᴼ_k`. The experiment makes
//! the split concrete: per-column inside/outside counts, and a check that
//! the complement statistics derived by moment subtraction (Ziggy's
//! shared-computation trick) agree with a direct scan.

use crate::harness::MarkdownTable;
use ziggy_store::{eval::select, masked_uni, StatsCache};
use ziggy_synth::box_office;

/// Runs F2 on the Box Office twin.
pub fn run(seed: u64) -> String {
    let d = box_office(seed);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let cache = StatsCache::new(&d.table);

    let mut out = String::new();
    out.push_str("Figure 2 — the problem setting: selection vs outside split\n");
    out.push_str(&format!("query: {}\n\n", d.predicate));

    let mut table = MarkdownTable::new(&[
        "column",
        "type",
        "n inside",
        "n outside",
        "mean_in",
        "mean_out",
        "subtract err",
    ]);
    let mut max_err: f64 = 0.0;
    for col in 0..d.table.n_cols() {
        let meta = d.table.schema().column(col).expect("in range");
        if meta.ctype != ziggy_store::ColumnType::Numeric {
            table.row(&[
                meta.name.clone(),
                "categorical".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]);
            continue;
        }
        let inside = masked_uni(&d.table, col, &mask).expect("numeric column");
        let derived = cache.uni_complement(col, &inside).expect("complement");
        let direct = masked_uni(&d.table, col, &mask.complement()).expect("numeric column");
        let err = (derived.mean() - direct.mean()).abs()
            + (derived.variance().unwrap_or(0.0) - direct.variance().unwrap_or(0.0)).abs();
        max_err = max_err.max(err);
        table.row(&[
            meta.name.clone(),
            "numeric".into(),
            inside.count().to_string(),
            derived.count().to_string(),
            format!("{:.2}", inside.mean()),
            format!("{:.2}", derived.mean()),
            format!("{err:.2e}"),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(&format!(
        "\nmax |derived − direct| over all numeric columns: {max_err:.3e}\n\
         (complement statistics come from whole-table moments minus the\n\
          selection's moments — one masked scan per query, no second pass)\n"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_exact() {
        let report = run(3);
        assert!(report.contains("problem setting"));
        // Every numeric row shows a tiny subtraction error.
        let max_line = report
            .lines()
            .find(|l| l.starts_with("max |derived"))
            .expect("summary line present");
        let value: f64 = max_line
            .split(':')
            .nth(1)
            .unwrap()
            .trim()
            .parse()
            .expect("parsable error bound");
        assert!(value < 1e-6, "complement derivation drifted: {value}");
    }
}
