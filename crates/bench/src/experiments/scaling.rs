//! Experiment T2 — runtime scaling in columns and rows.
//!
//! Ziggy's preparation is quadratic in the number of columns (pairwise
//! components) and linear in the selection size; the clustering-based
//! view search avoids the exponential blow-up of exhaustive subspace
//! enumeration. The experiment measures wall time against column and row
//! counts and contrasts Ziggy with beam search and (where affordable)
//! exhaustive enumeration.

use std::time::Instant;

use crate::harness::{format_duration_us, MarkdownTable};
use ziggy_baselines::beam::beam_search;
use ziggy_baselines::exhaustive::{exhaustive_search, subset_count};
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::scaling_dataset;

/// One scaling measurement.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Rows in the table.
    pub rows: usize,
    /// Columns in the table.
    pub cols: usize,
    /// Ziggy end-to-end wall time (µs).
    pub ziggy_us: u64,
    /// Ziggy preparation share (0..1).
    pub prep_fraction: f64,
    /// Beam-search wall time (µs).
    pub beam_us: u64,
    /// Exhaustive wall time (µs), when within budget.
    pub exhaustive_us: Option<u64>,
}

/// Measures one configuration.
pub fn measure(rows: usize, cols: usize, seed: u64, exhaustive_budget: u128) -> ScalePoint {
    let d = scaling_dataset(rows, cols, seed);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");

    let z = Ziggy::new(&d.table, ZiggyConfig::default());
    let t0 = Instant::now();
    let report = z.characterize(&d.predicate).expect("ziggy run");
    let ziggy_us = t0.elapsed().as_micros() as u64;

    let cache = StatsCache::new(&d.table);
    let t1 = Instant::now();
    let _ = beam_search(&d.table, &cache, &mask, 2, 8, 5);
    let beam_us = t1.elapsed().as_micros() as u64;

    let exhaustive_us = if subset_count(cols, 2) <= exhaustive_budget {
        let cache2 = StatsCache::new(&d.table);
        let t2 = Instant::now();
        let _ = exhaustive_search(&d.table, &cache2, &mask, 2, 5, exhaustive_budget)
            .expect("within budget");
        Some(t2.elapsed().as_micros() as u64)
    } else {
        None
    };

    ScalePoint {
        rows,
        cols,
        ziggy_us,
        prep_fraction: report.timings.preparation_fraction(),
        beam_us,
        exhaustive_us,
    }
}

/// Runs T2 over the given column counts (fixed rows) and row counts
/// (fixed columns).
pub fn run(
    col_sweep: &[usize],
    rows_for_cols: usize,
    row_sweep: &[usize],
    cols_for_rows: usize,
) -> String {
    let mut out = String::new();
    out.push_str("Table T2 — runtime scaling\n\n");

    out.push_str(&format!("columns sweep (rows = {rows_for_cols}):\n"));
    let mut t = MarkdownTable::new(&["cols", "ziggy", "prep share", "beam", "exhaustive (D=2)"]);
    for &cols in col_sweep {
        let p = measure(rows_for_cols, cols, 42, 2_000_000);
        t.row(&[
            cols.to_string(),
            format_duration_us(p.ziggy_us),
            format!("{:.0}%", p.prep_fraction * 100.0),
            format_duration_us(p.beam_us),
            p.exhaustive_us
                .map(format_duration_us)
                .unwrap_or_else(|| "over budget".into()),
        ]);
    }
    out.push_str(&t.render());

    out.push_str(&format!("\nrows sweep (cols = {cols_for_rows}):\n"));
    let mut t = MarkdownTable::new(&["rows", "ziggy", "prep share", "beam"]);
    for &rows in row_sweep {
        let p = measure(rows, cols_for_rows, 43, 0);
        t.row(&[
            rows.to_string(),
            format_duration_us(p.ziggy_us),
            format!("{:.0}%", p.prep_fraction * 100.0),
            format_duration_us(p.beam_us),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nexpected shape: ziggy grows ~quadratically in columns (pairwise\n\
         statistics dominate) and mildly in rows (selection scan +\n\
         whole-table moments); exhaustive enumeration explodes\n\
         combinatorially and stops being measurable.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_consistent_point() {
        let p = measure(400, 16, 1, 1_000_000);
        assert_eq!(p.rows, 400);
        assert_eq!(p.cols, 16);
        assert!(p.ziggy_us > 0);
        assert!(p.exhaustive_us.is_some());
        assert!((0.0..=1.0).contains(&p.prep_fraction));
    }

    #[test]
    fn report_renders_small_sweep() {
        let r = run(&[8, 16], 300, &[200, 400], 8);
        assert!(r.contains("columns sweep"));
        assert!(r.contains("rows sweep"));
    }
}
