//! Experiment T6 — ablation: which Zig-Components earn their cost?
//!
//! The paper: "In principle, we could design Zig-Components for higher
//! dimensionalities. Nevertheless, those only add marginal accuracy gains
//! in practice, at the cost of significant processing times." (§2.2.)
//! The experiment quantifies that trade on the crime twin: preparation
//! time and recovery quality with (a) univariate components only,
//! (b) + pairwise correlation components (the paper's configuration),
//! (c) + the extended KS shape component.

use std::time::Instant;

use crate::harness::{format_duration_us, MarkdownTable};
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_synth::{evaluate_recovery, us_crime};

/// One ablation configuration's outcome.
#[derive(Debug, Clone)]
pub struct AblationPoint {
    /// Configuration label.
    pub label: &'static str,
    /// Preparation time (µs).
    pub preparation_us: u64,
    /// End-to-end wall time (µs).
    pub total_us: u64,
    /// Column F1 against planted ground truth.
    pub column_f1: f64,
    /// View recall against planted ground truth.
    pub view_recall: f64,
}

/// Runs the three component configurations on the crime twin.
pub fn sweep(seed: u64) -> Vec<AblationPoint> {
    let d = us_crime(seed);
    let configs: [(&'static str, ZiggyConfig); 3] = [
        (
            "univariate only",
            ZiggyConfig {
                pairwise_components: false,
                max_views: 6,
                ..Default::default()
            },
        ),
        (
            "paper (= + pairwise)",
            ZiggyConfig {
                max_views: 6,
                ..Default::default()
            },
        ),
        (
            "extended (= + KS shape)",
            ZiggyConfig {
                extended_components: true,
                max_views: 6,
                ..Default::default()
            },
        ),
    ];
    configs
        .into_iter()
        .map(|(label, config)| {
            let z = Ziggy::new(&d.table, config);
            let t0 = Instant::now();
            let report = z
                .characterize(&d.predicate)
                .expect("characterization succeeds");
            let total_us = t0.elapsed().as_micros() as u64;
            let discovered: Vec<Vec<String>> =
                report.views.iter().map(|v| v.view.names.clone()).collect();
            let q = evaluate_recovery(&discovered, &d.planted, 0.5);
            AblationPoint {
                label,
                preparation_us: report.timings.preparation_us,
                total_us,
                column_f1: q.column_f1,
                view_recall: q.view_recall,
            }
        })
        .collect()
}

/// Runs T6 and renders the table.
pub fn run(seed: u64) -> String {
    let points = sweep(seed);
    let mut out = String::new();
    out.push_str("Table T6 — component-family ablation (crime twin)\n\n");
    let mut t = MarkdownTable::new(&[
        "components",
        "preparation",
        "end-to-end",
        "column F1",
        "view recall",
    ]);
    for p in &points {
        t.row(&[
            p.label.to_string(),
            format_duration_us(p.preparation_us),
            format_duration_us(p.total_us),
            format!("{:.2}", p.column_f1),
            format!("{:.2}", p.view_recall),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nexpected shape (paper §2.2): pairwise components cost most of the\n\
         preparation time; extra components beyond them add little accuracy\n\
         on mean/variance-planted data while costing a per-column sort.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairwise_components_dominate_cost() {
        let points = sweep(7);
        assert_eq!(points.len(), 3);
        let uni = &points[0];
        let paper = &points[1];
        let extended = &points[2];
        assert!(
            paper.preparation_us > uni.preparation_us,
            "pairwise must cost more: {uni:?} vs {paper:?}"
        );
        assert!(
            extended.preparation_us >= paper.preparation_us,
            "KS must not be free: {paper:?} vs {extended:?}"
        );
        // Quality does not collapse in any configuration.
        for p in &points {
            assert!(p.view_recall >= 0.5, "{p:?}");
        }
    }

    #[test]
    fn report_renders() {
        let r = run(7);
        assert!(r.contains("component-family ablation"));
        assert!(r.contains("univariate only"));
        assert!(r.contains("KS shape"));
    }
}
