//! Experiment T1 — recovery quality vs the baselines.
//!
//! Sweeps the strength of the planted effect and measures how well each
//! method recovers the planted views: Ziggy, KL subspace search, centroid
//! search, beam search, and PCA (which is selection-blind and should do
//! poorly by construction). Expected shape: Ziggy ≥ the black-box
//! searches at every strength, PCA flat and weak, everyone degrading as
//! the signal fades — and only Ziggy produces explanations at all.

use crate::harness::MarkdownTable;
use ziggy_baselines::{beam::beam_search, centroid::centroid_search, kl::kl_search, pca::pca};
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::spec::{DatasetSpec, ThemeSpec};
use ziggy_synth::{evaluate_recovery, generate, SyntheticDataset};

fn sweep_spec(shift: f64, seed: u64) -> DatasetSpec {
    let theme = |name: &str, cols: [&str; 2], s: f64, scale: f64| ThemeSpec {
        name: name.into(),
        columns: cols.iter().map(|c| c.to_string()).collect(),
        intra_r: 0.75,
        mean_shift: s,
        scale,
    };
    // Pure location shifts (scale 1.0) so the sweep parameter is the
    // only signal and recovery degrades as it fades.
    let mut themes = vec![
        theme("plant_up", ["up_a", "up_b"], shift, 1.0),
        theme("plant_down", ["down_a", "down_b"], -shift, 1.0),
        theme("plant_weak", ["weak_a", "weak_b"], shift * 0.75, 1.0),
    ];
    for g in 0..7 {
        themes.push(ThemeSpec {
            name: format!("filler_{g}"),
            columns: (0..4).map(|k| format!("f{g}_{k}")).collect(),
            intra_r: 0.6,
            mean_shift: 0.0,
            scale: 1.0,
        });
    }
    DatasetSpec {
        name: format!("quality_shift_{shift}"),
        n_rows: 1500,
        driver: "driver".into(),
        selection_frac: 0.12,
        themes,
        noise_columns: (0..5).map(|k| format!("noise_{k}")).collect(),
        categoricals: vec![],
        seed,
    }
}

fn names_of(
    table: &ziggy_store::Table,
    views: &[ziggy_baselines::BaselineView],
) -> Vec<Vec<String>> {
    views
        .iter()
        .map(|v| {
            v.columns
                .iter()
                .map(|&c| table.name(c).to_string())
                .collect()
        })
        .collect()
}

/// Per-method recovery scores `(name, column F1, view recall)` on one
/// dataset instance.
pub fn method_scores(d: &SyntheticDataset, max_views: usize) -> Vec<(&'static str, f64, f64)> {
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let cache = StatsCache::new(&d.table);
    let score = |views: Vec<Vec<String>>| {
        let q = evaluate_recovery(&views, &d.planted, 0.5);
        (q.column_f1, q.view_recall)
    };

    let mut out = Vec::new();

    let z = Ziggy::new(
        &d.table,
        ZiggyConfig {
            max_views,
            ..ZiggyConfig::default()
        },
    );
    let report = z.characterize(&d.predicate).expect("ziggy run");
    let (f1, vr) = score(report.views.iter().map(|v| v.view.names.clone()).collect());
    out.push(("ziggy", f1, vr));

    let (f1, vr) = score(names_of(
        &d.table,
        &kl_search(&d.table, &cache, &mask, max_views, true),
    ));
    out.push(("kl", f1, vr));
    let (f1, vr) = score(names_of(
        &d.table,
        &centroid_search(&d.table, &cache, &mask, max_views, true),
    ));
    out.push(("centroid", f1, vr));
    let (f1, vr) = score(names_of(
        &d.table,
        &beam_search(&d.table, &cache, &mask, 2, 8, max_views),
    ));
    out.push(("beam", f1, vr));

    // PCA: top-loading pairs of the first components (selection-blind).
    let p = pca(&d.table);
    let pca_views: Vec<Vec<String>> = (0..max_views.min(p.eigenvalues.len()))
        .map(|k| {
            p.top_loading_columns(k, 2)
                .into_iter()
                .map(|c| d.table.name(c).to_string())
                .collect()
        })
        .collect();
    let (f1, vr) = score(pca_views);
    out.push(("pca", f1, vr));
    out
}

/// Runs T1: shift strengths × seeds, reporting mean column-F1 per method.
pub fn run(shifts: &[f64], seeds: &[u64], max_views: usize) -> String {
    let mut out = String::new();
    out.push_str("Table T1 — planted-view recovery (column F1) vs effect strength\n\n");
    let methods = ["ziggy", "kl", "centroid", "beam", "pca"];
    let mut table =
        MarkdownTable::new(&["shift (sd units)", "ziggy", "kl", "centroid", "beam", "pca"]);
    for &shift in shifts {
        let mut f1s = vec![0.0; methods.len()];
        let mut vrs = vec![0.0; methods.len()];
        for &seed in seeds {
            let d = generate(&sweep_spec(shift, seed));
            for (i, (name, f1, vr)) in method_scores(&d, max_views).into_iter().enumerate() {
                debug_assert_eq!(name, methods[i]);
                f1s[i] += f1;
                vrs[i] += vr;
            }
        }
        let k = seeds.len() as f64;
        let mut row = vec![format!("{shift:.2}")];
        row.extend(
            f1s.iter()
                .zip(&vrs)
                .map(|(f1, vr)| format!("F1 {:.2} / VR {:.2}", f1 / k, vr / k)),
        );
        table.row(&row);
    }
    out.push_str(&table.render());
    out.push_str(
        "
(F1 = column F1; VR = view recall at Jaccard >= 0.5)
",
    );
    out.push_str(
        "\nnotes: PCA is selection-blind (flat, weak); KL/centroid/beam find\n\
         shifted columns but have no tightness constraint and no\n\
         explanations; Ziggy pairs correlated shifted columns and explains\n\
         each view.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ziggy_beats_pca_on_strong_signal() {
        let d = generate(&sweep_spec(1.8, 11));
        let scores = method_scores(&d, 5);
        let f1 = |name: &str| scores.iter().find(|(n, _, _)| *n == name).unwrap().1;
        let vr = |name: &str| scores.iter().find(|(n, _, _)| *n == name).unwrap().2;
        assert!(f1("ziggy") > f1("pca"), "{scores:?}");
        assert!(f1("ziggy") >= 0.5, "{scores:?}");
        // View-level recall is where the tightness constraint pays off.
        assert!(vr("ziggy") >= vr("kl"), "{scores:?}");
    }

    #[test]
    fn report_renders() {
        let r = run(&[1.5], &[1], 5);
        assert!(r.contains("column F1"));
        assert!(r.contains("ziggy"));
    }
}
