//! Experiment F1 — paper Figure 1: four characteristic views on the US
//! Crime dataset.
//!
//! The paper's figure shows four 2-column scatter plots where the
//! high-crime selection is visibly displaced: population/density (high),
//! education/salary (low), rent/ownership (low), youth/mono-parental
//! (high). The crime twin plants exactly these themes; the experiment
//! runs Ziggy and renders the recovered views.

use ziggy_core::render::ascii_scatter;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::eval::select;
use ziggy_synth::us_crime;

/// Runs F1; `seed` controls the twin instance.
pub fn run(seed: u64) -> String {
    let d = us_crime(seed);
    let config = ZiggyConfig {
        max_views: 4,
        max_view_size: 2,
        ..ZiggyConfig::default()
    };
    let z = Ziggy::new(&d.table, config);
    let report = z
        .characterize(&d.predicate)
        .expect("crime twin characterization");
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");

    let mut out = String::new();
    out.push_str("Figure 1 — four characteristic views of the high-crime selection\n");
    out.push_str(&format!(
        "query: {}  ({} cities selected of {})\n\n",
        report.query,
        report.n_inside,
        report.n_inside + report.n_outside
    ));
    for (i, v) in report.views.iter().enumerate() {
        out.push_str(&format!(
            "View {} — {}  (score {:.3}, robustness p {:.2e})\n",
            i + 1,
            v.view,
            v.score,
            v.robustness_p
        ));
        if v.view.columns.len() >= 2 {
            out.push_str(&ascii_scatter(
                &d.table,
                &mask,
                v.view.columns[0],
                v.view.columns[1],
                48,
                12,
            ));
        }
        for s in &v.explanation.sentences {
            out.push_str(&format!("  > {s}\n"));
        }
        out.push('\n');
    }
    let discovered: Vec<Vec<String>> = report.views.iter().map(|v| v.view.names.clone()).collect();
    let q = ziggy_synth::evaluate_recovery(&discovered, &d.planted, 0.5);
    out.push_str(&format!(
        "ground truth: {}/{} planted views matched (view recall {:.2})\n",
        q.matched_views, q.total_planted, q.view_recall
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_reproduces_four_views() {
        let report = run(7);
        assert!(report.contains("View 1"));
        assert!(report.contains("View 4"), "expected 4 views:\n{report}");
        // At least three of the four planted Figure-1 themes surface.
        let hits = ["population", "college", "rent", "under_25", "boarded"]
            .iter()
            .filter(|k| report.contains(**k))
            .count();
        assert!(hits >= 3, "too few Figure-1 themes recovered:\n{report}");
        assert!(report.contains("view recall"));
    }
}
