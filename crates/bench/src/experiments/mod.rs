//! One module per paper exhibit (DESIGN.md §4 maps exhibit → module).

pub mod ablation;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod quality;
pub mod robustness;
pub mod scaling;
pub mod tightness;
pub mod usecases;
