//! Experiment F4 — paper Figure 4: the pipeline and its cost profile.
//!
//! The paper states the preparation stage "is often the most time
//! consuming step". The experiment times the three stages on all three
//! dataset twins and reports the breakdown, plus the effect of the
//! whole-table moment cache on a *second* query (the shared-computation
//! optimization).

use std::time::Instant;

use crate::harness::{format_duration_us, MarkdownTable};
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_synth::{box_office, oecd_innovation, us_crime, SyntheticDataset};

fn one_dataset(d: &SyntheticDataset, table: &mut MarkdownTable) -> (u64, u64) {
    let z = Ziggy::new(&d.table, ZiggyConfig::default());
    let t0 = Instant::now();
    let first = z
        .characterize(&d.predicate)
        .expect("characterization succeeds");
    let first_total = t0.elapsed().as_micros() as u64;
    // Second, different query reuses the whole-table cache and graph.
    let second_query = format!("{} <= {}", d.spec.driver, d.threshold);
    let t1 = Instant::now();
    let _second = z
        .characterize(&second_query)
        .expect("second query succeeds");
    let second_total = t1.elapsed().as_micros() as u64;

    table.row(&[
        d.spec.name.clone(),
        format!("{}x{}", d.table.n_rows(), d.table.n_cols()),
        format_duration_us(first.timings.preparation_us),
        format_duration_us(first.timings.view_search_us),
        format_duration_us(first.timings.post_processing_us),
        format!("{:.0}%", first.timings.preparation_fraction() * 100.0),
        format_duration_us(second_total),
    ]);
    (first_total, second_total)
}

/// Runs F4. `include_oecd` gates the expensive 519-column twin (on for
/// the binary, off for quick test runs).
pub fn run(seed: u64, include_oecd: bool) -> String {
    let mut out = String::new();
    out.push_str("Figure 4 — pipeline stage breakdown (preparation / view search / post)\n\n");
    let mut table = MarkdownTable::new(&[
        "dataset",
        "shape",
        "preparation",
        "view search",
        "post-proc",
        "prep share",
        "2nd query (cached)",
    ]);
    let mut pairs = Vec::new();
    pairs.push(one_dataset(&box_office(seed), &mut table));
    pairs.push(one_dataset(&us_crime(seed), &mut table));
    if include_oecd {
        pairs.push(one_dataset(&oecd_innovation(seed), &mut table));
    }
    out.push_str(&table.render());
    let faster = pairs.iter().filter(|(a, b)| b < a).count();
    out.push_str(&format!(
        "\nsecond-query speedup via the whole-table moment cache: {}/{} datasets faster\n\
         paper claim: preparation is \"often the most time consuming step\".\n",
        faster,
        pairs.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_has_all_stages() {
        let report = run(5, false);
        assert!(report.contains("preparation"));
        assert!(report.contains("box_office"));
        assert!(report.contains("us_crime"));
        assert!(report.contains("prep share"));
    }
}
