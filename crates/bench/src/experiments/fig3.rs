//! Experiment F3 — paper Figure 3: the Zig-Components on one view.
//!
//! Figure 3 decomposes the dissimilarity of the (population, density)
//! view into three verifiable indicators: difference between the means,
//! difference between the standard deviations, difference between the
//! correlation coefficients. The experiment computes exactly these on the
//! crime twin and reports value, 95% CI and p-value for each.

use crate::harness::MarkdownTable;
use ziggy_core::component::ComponentKind;
use ziggy_core::config::ZiggyConfig;
use ziggy_core::graph::usable_columns;
use ziggy_core::prepare::prepare;
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::us_crime;

/// Runs F3 on the crime twin's planted (population, density) view.
pub fn run(seed: u64) -> String {
    let d = us_crime(seed);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let cache = StatsCache::new(&d.table);
    let prepared = prepare(
        &cache,
        &mask,
        &usable_columns(&d.table),
        &ZiggyConfig::default(),
    )
    .expect("preparation succeeds");

    let pop = d.table.index_of("population_size").expect("column exists");
    let den = d
        .table
        .index_of("population_density")
        .expect("column exists");

    let mut out = String::new();
    out.push_str("Figure 3 — Zig-Components of the (population_size, population_density) view\n");
    out.push_str(&format!("query: {}\n\n", d.predicate));

    let mut table =
        MarkdownTable::new(&["Zig-Component", "column(s)", "value", "95% CI", "p-value"]);
    let mut push = |label: &str, cols: String, c: Option<&ziggy_core::ZigComponent>| match c {
        Some(c) => {
            let (lo, hi) = c.effect.ci95();
            table.row(&[
                label.to_string(),
                cols,
                format!("{:+.3}", c.effect.value),
                format!("[{lo:+.3}, {hi:+.3}]"),
                format!("{:.2e}", c.effect.p_value),
            ]);
        }
        None => {
            table.row(&[
                label.to_string(),
                cols,
                "n/a".into(),
                "-".into(),
                "-".into(),
            ]);
        }
    };
    push(
        "difference between the means (Hedges' g)",
        "population_size".into(),
        prepared.uni_component(ComponentKind::MeanShift, pop),
    );
    push(
        "difference between the means (Hedges' g)",
        "population_density".into(),
        prepared.uni_component(ComponentKind::MeanShift, den),
    );
    push(
        "difference between the std. deviations (log ratio)",
        "population_size".into(),
        prepared.uni_component(ComponentKind::DispersionShift, pop),
    );
    push(
        "difference between the std. deviations (log ratio)",
        "population_density".into(),
        prepared.uni_component(ComponentKind::DispersionShift, den),
    );
    push(
        "difference between the correlation coefficients (Fisher z)",
        "population_size × population_density".into(),
        prepared.pair_component(pop, den),
    );
    out.push_str(&table.render());
    out.push_str(
        "\nreading: the selection has particularly high values (positive mean\n\
         shifts), a lower variance (negative log SD ratios), and a changed\n\
         correlation — each indicator is verifiable on the scatter plot.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn components_have_paper_signs() {
        let report = run(7);
        // Two mean-shift rows with positive values (planted +1.8 SD).
        let mean_rows: Vec<&str> = report
            .lines()
            .filter(|l| l.contains("difference between the means"))
            .collect();
        assert_eq!(mean_rows.len(), 2);
        for row in mean_rows {
            assert!(row.contains("| +"), "mean shift should be positive: {row}");
        }
        // Dispersion rows negative (planted scale 0.6).
        let sd_rows: Vec<&str> = report
            .lines()
            .filter(|l| l.contains("std. deviations"))
            .collect();
        assert_eq!(sd_rows.len(), 2);
        for row in sd_rows {
            assert!(
                row.contains("| -"),
                "dispersion shift should be negative: {row}"
            );
        }
        assert!(report.contains("correlation coefficients"));
    }
}
