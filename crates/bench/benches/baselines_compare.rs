//! Criterion bench for experiment T1's runtime side: Ziggy vs the
//! baseline subspace searches on a 64-column, 5000-row dataset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ziggy_baselines::beam::beam_search;
use ziggy_baselines::centroid::centroid_search;
use ziggy_baselines::kl::kl_search;
use ziggy_baselines::pca::pca;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::scaling_dataset;

fn methods(c: &mut Criterion) {
    let d = scaling_dataset(5_000, 64, 21);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");

    let mut group = c.benchmark_group("baselines_compare");
    group.sample_size(10);
    group.bench_function("ziggy_cold", |b| {
        let table = Arc::new(d.table.clone());
        b.iter(|| {
            let z = Ziggy::shared(Arc::clone(&table), ZiggyConfig::default());
            black_box(z.characterize(&d.predicate).unwrap())
        })
    });
    group.bench_function("ziggy_warm", |b| {
        let z = Ziggy::new(&d.table, ZiggyConfig::default());
        let _ = z.characterize(&d.predicate).unwrap();
        b.iter(|| black_box(z.characterize(&d.predicate).unwrap()))
    });
    group.bench_function("kl_pairwise", |b| {
        let cache = StatsCache::new(&d.table);
        b.iter(|| black_box(kl_search(&d.table, &cache, &mask, 5, true)))
    });
    group.bench_function("centroid_pairwise", |b| {
        let cache = StatsCache::new(&d.table);
        b.iter(|| black_box(centroid_search(&d.table, &cache, &mask, 5, true)))
    });
    group.bench_function("beam_w8", |b| {
        let cache = StatsCache::new(&d.table);
        b.iter(|| black_box(beam_search(&d.table, &cache, &mask, 2, 8, 5)))
    });
    group.bench_function("pca_full", |b| b.iter(|| black_box(pca(&d.table))));
    group.finish();
}

criterion_group!(benches, methods);
criterion_main!(benches);
