//! Criterion bench for experiment F4: the three pipeline stages, isolated
//! on the US Crime twin (1994×128).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ziggy_core::candidates::generate_candidates;
use ziggy_core::config::ZiggyConfig;
use ziggy_core::graph::{usable_columns, DependencyGraph};
use ziggy_core::prepare::prepare;
use ziggy_core::search::search;
use ziggy_core::{Ziggy, ZiggyConfig as Config};
use ziggy_store::{eval::select, StatsCache};
use ziggy_synth::us_crime;

fn pipeline_stages(c: &mut Criterion) {
    let d = us_crime(7);
    let config = ZiggyConfig::default();
    let cache = StatsCache::new(&d.table);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let usable = usable_columns(&d.table);
    // Warm the whole-table cache so per-iteration numbers isolate the
    // query-dependent work, matching the steady exploration state.
    let graph = DependencyGraph::build(&cache, usable.clone(), config.dependence, config.mi_bins)
        .expect("graph builds");
    let prepared = prepare(&cache, &mask, &usable, &config).expect("preparation");

    let mut group = c.benchmark_group("pipeline_stages");
    group.sample_size(20);
    group.bench_function("stage1_preparation", |b| {
        b.iter(|| prepare(black_box(&cache), black_box(&mask), &usable, &config).unwrap())
    });
    group.bench_function("stage2_view_search", |b| {
        b.iter(|| {
            let candidates = generate_candidates(black_box(&graph), &config).unwrap();
            search(&candidates, black_box(&prepared), &config)
        })
    });
    group.bench_function("stage3_post_processing", |b| {
        let candidates = generate_candidates(&graph, &config).unwrap();
        let selected = search(&candidates, &prepared, &config);
        b.iter(|| {
            for sv in &selected {
                let refs = prepared.components_for_view(&sv.columns);
                let p = ziggy_core::robust::view_robustness(&refs, config.aggregation);
                let e = ziggy_core::explain::generate(
                    &d.table,
                    &mask,
                    &sv.columns,
                    &refs,
                    config.alpha,
                );
                black_box((p, e));
            }
        })
    });
    group.bench_function("end_to_end_cold_cache", |b| {
        // Share the table so "cold" times the engine, not a
        // per-iteration deep copy of the 1994x128 twin.
        let table = Arc::new(d.table.clone());
        b.iter(|| {
            let z = Ziggy::shared(Arc::clone(&table), Config::default());
            black_box(z.characterize(&d.predicate).unwrap())
        })
    });
    group.bench_function("end_to_end_warm_cache", |b| {
        let z = Ziggy::new(&d.table, Config::default());
        let _ = z.characterize(&d.predicate).unwrap();
        b.iter(|| black_box(z.characterize(&d.predicate).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, pipeline_stages);
criterion_main!(benches);
