//! Criterion bench for experiment T5: the shared-computation
//! optimization. Complement statistics by moment-cache subtraction vs a
//! direct second scan over the complement rows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ziggy_store::{eval::select, masked_pair, masked_uni, StatsCache};
use ziggy_synth::scaling_dataset;

fn complement_uni(c: &mut Criterion) {
    let mut group = c.benchmark_group("complement_uni");
    for rows in [5_000usize, 50_000] {
        let d = scaling_dataset(rows, 16, 7);
        let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
        let complement = mask.complement();
        let cache = StatsCache::new(&d.table);
        let cols: Vec<usize> = d.table.numeric_indices();
        // Warm the whole-table cache (query-independent work).
        for &col in &cols {
            cache.uni(col).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("subtracted", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let inside = masked_uni(&d.table, col, &mask).unwrap();
                    black_box(cache.uni_complement(col, &inside).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("two_scans", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let inside = masked_uni(&d.table, col, &mask).unwrap();
                    let outside = masked_uni(&d.table, col, &complement).unwrap();
                    black_box((inside, outside));
                }
            })
        });
    }
    group.finish();
}

fn complement_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("complement_pair");
    group.sample_size(20);
    let d = scaling_dataset(20_000, 16, 9);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let complement = mask.complement();
    let cache = StatsCache::new(&d.table);
    let cols = d.table.numeric_indices();
    let pairs: Vec<(usize, usize)> = cols
        .iter()
        .enumerate()
        .flat_map(|(i, &a)| cols[i + 1..].iter().map(move |&b| (a, b)))
        .collect();
    for &(a, b) in &pairs {
        cache.pair(a, b).unwrap();
    }
    group.bench_function("subtracted", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                let inside = masked_pair(&d.table, x, y, &mask).unwrap();
                black_box(cache.pair_complement(x, y, &inside).unwrap());
            }
        })
    });
    group.bench_function("two_scans", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                let inside = masked_pair(&d.table, x, y, &mask).unwrap();
                let outside = masked_pair(&d.table, x, y, &complement).unwrap();
                black_box((inside, outside));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, complement_uni, complement_pair);
criterion_main!(benches);
