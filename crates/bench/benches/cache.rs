//! Criterion bench for experiment T5: the shared-computation
//! optimization. Complement statistics by moment-cache subtraction vs a
//! direct second scan over the complement rows, plus the word-wise
//! masked kernels vs the naive per-row loops they replaced.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use ziggy_stats::{PairMoments, UniMoments};
use ziggy_store::{eval::select, masked_pair, masked_uni, StatsCache};
use ziggy_synth::scaling_dataset;

fn complement_uni(c: &mut Criterion) {
    let mut group = c.benchmark_group("complement_uni");
    for rows in [5_000usize, 50_000] {
        let d = scaling_dataset(rows, 16, 7);
        let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
        let complement = mask.complement();
        let cache = StatsCache::new(&d.table);
        let cols: Vec<usize> = d.table.numeric_indices();
        // Warm the whole-table cache (query-independent work).
        for &col in &cols {
            cache.uni(col).unwrap();
        }
        group.bench_with_input(BenchmarkId::new("subtracted", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let inside = masked_uni(&d.table, col, &mask).unwrap();
                    black_box(cache.uni_complement(col, &inside).unwrap());
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("two_scans", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let inside = masked_uni(&d.table, col, &mask).unwrap();
                    let outside = masked_uni(&d.table, col, &complement).unwrap();
                    black_box((inside, outside));
                }
            })
        });
    }
    group.finish();
}

fn complement_pair(c: &mut Criterion) {
    let mut group = c.benchmark_group("complement_pair");
    group.sample_size(20);
    let d = scaling_dataset(20_000, 16, 9);
    let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
    let complement = mask.complement();
    let cache = StatsCache::new(&d.table);
    let cols = d.table.numeric_indices();
    let pairs: Vec<(usize, usize)> = cols
        .iter()
        .enumerate()
        .flat_map(|(i, &a)| cols[i + 1..].iter().map(move |&b| (a, b)))
        .collect();
    for &(a, b) in &pairs {
        cache.pair(a, b).unwrap();
    }
    group.bench_function("subtracted", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                let inside = masked_pair(&d.table, x, y, &mask).unwrap();
                black_box(cache.pair_complement(x, y, &inside).unwrap());
            }
        })
    });
    group.bench_function("two_scans", |b| {
        b.iter(|| {
            for &(x, y) in &pairs {
                let inside = masked_pair(&d.table, x, y, &mask).unwrap();
                let outside = masked_pair(&d.table, x, y, &complement).unwrap();
                black_box((inside, outside));
            }
        })
    });
    group.finish();
}

/// Word-wise masked kernels vs the naive per-row loops: the per-query
/// selection-side scan that remains after both cache levels.
fn masked_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("masked_kernels");
    for rows in [5_000usize, 50_000] {
        let d = scaling_dataset(rows, 16, 11);
        let mask = select(&d.table, &d.predicate).expect("predicate evaluates");
        let cols: Vec<usize> = d.table.numeric_indices();
        group.bench_with_input(BenchmarkId::new("uni_wordwise", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let data = d.table.numeric(col).unwrap();
                    black_box(UniMoments::from_mask_words(data, mask.words()));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("uni_naive", rows), &rows, |b, _| {
            b.iter(|| {
                for &col in &cols {
                    let data = d.table.numeric(col).unwrap();
                    black_box(UniMoments::from_masked(data, |i| mask.get(i)));
                }
            })
        });
        let (xa, xb) = (cols[0], cols[1]);
        let xs = d.table.numeric(xa).unwrap();
        let ys = d.table.numeric(xb).unwrap();
        group.bench_with_input(BenchmarkId::new("pair_wordwise", rows), &rows, |b, _| {
            b.iter(|| black_box(PairMoments::from_mask_words(xs, ys, mask.words()).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("pair_naive", rows), &rows, |b, _| {
            b.iter(|| black_box(PairMoments::from_masked(xs, ys, |i| mask.get(i)).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, complement_uni, complement_pair, masked_kernels);
criterion_main!(benches);
