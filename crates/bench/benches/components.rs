//! Microbenchmarks for the Zig-Component effect sizes and the statistics
//! kernels behind them (the hot path of the preparation stage — the code
//! the original authors dropped to C for).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ziggy_stats::{
    cohens_w, correlation_difference, hedges_g, log_std_ratio, mutual_information, pearson,
    spearman, PairMoments, UniMoments,
};

fn fixtures(n: usize) -> (Vec<f64>, Vec<f64>) {
    let xs: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.37).sin() * 12.0 + 50.0)
        .collect();
    let ys: Vec<f64> = (0..n)
        .map(|i| (i as f64 * 0.37).sin() * 6.0 + ((i * 7919) % 101) as f64 * 0.1)
        .collect();
    (xs, ys)
}

fn effect_sizes(c: &mut Criterion) {
    let (xs, ys) = fixtures(10_000);
    let a = UniMoments::from_slice(&xs[..5_000]);
    let b = UniMoments::from_slice(&xs[5_000..]);
    let pa = PairMoments::from_slices(&xs[..5_000], &ys[..5_000]).unwrap();
    let pb = PairMoments::from_slices(&xs[5_000..], &ys[5_000..]).unwrap();
    let ra = pa.correlation().unwrap();
    let rb = pb.correlation().unwrap();

    let mut group = c.benchmark_group("effect_sizes");
    group.bench_function("hedges_g", |bch| {
        bch.iter(|| hedges_g(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("log_std_ratio", |bch| {
        bch.iter(|| log_std_ratio(black_box(&a), black_box(&b)).unwrap())
    });
    group.bench_function("correlation_difference", |bch| {
        bch.iter(|| correlation_difference(black_box(ra), 5_000, black_box(rb), 5_000).unwrap())
    });
    group.bench_function("cohens_w", |bch| {
        let inside = [120u64, 380, 250, 250];
        let outside = [900u64, 2_000, 1_500, 1_600];
        bch.iter(|| cohens_w(black_box(&inside), black_box(&outside)).unwrap())
    });
    group.finish();
}

fn moment_accumulation(c: &mut Criterion) {
    let (xs, ys) = fixtures(100_000);
    let mut group = c.benchmark_group("moment_accumulation");
    group.bench_function("uni_from_slice_100k", |b| {
        b.iter(|| UniMoments::from_slice(black_box(&xs)))
    });
    group.bench_function("pair_from_slices_100k", |b| {
        b.iter(|| PairMoments::from_slices(black_box(&xs), black_box(&ys)).unwrap())
    });
    group.finish();
}

fn dependence_measures(c: &mut Criterion) {
    let (xs, ys) = fixtures(10_000);
    let mut group = c.benchmark_group("dependence_measures");
    group.bench_function("pearson_10k", |b| {
        b.iter(|| pearson(black_box(&xs), black_box(&ys)).unwrap())
    });
    group.bench_function("spearman_10k", |b| {
        b.iter(|| spearman(black_box(&xs), black_box(&ys)).unwrap())
    });
    group.bench_function("mutual_information_10k", |b| {
        b.iter(|| mutual_information(black_box(&xs), black_box(&ys), 8).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    effect_sizes,
    moment_accumulation,
    dependence_measures
);
criterion_main!(benches);
