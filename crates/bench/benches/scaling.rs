//! Criterion bench for experiment T2: end-to-end cost vs column count
//! and row count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_synth::scaling_dataset;

fn scaling_columns(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_columns");
    group.sample_size(10);
    for cols in [16usize, 32, 64, 128] {
        let d = scaling_dataset(2_000, cols, 42);
        group.bench_with_input(BenchmarkId::from_parameter(cols), &d, |b, d| {
            // Share the table so the timing measures engine work, not a
            // per-iteration deep copy of the dataset.
            let table = Arc::new(d.table.clone());
            b.iter(|| {
                let z = Ziggy::shared(Arc::clone(&table), ZiggyConfig::default());
                black_box(z.characterize(&d.predicate).unwrap())
            })
        });
    }
    group.finish();
}

fn scaling_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling_rows");
    group.sample_size(10);
    for rows in [1_000usize, 5_000, 20_000] {
        let d = scaling_dataset(rows, 32, 43);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &d, |b, d| {
            let table = Arc::new(d.table.clone());
            b.iter(|| {
                let z = Ziggy::shared(Arc::clone(&table), ZiggyConfig::default());
                black_box(z.characterize(&d.predicate).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, scaling_columns, scaling_rows);
criterion_main!(benches);
