//! ASCII rendering: scatter views (Figure 1) and the interface snapshot
//! (Figure 5). The demo's Shiny/HTML front-end is replaced by terminal
//! output; the artifact structure — query box, ranked view list, detail
//! plot, explanation pane — is preserved.

use ziggy_store::{Bitmask, Table};

use crate::report::CharacterizationReport;

/// Characters used by the scatter renderer.
const CH_OUT: char = '·';
const CH_IN: char = '+';
const CH_BOTH: char = '#';

/// Renders a 2-column scatter plot of the table, marking selection rows
/// `+`, complement rows `·`, and collisions `#`. Returns a multi-line
/// string with axis labels (y column name on top, x along the bottom).
pub fn ascii_scatter(
    table: &Table,
    mask: &Bitmask,
    x_col: usize,
    y_col: usize,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(8);
    let height = height.max(4);
    let xs = match table.numeric(x_col) {
        Ok(v) => v,
        Err(_) => return format!("<{} is not numeric>", table.name(x_col)),
    };
    let ys = match table.numeric(y_col) {
        Ok(v) => v,
        Err(_) => return format!("<{} is not numeric>", table.name(y_col)),
    };
    let finite: Vec<(f64, f64, bool)> = xs
        .iter()
        .zip(ys)
        .enumerate()
        .filter(|(_, (x, y))| x.is_finite() && y.is_finite())
        .map(|(i, (&x, &y))| (x, y, mask.get(i)))
        .collect();
    if finite.is_empty() {
        return "<no plottable points>".to_string();
    }
    let (mut xlo, mut xhi) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ylo, mut yhi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y, _) in &finite {
        xlo = xlo.min(x);
        xhi = xhi.max(x);
        ylo = ylo.min(y);
        yhi = yhi.max(y);
    }
    if xlo == xhi {
        xhi = xlo + 1.0;
    }
    if ylo == yhi {
        yhi = ylo + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    let place = |v: f64, lo: f64, hi: f64, cells: usize| -> usize {
        (((v - lo) / (hi - lo) * cells as f64).floor().max(0.0) as usize).min(cells - 1)
    };
    // Outside first so selection markers paint on top.
    for pass in 0..2 {
        for &(x, y, inside) in &finite {
            if (pass == 0) == inside {
                continue;
            }
            let cx = place(x, xlo, xhi, width);
            let cy = height - 1 - place(y, ylo, yhi, height);
            let cell = &mut grid[cy][cx];
            *cell = match (*cell, inside) {
                (' ', true) => CH_IN,
                (' ', false) => CH_OUT,
                (CH_OUT, true) | (CH_IN, false) | (CH_BOTH, _) => CH_BOTH,
                (c, _) => c,
            };
        }
    }
    let mut out = String::new();
    out.push_str(&format!("{} ^\n", table.name(y_col)));
    for row in grid {
        out.push_str("  |");
        out.extend(row);
        out.push('\n');
    }
    out.push_str("  +");
    out.push_str(&"-".repeat(width));
    out.push_str("> ");
    out.push_str(table.name(x_col));
    out.push('\n');
    out.push_str(&format!(
        "  [{CH_IN} selection  {CH_OUT} others  {CH_BOTH} both]\n"
    ));
    out
}

/// Renders the Figure-5-style "interface snapshot": input query, ranked
/// views, a detail plot of the top view, and the explanation pane.
pub fn render_interface(table: &Table, mask: &Bitmask, report: &CharacterizationReport) -> String {
    let mut out = String::new();
    let rule = "=".repeat(72);
    out.push_str(&rule);
    out.push_str("\nZIGGY — query characterization\n");
    out.push_str(&rule);
    out.push('\n');
    out.push_str(&format!("Input query  : {}\n", report.query));
    out.push_str(&format!(
        "Selection    : {} tuples inside, {} outside ({:.1}% selectivity)\n",
        report.n_inside,
        report.n_outside,
        report.selectivity() * 100.0
    ));
    out.push_str(&format!(
        "Timings      : prep {} us | search {} us | post {} us\n",
        report.timings.preparation_us,
        report.timings.view_search_us,
        report.timings.post_processing_us
    ));
    out.push_str(&rule);
    out.push_str("\nVIEWS (by decreasing dissimilarity)\n");
    for (i, v) in report.views.iter().enumerate() {
        out.push_str(&format!(
            "  {}. {}  score={:.3}  robustness p={:.2e}  tightness={:.2}\n",
            i + 1,
            v.view,
            v.score,
            v.robustness_p,
            v.tightness
        ));
    }
    if let Some(top) = report.best_view() {
        out.push_str(&rule);
        out.push_str(&format!("\nDETAIL — top view {}\n", top.view));
        if top.view.columns.len() >= 2 {
            out.push_str(&ascii_scatter(
                table,
                mask,
                top.view.columns[0],
                top.view.columns[1],
                56,
                16,
            ));
        } else if top.view.columns.len() == 1 {
            out.push_str(&format!("(single-column view on {})\n", top.view.names[0]));
        }
        out.push_str(&rule);
        out.push_str("\nEXPLANATIONS\n");
        for v in &report.views {
            out.push_str(&format!("{}:\n", v.view));
            for s in &v.explanation.sentences {
                out.push_str(&format!("  - {s}\n"));
            }
        }
    }
    out.push_str(&rule);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explain::Explanation;
    use crate::report::{StageTimings, View, ViewReport};
    use ziggy_store::{eval::select, TableBuilder};

    fn sample() -> (Table, Bitmask) {
        let n = 60usize;
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(|i| i as f64).collect());
        b.add_numeric("y", (0..n).map(|i| (i * i) as f64 * 0.05).collect());
        b.add_categorical("c", (0..n).map(|_| Some("k")).collect());
        let t = b.build().unwrap();
        let mask = select(&t, "x >= 40").unwrap();
        (t, mask)
    }

    #[test]
    fn scatter_contains_axes_and_markers() {
        let (t, mask) = sample();
        let art = ascii_scatter(&t, &mask, 0, 1, 40, 12);
        assert!(art.contains("y ^"), "{art}");
        assert!(art.contains("> x"), "{art}");
        assert!(art.contains('+'), "selection markers missing:\n{art}");
        assert!(art.contains('·'), "complement markers missing:\n{art}");
    }

    #[test]
    fn scatter_selection_lands_in_upper_right() {
        let (t, mask) = sample();
        let art = ascii_scatter(&t, &mask, 0, 1, 40, 12);
        // The selection is the top of both ranges; the first grid row that
        // contains any marker should contain a '+'.
        let first_marked = art
            .lines()
            .find(|l| l.contains('+') || l.contains('·'))
            .expect("some markers");
        assert!(
            first_marked.contains('+'),
            "top row lacks selection: {first_marked}"
        );
    }

    #[test]
    fn scatter_degenerate_inputs() {
        let (t, mask) = sample();
        // Non-numeric column renders a notice, not a panic.
        let art = ascii_scatter(&t, &mask, 2, 1, 20, 8);
        assert!(art.contains("not numeric"));
        // Constant columns still render.
        let mut b = TableBuilder::new();
        b.add_numeric("u", vec![1.0; 10]);
        b.add_numeric("v", vec![2.0; 10]);
        let t2 = b.build().unwrap();
        let m2 = Bitmask::ones(10);
        let art = ascii_scatter(&t2, &m2, 0, 1, 20, 8);
        assert!(art.contains('+'));
    }

    #[test]
    fn interface_snapshot_structure() {
        let (t, mask) = sample();
        let report = CharacterizationReport {
            query: "x >= 40".into(),
            n_inside: 20,
            n_outside: 40,
            views: vec![ViewReport {
                view: View {
                    columns: vec![0, 1],
                    names: vec!["x".into(), "y".into()],
                },
                score: 2.5,
                robustness_p: 0.001,
                tightness: 0.9,
                components: vec![],
                explanation: Explanation {
                    sentences: vec!["On the columns x and y, …".into()],
                },
            }],
            timings: StageTimings {
                preparation_us: 10,
                view_search_us: 5,
                post_processing_us: 1,
            },
        };
        let ui = render_interface(&t, &mask, &report);
        assert!(ui.contains("Input query  : x >= 40"));
        assert!(ui.contains("VIEWS"));
        assert!(ui.contains("DETAIL"));
        assert!(ui.contains("EXPLANATIONS"));
        assert!(ui.contains("score=2.500"));
        assert!(ui.contains("33.3% selectivity"));
    }
}
