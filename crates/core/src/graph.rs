//! The column dependency graph.
//!
//! "It materializes the graph formed by the column's pairwise
//! dependencies, and partitions it…" (§3, *View Search*.) Nodes are the
//! table's usable columns; edge weights are a dependence measure `S` in
//! `[0, 1]`, chosen per column-type pair:
//!
//! * numeric–numeric: |Pearson r| (default), |Spearman ρ|, or normalized
//!   mutual information, per [`DependenceKind`];
//! * categorical–categorical: Cramér's V;
//! * numeric–categorical: the correlation ratio η.
//!
//! All whole-table quantities — the graph is query-independent and can be
//! shared across explorations of the same table (the moment cache serves
//! the Pearson case directly).

use ziggy_cluster::DistanceMatrix;
use ziggy_store::{ColumnType, StatsCache, Table};

use crate::config::DependenceKind;
use crate::error::Result;

/// The materialized dependency graph over usable columns.
#[derive(Debug, Clone)]
pub struct DependencyGraph {
    /// Table indices of the graph's nodes (usable columns).
    columns: Vec<usize>,
    /// Condensed pairwise similarity, aligned with `columns` positions.
    sim: Vec<f64>,
}

/// Decides whether a column can participate in views: numeric columns
/// need at least two distinct finite values; categorical columns need at
/// least two populated categories.
pub fn usable_columns(table: &Table) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..table.n_cols() {
        match table.schema().column(i).map(|c| c.ctype) {
            Some(ColumnType::Numeric) => {
                let data = table.numeric(i).expect("type checked");
                let mut first: Option<f64> = None;
                let mut distinct = false;
                for &v in data {
                    if !v.is_finite() {
                        continue;
                    }
                    match first {
                        None => first = Some(v),
                        Some(f) if f != v => {
                            distinct = true;
                            break;
                        }
                        _ => {}
                    }
                }
                if distinct {
                    out.push(i);
                }
            }
            Some(ColumnType::Categorical) => {
                let (codes, labels) = table.categorical(i).expect("type checked");
                if labels.len() >= 2 {
                    let mut seen = vec![false; labels.len()];
                    let mut populated = 0;
                    for &c in codes {
                        if c != u32::MAX && !seen[c as usize] {
                            seen[c as usize] = true;
                            populated += 1;
                            if populated >= 2 {
                                break;
                            }
                        }
                    }
                    if populated >= 2 {
                        out.push(i);
                    }
                }
            }
            None => {}
        }
    }
    out
}

fn pair_similarity(
    cache: &StatsCache,
    a: usize,
    b: usize,
    kind: DependenceKind,
    mi_bins: usize,
) -> f64 {
    let table = cache.table();
    let ta = table.schema().column(a).map(|c| c.ctype);
    let tb = table.schema().column(b).map(|c| c.ctype);
    match (ta, tb) {
        (Some(ColumnType::Numeric), Some(ColumnType::Numeric)) => match kind {
            DependenceKind::Pearson => cache
                .pair(a, b)
                .and_then(|m| m.correlation().map_err(Into::into))
                .map(|r| r.abs())
                .unwrap_or(0.0),
            DependenceKind::Spearman => {
                let xs = table.numeric(a).expect("type checked");
                let ys = table.numeric(b).expect("type checked");
                ziggy_stats::spearman(xs, ys)
                    .map(|r| r.abs())
                    .unwrap_or(0.0)
            }
            DependenceKind::MutualInformation => {
                let xs = table.numeric(a).expect("type checked");
                let ys = table.numeric(b).expect("type checked");
                ziggy_stats::mutual_information(xs, ys, mi_bins).unwrap_or(0.0)
            }
        },
        (Some(ColumnType::Categorical), Some(ColumnType::Categorical)) => {
            let (ca, la) = table.categorical(a).expect("type checked");
            let (cb, lb) = table.categorical(b).expect("type checked");
            let mut counts = vec![vec![0u64; lb.len()]; la.len()];
            for (&x, &y) in ca.iter().zip(cb) {
                if x != u32::MAX && y != u32::MAX {
                    counts[x as usize][y as usize] += 1;
                }
            }
            ziggy_stats::cramers_v_counts(&counts).unwrap_or(0.0)
        }
        (Some(ColumnType::Numeric), Some(ColumnType::Categorical))
        | (Some(ColumnType::Categorical), Some(ColumnType::Numeric)) => {
            let (num_col, cat_col) = if ta == Some(ColumnType::Numeric) {
                (a, b)
            } else {
                (b, a)
            };
            let values = table.numeric(num_col).expect("type checked");
            let (codes, labels) = table.categorical(cat_col).expect("type checked");
            let opt_codes: Vec<Option<u32>> = codes
                .iter()
                .map(|&c| if c == u32::MAX { None } else { Some(c) })
                .collect();
            ziggy_stats::correlation_ratio(&opt_codes, values, labels.len()).unwrap_or(0.0)
        }
        _ => 0.0,
    }
}

impl DependencyGraph {
    /// Materializes the graph over the given usable columns. Degenerate
    /// pairs (constant margins and the like) get similarity 0 rather than
    /// failing the whole graph.
    pub fn build(
        cache: &StatsCache,
        columns: Vec<usize>,
        kind: DependenceKind,
        mi_bins: usize,
    ) -> Result<Self> {
        let m = columns.len();
        let mut sim = Vec::with_capacity(m.saturating_sub(1) * m / 2);
        for i in 0..m {
            for j in (i + 1)..m {
                let s = pair_similarity(cache, columns[i], columns[j], kind, mi_bins);
                sim.push(s.clamp(0.0, 1.0));
            }
        }
        Ok(Self { columns, sim })
    }

    /// Table indices of the nodes.
    pub fn columns(&self) -> &[usize] {
        &self.columns
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Similarity between nodes at *positions* `i` and `j` (1 on the
    /// diagonal).
    pub fn similarity(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 1.0;
        }
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        let n = self.columns.len();
        self.sim[a * n - a * (a + 1) / 2 + (b - a - 1)]
    }

    /// Converts to the distance matrix `1 − S` for clustering.
    pub fn to_distance_matrix(&self) -> Result<DistanceMatrix> {
        Ok(DistanceMatrix::from_condensed(
            self.sim.iter().map(|&s| (1.0 - s).max(0.0)).collect(),
        )?)
    }

    /// Minimum pairwise similarity among a set of node *positions* —
    /// the paper's `tightness` (Equation 2). A singleton has tightness 1.
    pub fn tightness(&self, positions: &[usize]) -> f64 {
        let mut min = 1.0f64;
        for (idx, &i) in positions.iter().enumerate() {
            for &j in &positions[idx + 1..] {
                min = min.min(self.similarity(i, j));
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::TableBuilder;

    fn sample() -> Table {
        let n = 240;
        let mut b = TableBuilder::new();
        // x and y strongly dependent, z independent noise.
        b.add_numeric("x", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "y",
            (0..n)
                .map(|i| i as f64 * 2.0 + ((i * 31) % 5) as f64)
                .collect(),
        );
        b.add_numeric("z", (0..n).map(|i| ((i * 7919) % 101) as f64).collect());
        // Categorical correlated with x's halves; plus a constant-ish one.
        b.add_categorical(
            "half",
            (0..n)
                .map(|i| Some(if i < n / 2 { "lo" } else { "hi" }))
                .collect(),
        );
        b.add_categorical("const", (0..n).map(|_| Some("only")).collect());
        b.add_numeric("flat", vec![3.0; n]);
        b.build().unwrap()
    }

    #[test]
    fn usable_excludes_degenerates() {
        let t = sample();
        let usable = usable_columns(&t);
        // "const" (single category) and "flat" (constant numeric) excluded.
        assert_eq!(usable, vec![0, 1, 2, 3]);
    }

    #[test]
    fn pearson_graph_strong_and_weak_edges() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let g = DependencyGraph::build(&cache, vec![0, 1, 2], DependenceKind::Pearson, 8).unwrap();
        assert!(g.similarity(0, 1) > 0.95, "x~y should be near 1");
        assert!(g.similarity(0, 2) < 0.3, "x~z should be weak");
        assert_eq!(g.similarity(1, 0), g.similarity(0, 1));
        assert_eq!(g.similarity(2, 2), 1.0);
    }

    #[test]
    fn mixed_type_edges() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let g = DependencyGraph::build(&cache, vec![0, 3], DependenceKind::Pearson, 8).unwrap();
        // x (ramp) strongly separates the two halves → high eta.
        assert!(g.similarity(0, 1) > 0.8);
    }

    #[test]
    fn tightness_is_min_pairwise() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let g = DependencyGraph::build(&cache, vec![0, 1, 2], DependenceKind::Pearson, 8).unwrap();
        let tight_xy = g.tightness(&[0, 1]);
        let tight_all = g.tightness(&[0, 1, 2]);
        assert!(tight_xy > tight_all);
        assert_eq!(g.tightness(&[1]), 1.0);
    }

    #[test]
    fn distance_matrix_complements_similarity() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let g = DependencyGraph::build(&cache, vec![0, 1, 2], DependenceKind::Pearson, 8).unwrap();
        let d = g.to_distance_matrix().unwrap();
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!((d.get(i, j) - (1.0 - g.similarity(i, j))).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn spearman_and_mi_variants_run() {
        let t = sample();
        let cache = StatsCache::new(&t);
        for kind in [DependenceKind::Spearman, DependenceKind::MutualInformation] {
            let g = DependencyGraph::build(&cache, vec![0, 1, 2], kind, 6).unwrap();
            assert!(
                g.similarity(0, 1) > g.similarity(0, 2),
                "{kind:?}: dependent pair must beat the independent pair"
            );
        }
    }
}
