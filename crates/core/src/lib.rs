#![warn(missing_docs)]

//! The Ziggy engine — characterizing query results for data explorers.
//!
//! Reproduction of Sellam & Kersten, *Ziggy: Characterizing Query Results
//! for Data Explorers*, PVLDB 9(13), 2016. Given a selection query over a
//! wide table, the engine finds *characteristic views*: small, tight,
//! mutually disjoint sets of columns on which the selected tuples diverge
//! most from the rest of the table — and explains why in plain language.
//!
//! The pipeline mirrors the paper's Figure 4:
//!
//! 1. **Preparation** ([`prepare`]) — execute the query, compute the
//!    Zig-Components ([`component`]) for every column and column pair,
//!    deriving complement statistics from cached whole-table moments.
//! 2. **View search** ([`candidates`], [`search`]) — build the column
//!    dependency graph ([`graph`]), partition it with complete-linkage
//!    clustering under the tightness constraint, score candidates with
//!    the Zig-Dissimilarity ([`dissimilarity`], [`weights`]), rank, and
//!    enforce disjointness.
//! 3. **Post-processing** ([`robust`], [`explain`]) — test each
//!    component's significance, aggregate into a per-view robustness
//!    score (min-p or Bonferroni, paper §3), and generate rule-based
//!    textual explanations.
//!
//! [`pipeline::Ziggy`] ties the stages together; [`report`] holds the
//! result types and [`render`] draws ASCII views and the Figure-5-style
//! interface snapshot.

pub mod candidates;
pub mod component;
pub mod config;
pub mod dissimilarity;
pub mod error;
pub mod explain;
pub mod graph;
pub mod pipeline;
pub mod prepare;
pub mod render;
pub mod report;
pub mod robust;
pub mod search;
pub mod session;
pub mod weights;

pub use component::{ComponentKind, ZigComponent};
pub use config::{DependenceKind, ZiggyConfig};
pub use error::ZiggyError;
pub use explain::Explanation;
pub use pipeline::{CachedReport, CharacterizeOutcome, ReportCache, ReportKey, ReuseLevel, Ziggy};
pub use report::{CharacterizationReport, StageTimings, View, ViewReport};
pub use session::{diff_reports, ExplorationSession, ReportDiff};
pub use weights::Weights;
