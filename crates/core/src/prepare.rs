//! Preparation stage: execute the query and compute all Zig-Components.
//!
//! "During the preparation step, Ziggy executes the user's query, loads
//! the results, and computes the Zig-Components associated to each column
//! and each couple of columns. This is often the most time consuming
//! step." (§3.) Costs are kept down three ways — a two-level reuse
//! strategy plus fast kernels for whatever still has to be scanned:
//!
//! * **whole-table complement cache** ([`StatsCache`]): complement
//!   statistics come from the memoized whole-table moments by
//!   subtraction (one masked scan per query instead of two full scans) —
//!   the reproduction of the full paper's shared-computation strategy;
//! * **per-query `PreparedStats` cache** (`ziggy_store::PreparedCache`,
//!   threaded through [`crate::pipeline::Ziggy`]): the finished
//!   [`PreparedStats`] is memoized against the selection mask, so a
//!   repeated or shared predicate — REPL refinement loops, exploration
//!   sessions, concurrent HTTP clients — skips this stage entirely;
//! * **word-wise masked kernels** (`UniMoments::from_mask_words` and
//!   friends): the selection-side scans that do run process 64 rows per
//!   packed mask word with per-word accumulation, instead of paying a
//!   branch and an indirection per selected row. Scans are split along
//!   the store's 64 Ki-row chunk boundaries and merged in ascending
//!   chunk order, so large tables fan out across the worker pool
//!   (columns in parallel, or chunks within a column — never both at
//!   once) while staying bit-identical to the serial single-pass path.
//!   Pairwise components additionally fan out over worker threads via
//!   `std::thread::scope` when [`ZiggyConfig::parallel`] is set.

use std::collections::HashMap;

use ziggy_stats::{PairMoments, UniMoments};
use ziggy_store::{
    chunk_bounds, chunk_count, run_indexed, Bitmask, ColumnType, StatsCache, CHUNK_ROWS,
    WORDS_PER_CHUNK,
};

use crate::component::{normalize_components, ComponentKind, ZigComponent};
use crate::config::ZiggyConfig;
use crate::error::Result;

/// All Zig-Components of one query, normalized and indexed.
#[derive(Debug, Clone)]
pub struct PreparedStats {
    /// Rows matched by the query.
    pub n_inside: usize,
    /// Rows outside the selection.
    pub n_outside: usize,
    /// Every successfully computed component (normalized).
    components: Vec<ZigComponent>,
    /// Index from `(kind, column_a, column_b)` into `components`.
    index: HashMap<(ComponentKind, usize, usize), usize>,
}

const NO_COLUMN: usize = usize::MAX;

impl PreparedStats {
    /// All components.
    pub fn components(&self) -> &[ZigComponent] {
        &self.components
    }

    /// Looks up a univariate component for a column.
    pub fn uni_component(&self, kind: ComponentKind, column: usize) -> Option<&ZigComponent> {
        self.index
            .get(&(kind, column, NO_COLUMN))
            .map(|&i| &self.components[i])
    }

    /// Looks up the correlation component for an unordered column pair.
    pub fn pair_component(&self, a: usize, b: usize) -> Option<&ZigComponent> {
        let key = (ComponentKind::CorrelationShift, a.min(b), a.max(b));
        self.index.get(&key).map(|&i| &self.components[i])
    }

    /// Components whose columns all lie inside `view` (the inputs to the
    /// view's Zig-Dissimilarity).
    pub fn components_for_view(&self, view: &[usize]) -> Vec<&ZigComponent> {
        self.components.iter().filter(|c| c.within(view)).collect()
    }
}

/// Runs the preparation stage over the selection `mask`.
pub fn prepare(
    cache: &StatsCache,
    mask: &Bitmask,
    usable: &[usize],
    config: &ZiggyConfig,
) -> Result<PreparedStats> {
    let table = cache.table();
    // Guard the kernels' packed-word contract: a wrong-length mask must
    // be an Err for direct callers too, not an assertion or underflow.
    if mask.len() != table.n_rows() {
        return Err(ziggy_store::StoreError::LengthMismatch {
            column: "<mask>".to_string(),
            got: mask.len(),
            expected: table.n_rows(),
        }
        .into());
    }
    let n_inside = mask.count_ones();
    let n_outside = table.n_rows() - n_inside;

    let mut components: Vec<ZigComponent> = Vec::new();

    // --- Univariate components, one chunked word-wise pass per usable
    // column. Columns fan out on the worker pool; within a column the
    // masked scan itself splits per chunk (only when the column loop is
    // serial, so the two axes never multiply into oversubscription).
    // Results are placed back in `usable` order, so component order —
    // and therefore normalization and report bytes — is identical to
    // the serial path.
    let col_parallel = config.parallel && usable.len() >= 2 && table.n_rows() >= 4096;
    let chunk_parallel = config.parallel && !col_parallel && table.n_rows() > CHUNK_ROWS;
    let per_column: Vec<Result<Vec<ZigComponent>>> = run_indexed(usable.len(), col_parallel, |i| {
        let col = usable[i];
        let mut out: Vec<ZigComponent> = Vec::new();
        match table.schema().column(col).map(|c| c.ctype) {
            Some(ColumnType::Numeric) => {
                let data = table.numeric(col)?;
                let inside = masked_uni_chunked(data, mask, chunk_parallel);
                let outside = cache.uni_complement(col, &inside)?;
                if let Ok(c) = ZigComponent::mean_shift(col, &inside, &outside) {
                    out.push(c);
                }
                if let Ok(c) = ZigComponent::dispersion_shift(col, &inside, &outside) {
                    out.push(c);
                }
                if config.extended_components {
                    // Raw-sample component: needs the actual values, not
                    // just moments (hence the extra per-query cost the
                    // paper warns about).
                    let inside_vals: Vec<f64> = mask
                        .iter_ones()
                        .map(|r| data[r])
                        .filter(|v| v.is_finite())
                        .collect();
                    let outside_vals: Vec<f64> = data
                        .iter()
                        .enumerate()
                        .filter(|(i, v)| !mask.get(*i) && v.is_finite())
                        .map(|(_, &v)| v)
                        .collect();
                    if let Ok(c) = ZigComponent::shape_shift(col, &inside_vals, &outside_vals) {
                        out.push(c);
                    }
                }
            }
            Some(ColumnType::Categorical) => {
                let inside = ziggy_store::masked_freq(table, col, mask)?;
                let outside = cache.freq_complement(col, &inside)?;
                if let Ok(c) = ZigComponent::frequency_shift(col, &inside, &outside) {
                    out.push(c);
                }
            }
            None => {}
        }
        Ok(out)
    });
    for per_col in per_column {
        components.extend(per_col?);
    }
    let numeric_cols: Vec<usize> = usable
        .iter()
        .copied()
        .filter(|&col| {
            matches!(
                table.schema().column(col).map(|c| c.ctype),
                Some(ColumnType::Numeric)
            )
        })
        .collect();

    // --- Pairwise (correlation) components. ----------------------------
    if config.pairwise_components && numeric_cols.len() >= 2 {
        let mut pairs: Vec<(usize, usize)> = Vec::new();
        for (i, &a) in numeric_cols.iter().enumerate() {
            for &b in &numeric_cols[i + 1..] {
                pairs.push((a, b));
            }
        }
        let pair_components = if config.parallel && pairs.len() >= 64 {
            // Many pairs: fan out across pairs, scan each pair serially.
            compute_pairs_parallel(cache, mask, &pairs)
        } else {
            // Few pairs: scan each pair's chunks in parallel instead.
            let chunk_parallel = config.parallel && table.n_rows() > CHUNK_ROWS;
            compute_pairs_serial(cache, mask, &pairs, chunk_parallel)
        };
        components.extend(pair_components);
    }

    normalize_components(&mut components);

    let mut index = HashMap::with_capacity(components.len());
    for (i, c) in components.iter().enumerate() {
        index.insert((c.kind, c.column_a, c.column_b.unwrap_or(NO_COLUMN)), i);
    }
    Ok(PreparedStats {
        n_inside,
        n_outside,
        components,
        index,
    })
}

/// Masked univariate moments computed chunk-at-a-time and merged in
/// ascending chunk order. Merging one chunk's partial into an empty
/// accumulator reproduces it bit-for-bit, and the merge order is fixed,
/// so this is byte-identical to the single-pass kernel on single-chunk
/// tables and identical between serial and parallel execution.
pub(crate) fn masked_uni_chunked(data: &[f64], mask: &Bitmask, parallel: bool) -> UniMoments {
    let n_chunks = chunk_count(data.len());
    if n_chunks <= 1 {
        return UniMoments::from_mask_words(data, mask.words());
    }
    let words = mask.words();
    let partials = run_indexed(n_chunks, parallel, |ci| {
        let (start, end) = chunk_bounds(ci, data.len());
        let w0 = ci * WORDS_PER_CHUNK;
        let w1 = w0 + (end - start).div_ceil(64);
        UniMoments::from_mask_words(&data[start..end], &words[w0..w1])
    });
    let mut whole = UniMoments::new();
    for p in &partials {
        whole.merge(p);
    }
    whole
}

/// Chunked counterpart of `PairMoments::from_mask_words`; same merge
/// discipline as [`masked_uni_chunked`].
fn masked_pair_chunked(xs: &[f64], ys: &[f64], mask: &Bitmask, parallel: bool) -> PairMoments {
    let n_chunks = chunk_count(xs.len());
    if n_chunks <= 1 {
        return PairMoments::from_mask_words(xs, ys, mask.words())
            .expect("equal-length slices by construction");
    }
    let words = mask.words();
    let partials = run_indexed(n_chunks, parallel, |ci| {
        let (start, end) = chunk_bounds(ci, xs.len());
        let w0 = ci * WORDS_PER_CHUNK;
        let w1 = w0 + (end - start).div_ceil(64);
        PairMoments::from_mask_words(&xs[start..end], &ys[start..end], &words[w0..w1])
            .expect("equal-length slices by construction")
    });
    let mut whole = PairMoments::new();
    for p in &partials {
        whole.merge(p);
    }
    whole
}

fn compute_pair(
    cache: &StatsCache,
    mask: &Bitmask,
    a: usize,
    b: usize,
    chunk_parallel: bool,
) -> Option<ZigComponent> {
    let table = cache.table();
    let xs = table.numeric(a).ok()?;
    let ys = table.numeric(b).ok()?;
    let inside = masked_pair_chunked(xs, ys, mask, chunk_parallel);
    let outside = cache.pair_complement(a, b, &inside).ok()?;
    ZigComponent::correlation_shift(a, b, &inside, &outside).ok()
}

fn compute_pairs_serial(
    cache: &StatsCache,
    mask: &Bitmask,
    pairs: &[(usize, usize)],
    chunk_parallel: bool,
) -> Vec<ZigComponent> {
    pairs
        .iter()
        .filter_map(|&(a, b)| compute_pair(cache, mask, a, b, chunk_parallel))
        .collect()
}

fn compute_pairs_parallel(
    cache: &StatsCache,
    mask: &Bitmask,
    pairs: &[(usize, usize)],
) -> Vec<ZigComponent> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(16);
    let chunk = pairs.len().div_ceil(threads);
    let mut out: Vec<ZigComponent> = Vec::with_capacity(pairs.len());
    std::thread::scope(|s| {
        let handles: Vec<_> = pairs
            .chunks(chunk)
            .map(|slice| {
                s.spawn(move || {
                    slice
                        .iter()
                        .filter_map(|&(a, b)| compute_pair(cache, mask, a, b, false))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().expect("pairwise worker panicked"));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::{eval::select, Table, TableBuilder};

    /// 400 rows; selection = rows 300.. (shifted mean on `shifted`,
    /// changed correlation on (`cx`, `cy`), different category mix on
    /// `cat`).
    fn sample() -> Table {
        let n = 400usize;
        let sel = |i: usize| i >= 300;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "shifted",
            (0..n)
                .map(|i| {
                    let noise = ((i * 37) % 11) as f64 * 0.1;
                    if sel(i) {
                        10.0 + noise
                    } else {
                        0.0 + noise
                    }
                })
                .collect(),
        );
        b.add_numeric("cx", (0..n).map(|i| ((i * 17) % 101) as f64).collect());
        b.add_numeric(
            "cy",
            (0..n)
                .map(|i| {
                    let x = ((i * 17) % 101) as f64;
                    if sel(i) {
                        x * 2.0 // strong correlation inside.
                    } else {
                        ((i * 7919) % 97) as f64 // noise outside.
                    }
                })
                .collect(),
        );
        b.add_categorical(
            "cat",
            (0..n)
                .map(|i| {
                    Some(if sel(i) {
                        "rare"
                    } else {
                        ["common_a", "common_b"][i % 2]
                    })
                })
                .collect(),
        );
        b.build().unwrap()
    }

    fn prep(table: &Table, query: &str, config: &ZiggyConfig) -> PreparedStats {
        let cache = StatsCache::new(table);
        let mask = select(table, query).unwrap();
        let usable = crate::graph::usable_columns(table);
        prepare(&cache, &mask, &usable, config).unwrap()
    }

    #[test]
    fn counts_split() {
        let t = sample();
        let p = prep(&t, "key >= 300", &ZiggyConfig::default());
        assert_eq!(p.n_inside, 100);
        assert_eq!(p.n_outside, 300);
    }

    #[test]
    fn mean_shift_detected_on_shifted_column() {
        let t = sample();
        let p = prep(&t, "key >= 300", &ZiggyConfig::default());
        let col = t.index_of("shifted").unwrap();
        let c = p
            .uni_component(ComponentKind::MeanShift, col)
            .expect("component exists");
        assert!(
            c.effect.value > 2.0,
            "huge shift expected, got {}",
            c.effect.value
        );
        assert!(c.effect.p_value < 1e-6);
        // It should dominate its family after normalization.
        assert!((c.normalized - 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_shift_detected_on_planted_pair() {
        let t = sample();
        let p = prep(&t, "key >= 300", &ZiggyConfig::default());
        let (cx, cy) = (t.index_of("cx").unwrap(), t.index_of("cy").unwrap());
        let c = p.pair_component(cx, cy).expect("pair component exists");
        assert!(c.effect.value.abs() > 1.0);
        assert!(c.effect.p_value < 1e-4);
        // Symmetric lookup.
        assert_eq!(
            p.pair_component(cy, cx).unwrap().effect.value,
            c.effect.value
        );
    }

    #[test]
    fn frequency_shift_detected_on_categorical() {
        let t = sample();
        let p = prep(&t, "key >= 300", &ZiggyConfig::default());
        let col = t.index_of("cat").unwrap();
        let c = p
            .uni_component(ComponentKind::FrequencyShift, col)
            .expect("component exists");
        assert!(
            c.effect.value > 1.0,
            "selection is all-'rare': big Cohen's w"
        );
        assert!(c.effect.p_value < 1e-6);
    }

    #[test]
    fn extended_components_add_shape_shift() {
        let t = sample();
        let base = prep(&t, "key >= 300", &ZiggyConfig::default());
        assert!(base
            .components()
            .iter()
            .all(|c| c.kind != ComponentKind::ShapeShift));
        let config = ZiggyConfig {
            extended_components: true,
            ..ZiggyConfig::default()
        };
        let p = prep(&t, "key >= 300", &config);
        let col = t.index_of("shifted").unwrap();
        let c = p
            .uni_component(ComponentKind::ShapeShift, col)
            .expect("shape component");
        assert!(c.effect.value > 0.9, "disjoint distributions: KS D near 1");
        assert!(c.effect.p_value < 1e-6);
    }

    #[test]
    fn disabling_pairwise_removes_correlation_components() {
        let t = sample();
        let config = ZiggyConfig {
            pairwise_components: false,
            ..ZiggyConfig::default()
        };
        let p = prep(&t, "key >= 300", &config);
        assert!(p
            .components()
            .iter()
            .all(|c| c.kind != ComponentKind::CorrelationShift));
    }

    #[test]
    fn parallel_matches_serial() {
        let t = sample();
        let serial = prep(
            &t,
            "key >= 300",
            &ZiggyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let parallel = prep(
            &t,
            "key >= 300",
            &ZiggyConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.components().len(), parallel.components().len());
        let (cx, cy) = (t.index_of("cx").unwrap(), t.index_of("cy").unwrap());
        let a = serial.pair_component(cx, cy).unwrap().effect.value;
        let b = parallel.pair_component(cx, cy).unwrap().effect.value;
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn components_for_view_filters_by_coverage() {
        let t = sample();
        let p = prep(&t, "key >= 300", &ZiggyConfig::default());
        let (cx, cy) = (t.index_of("cx").unwrap(), t.index_of("cy").unwrap());
        let view = vec![cx, cy];
        let comps = p.components_for_view(&view);
        // 2 mean + 2 dispersion + 1 correlation = 5 components at most.
        assert!(comps.len() <= 5 && comps.len() >= 3);
        assert!(comps.iter().all(|c| c.within(&view)));
    }

    #[test]
    fn chunked_masked_kernels_match_single_pass() {
        // Multi-chunk column with NULLs: the chunked merge must agree
        // with the single-pass kernel, and serial/parallel chunk
        // schedules must agree bit-for-bit with each other.
        let n = 2 * ziggy_store::CHUNK_ROWS + 777;
        let data: Vec<f64> = (0..n)
            .map(|i| {
                if i % 89 == 0 {
                    f64::NAN
                } else {
                    ((i * 31) % 1009) as f64 * 0.25 - 100.0
                }
            })
            .collect();
        let ys: Vec<f64> = (0..n).map(|i| ((i * 13) % 503) as f64).collect();
        let mask = Bitmask::from_fn(n, |i| (i * 7) % 3 == 0);
        let single = UniMoments::from_mask_words(&data, mask.words());
        let serial = masked_uni_chunked(&data, &mask, false);
        let parallel = masked_uni_chunked(&data, &mask, true);
        assert_eq!(serial.count(), parallel.count());
        assert_eq!(serial.mean(), parallel.mean());
        assert_eq!(serial.variance().unwrap(), parallel.variance().unwrap());
        assert_eq!(single.count(), serial.count());
        assert!((single.mean() - serial.mean()).abs() < 1e-9);
        assert!((single.variance().unwrap() - serial.variance().unwrap()).abs() < 1e-6);

        let pair_single = PairMoments::from_mask_words(&data, &ys, mask.words()).unwrap();
        let pair_serial = masked_pair_chunked(&data, &ys, &mask, false);
        let pair_parallel = masked_pair_chunked(&data, &ys, &mask, true);
        assert_eq!(
            pair_serial.correlation().unwrap(),
            pair_parallel.correlation().unwrap()
        );
        assert!(
            (pair_single.correlation().unwrap() - pair_serial.correlation().unwrap()).abs() < 1e-9
        );

        // Single-chunk tables take the exact single-pass code path.
        let small = &data[..1994];
        let small_mask = Bitmask::from_fn(1994, |i| i % 2 == 0);
        let a = UniMoments::from_mask_words(small, small_mask.words());
        let b = masked_uni_chunked(small, &small_mask, true);
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.variance().unwrap(), b.variance().unwrap());
    }

    #[test]
    fn column_parallel_prepare_matches_serial_exactly() {
        // Table big enough to trip the column fan-out gate (>= 4096
        // rows, >= 2 usable columns): component values must be
        // bit-identical to the serial path.
        let n = 5000usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric("a", (0..n).map(|i| ((i * 37) % 997) as f64 * 0.5).collect());
        b.add_numeric(
            "b",
            (0..n).map(|i| ((i * 101) % 773) as f64 - 300.0).collect(),
        );
        b.add_categorical(
            "cat",
            (0..n).map(|i| Some(["x", "y", "z"][(i * 7) % 3])).collect(),
        );
        let t = b.build().unwrap();
        let serial = prep(
            &t,
            "key >= 2500",
            &ZiggyConfig {
                parallel: false,
                ..Default::default()
            },
        );
        let parallel = prep(
            &t,
            "key >= 2500",
            &ZiggyConfig {
                parallel: true,
                ..Default::default()
            },
        );
        assert_eq!(serial.components().len(), parallel.components().len());
        for (s, p) in serial.components().iter().zip(parallel.components()) {
            assert_eq!(s.kind, p.kind);
            assert_eq!(s.column_a, p.column_a);
            assert_eq!(s.column_b, p.column_b);
            assert_eq!(
                s.effect.value, p.effect.value,
                "component order/value drift"
            );
            assert_eq!(s.normalized, p.normalized);
        }
    }

    #[test]
    fn empty_selection_yields_no_components_but_no_panic() {
        let t = sample();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "key < 0").unwrap();
        let usable = crate::graph::usable_columns(&t);
        let p = prepare(&cache, &mask, &usable, &ZiggyConfig::default()).unwrap();
        assert_eq!(p.n_inside, 0);
        // Every effect needs >= 2 rows per side; nothing is computable.
        assert!(p.components().is_empty());
    }
}
