//! Zig-Components: simple, verifiable indicators of dissimilarity.
//!
//! "The idea behind the Zig-Dissimilarity is to compute several simple
//! indicators of dissimilarity, the Zig-Components, and aggregate them
//! into one synthetic score." (§2.2, Figure 3.) Each component is an
//! effect size from the meta-analysis literature comparing the selection
//! (`inside`) against the complement (`outside`):
//!
//! * [`ComponentKind::MeanShift`] — difference between the means
//!   (Hedges' g).
//! * [`ComponentKind::DispersionShift`] — difference between the standard
//!   deviations (log SD ratio).
//! * [`ComponentKind::CorrelationShift`] — difference between the
//!   correlation coefficients (Fisher-z difference; two-dimensional).
//! * [`ComponentKind::FrequencyShift`] — difference between categorical
//!   frequency distributions (Cohen's w; from the full paper).

use serde::{Deserialize, Serialize};
use ziggy_stats::{
    cohens_w, correlation_difference, hedges_g, ks_test, log_std_ratio, EffectSize, FrequencyTable,
    PairMoments, StatsError, UniMoments,
};

/// The family a Zig-Component belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ComponentKind {
    /// Standardized difference between the means (1 column).
    MeanShift,
    /// Log ratio of the standard deviations (1 column).
    DispersionShift,
    /// Fisher-z difference between correlation coefficients (2 columns).
    CorrelationShift,
    /// Cohen's w divergence between category frequencies (1 column).
    FrequencyShift,
    /// Kolmogorov–Smirnov distance between the full distributions
    /// (1 column; extended component, off by default — the paper notes
    /// extra components "only add marginal accuracy gains in practice,
    /// at the cost of significant processing times").
    ShapeShift,
}

impl ComponentKind {
    /// Human-readable family name.
    pub fn name(self) -> &'static str {
        match self {
            ComponentKind::MeanShift => "difference between the means",
            ComponentKind::DispersionShift => "difference between the std. deviations",
            ComponentKind::CorrelationShift => "difference between the correlation coefficients",
            ComponentKind::FrequencyShift => "difference between the frequency distributions",
            ComponentKind::ShapeShift => "difference between the overall distributions",
        }
    }

    /// Number of columns the component spans (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            ComponentKind::CorrelationShift => 2,
            _ => 1,
        }
    }
}

/// One computed Zig-Component: an effect size attached to one column (or a
/// column pair), plus the normalized magnitude used in the weighted sum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZigComponent {
    /// Component family.
    pub kind: ComponentKind,
    /// First column index.
    pub column_a: usize,
    /// Second column index for two-dimensional components.
    pub column_b: Option<usize>,
    /// The raw effect size (signed value, SE, p-value).
    pub effect: EffectSize,
    /// Magnitude normalized to `[0, 1]` across the run (filled in by the
    /// preparation stage; 0 until normalized).
    pub normalized: f64,
}

impl ZigComponent {
    /// Builds the mean-shift component for one numeric column.
    pub fn mean_shift(
        column: usize,
        inside: &UniMoments,
        outside: &UniMoments,
    ) -> Result<Self, StatsError> {
        Ok(Self {
            kind: ComponentKind::MeanShift,
            column_a: column,
            column_b: None,
            effect: hedges_g(inside, outside)?,
            normalized: 0.0,
        })
    }

    /// Builds the dispersion-shift component for one numeric column.
    pub fn dispersion_shift(
        column: usize,
        inside: &UniMoments,
        outside: &UniMoments,
    ) -> Result<Self, StatsError> {
        Ok(Self {
            kind: ComponentKind::DispersionShift,
            column_a: column,
            column_b: None,
            effect: log_std_ratio(inside, outside)?,
            normalized: 0.0,
        })
    }

    /// Builds the correlation-shift component for a numeric column pair.
    pub fn correlation_shift(
        column_a: usize,
        column_b: usize,
        inside: &PairMoments,
        outside: &PairMoments,
    ) -> Result<Self, StatsError> {
        let r_in = inside.correlation()?;
        let r_out = outside.correlation()?;
        Ok(Self {
            kind: ComponentKind::CorrelationShift,
            column_a,
            column_b: Some(column_b),
            effect: correlation_difference(r_in, inside.count(), r_out, outside.count())?,
            normalized: 0.0,
        })
    }

    /// Builds the frequency-shift component for one categorical column.
    pub fn frequency_shift(
        column: usize,
        inside: &FrequencyTable,
        outside: &FrequencyTable,
    ) -> Result<Self, StatsError> {
        Ok(Self {
            kind: ComponentKind::FrequencyShift,
            column_a: column,
            column_b: None,
            effect: cohens_w(inside.counts(), outside.counts())?,
            normalized: 0.0,
        })
    }

    /// Builds the distribution-shape component for one numeric column
    /// from the raw inside/outside samples (two-sample KS).
    pub fn shape_shift(column: usize, inside: &[f64], outside: &[f64]) -> Result<Self, StatsError> {
        let test = ks_test(inside, outside)?;
        Ok(Self {
            kind: ComponentKind::ShapeShift,
            column_a: column,
            column_b: None,
            effect: EffectSize {
                value: test.statistic,
                se: f64::NAN,
                p_value: test.p_value,
            },
            normalized: 0.0,
        })
    }

    /// Absolute raw magnitude of the effect.
    pub fn magnitude(&self) -> f64 {
        self.effect.value.abs()
    }

    /// The columns the component spans.
    pub fn columns(&self) -> Vec<usize> {
        match self.column_b {
            Some(b) => vec![self.column_a, b],
            None => vec![self.column_a],
        }
    }

    /// True when the component concerns only columns inside `set`.
    pub fn within(&self, set: &[usize]) -> bool {
        self.columns().iter().all(|c| set.contains(c))
    }
}

/// Normalizes a batch of components *per family*: each component's
/// [`ZigComponent::normalized`] becomes `|value| / max |value|` over its
/// kind (0 when the family maximum is 0). This puts heterogeneous effect
/// scales (standardized means, log ratios, Fisher-z units, Cohen's w) on
/// the comparable `[0, 1]` footing the weighted sum requires.
pub fn normalize_components(components: &mut [ZigComponent]) {
    use std::collections::HashMap;
    let mut max_by_kind: HashMap<ComponentKind, f64> = HashMap::new();
    for c in components.iter() {
        let m = c.magnitude();
        if m.is_finite() {
            let e = max_by_kind.entry(c.kind).or_insert(0.0);
            if m > *e {
                *e = m;
            }
        }
    }
    for c in components.iter_mut() {
        let max = max_by_kind.get(&c.kind).copied().unwrap_or(0.0);
        c.normalized = if max > 0.0 && c.magnitude().is_finite() {
            (c.magnitude() / max).clamp(0.0, 1.0)
        } else {
            0.0
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uni(vals: &[f64]) -> UniMoments {
        UniMoments::from_slice(vals)
    }

    #[test]
    fn kinds_metadata() {
        assert_eq!(ComponentKind::MeanShift.arity(), 1);
        assert_eq!(ComponentKind::CorrelationShift.arity(), 2);
        assert!(ComponentKind::DispersionShift.name().contains("deviations"));
    }

    #[test]
    fn mean_shift_component() {
        let c =
            ZigComponent::mean_shift(3, &uni(&[5.0, 6.0, 7.0, 8.0]), &uni(&[1.0, 2.0, 3.0, 4.0]))
                .unwrap();
        assert_eq!(c.kind, ComponentKind::MeanShift);
        assert_eq!(c.column_a, 3);
        assert!(c.effect.value > 0.0);
        assert_eq!(c.columns(), vec![3]);
    }

    #[test]
    fn correlation_shift_component() {
        let n = 200;
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys_up: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let ys_noise: Vec<f64> = (0..n).map(|i| ((i * 7919) % 100) as f64).collect();
        let inside = PairMoments::from_slices(&xs, &ys_up).unwrap();
        let outside = PairMoments::from_slices(&xs, &ys_noise).unwrap();
        let c = ZigComponent::correlation_shift(0, 1, &inside, &outside).unwrap();
        assert_eq!(c.columns(), vec![0, 1]);
        assert!(
            c.effect.value > 1.0,
            "perfect vs noise correlation is a big z-shift"
        );
        assert!(c.effect.p_value < 0.001);
    }

    #[test]
    fn frequency_shift_component() {
        let inside = FrequencyTable::from_codes([Some(0); 50].into_iter().collect::<Vec<_>>(), 2);
        let mut both = vec![Some(0u32); 50];
        both.extend(vec![Some(1u32); 50]);
        let outside = FrequencyTable::from_codes(both, 2);
        let c = ZigComponent::frequency_shift(4, &inside, &outside).unwrap();
        assert_eq!(c.kind, ComponentKind::FrequencyShift);
        assert!(c.effect.value > 0.0);
    }

    #[test]
    fn shape_shift_component() {
        let inside: Vec<f64> = (0..200).map(|i| (i % 40) as f64).collect();
        let shifted: Vec<f64> = (0..400).map(|i| (i % 40) as f64 + 30.0).collect();
        let c = ZigComponent::shape_shift(2, &inside, &shifted).unwrap();
        assert_eq!(c.kind, ComponentKind::ShapeShift);
        assert!(c.effect.value > 0.5, "disjoint-ish supports: big KS D");
        assert!(c.effect.p_value < 1e-6);
        // Identical samples: D = 0, insignificant.
        let same = ZigComponent::shape_shift(2, &inside, &inside).unwrap();
        assert!(same.effect.value < 1e-12);
        assert!(same.effect.p_value > 0.99);
    }

    #[test]
    fn within_checks_column_coverage() {
        let c = ZigComponent {
            kind: ComponentKind::CorrelationShift,
            column_a: 1,
            column_b: Some(4),
            effect: EffectSize {
                value: 1.0,
                se: 0.1,
                p_value: 0.01,
            },
            normalized: 0.0,
        };
        assert!(c.within(&[0, 1, 4]));
        assert!(!c.within(&[1, 2]));
    }

    #[test]
    fn normalization_per_family() {
        let mk = |kind, value| ZigComponent {
            kind,
            column_a: 0,
            column_b: None,
            effect: EffectSize {
                value,
                se: 1.0,
                p_value: 0.5,
            },
            normalized: 0.0,
        };
        let mut cs = vec![
            mk(ComponentKind::MeanShift, 2.0),
            mk(ComponentKind::MeanShift, -4.0),
            mk(ComponentKind::DispersionShift, 0.5),
        ];
        normalize_components(&mut cs);
        assert!((cs[0].normalized - 0.5).abs() < 1e-12);
        assert!((cs[1].normalized - 1.0).abs() < 1e-12);
        // Own-family max: the dispersion component normalizes to 1.
        assert!((cs[2].normalized - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_handles_zero_and_nonfinite() {
        let mk = |value| ZigComponent {
            kind: ComponentKind::MeanShift,
            column_a: 0,
            column_b: None,
            effect: EffectSize {
                value,
                se: 1.0,
                p_value: 0.5,
            },
            normalized: 9.0,
        };
        let mut cs = vec![mk(0.0), mk(0.0)];
        normalize_components(&mut cs);
        assert_eq!(cs[0].normalized, 0.0);
        let mut cs = vec![mk(f64::INFINITY), mk(1.0)];
        normalize_components(&mut cs);
        assert_eq!(cs[0].normalized, 0.0);
        assert_eq!(cs[1].normalized, 1.0);
    }
}
