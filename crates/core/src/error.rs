//! Error type for the Ziggy engine.

use std::fmt;

/// Errors raised by the characterization pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum ZiggyError {
    /// The selection is unusable (empty, complete, or below the minimum
    /// row counts required by the effect-size asymptotics).
    DegenerateSelection {
        /// Rows selected by the query.
        inside: usize,
        /// Rows outside the selection.
        outside: usize,
        /// Rows each side needs.
        needed: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig(String),
    /// The table has no characterizable columns.
    NoUsableColumns,
    /// Error from the store layer (parsing, evaluation, typing).
    Store(ziggy_store::StoreError),
    /// Error from the statistics layer.
    Stats(ziggy_stats::StatsError),
    /// Error from the clustering layer.
    Cluster(ziggy_cluster::ClusterError),
}

impl fmt::Display for ZiggyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZiggyError::DegenerateSelection {
                inside,
                outside,
                needed,
            } => write!(
                f,
                "selection is degenerate: {inside} rows inside, {outside} outside \
                 (need at least {needed} on each side)"
            ),
            ZiggyError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            ZiggyError::NoUsableColumns => {
                write!(f, "the table has no columns Ziggy can characterize")
            }
            ZiggyError::Store(e) => write!(f, "store error: {e}"),
            ZiggyError::Stats(e) => write!(f, "statistics error: {e}"),
            ZiggyError::Cluster(e) => write!(f, "clustering error: {e}"),
        }
    }
}

impl std::error::Error for ZiggyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ZiggyError::Store(e) => Some(e),
            ZiggyError::Stats(e) => Some(e),
            ZiggyError::Cluster(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ziggy_store::StoreError> for ZiggyError {
    fn from(e: ziggy_store::StoreError) -> Self {
        ZiggyError::Store(e)
    }
}

impl From<ziggy_stats::StatsError> for ZiggyError {
    fn from(e: ziggy_stats::StatsError) -> Self {
        ZiggyError::Stats(e)
    }
}

impl From<ziggy_cluster::ClusterError> for ZiggyError {
    fn from(e: ziggy_cluster::ClusterError) -> Self {
        ZiggyError::Cluster(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ZiggyError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        let e = ZiggyError::DegenerateSelection {
            inside: 1,
            outside: 0,
            needed: 4,
        };
        assert!(e.to_string().contains("degenerate"));
        let wrapped: ZiggyError = ziggy_stats::StatsError::Degenerate("x").into();
        assert!(std::error::Error::source(&wrapped).is_some());
        let wrapped: ZiggyError = ziggy_store::StoreError::EmptyTable.into();
        assert!(wrapped.to_string().contains("store error"));
        let wrapped: ZiggyError =
            ziggy_cluster::ClusterError::TooFewItems { needed: 2, got: 1 }.into();
        assert!(wrapped.to_string().contains("clustering"));
    }
}
