//! Exploration sessions: trial-and-error support on top of the engine.
//!
//! The paper frames exploration as a loop — "they write a query, inspect
//! the results and refine their specifications accordingly" (§1) — and
//! the conclusion promises Ziggy "as a library, to be included into
//! external exploration systems". [`ExplorationSession`] is that
//! integration surface: it keeps the query history, reuses the engine's
//! whole-table caches across steps, and diffs successive reports so the
//! explorer sees what *changed* when they refined the query.

use serde::{Deserialize, Serialize};

use crate::error::Result;
use crate::pipeline::Ziggy;
use crate::report::{CharacterizationReport, View};

/// The difference between two successive characterizations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportDiff {
    /// Views present now but not in the previous step.
    pub appeared: Vec<View>,
    /// Views from the previous step that vanished.
    pub vanished: Vec<View>,
    /// Views present in both, with `(previous_score, current_score)`.
    pub persisted: Vec<(View, f64, f64)>,
}

impl ReportDiff {
    /// True when the two reports expose identical view sets.
    pub fn is_stable(&self) -> bool {
        self.appeared.is_empty() && self.vanished.is_empty()
    }
}

impl std::fmt::Display for ReportDiff {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_stable() {
            write!(f, "view set unchanged ({} views)", self.persisted.len())?;
            return Ok(());
        }
        for v in &self.appeared {
            writeln!(f, "+ {v}")?;
        }
        for v in &self.vanished {
            writeln!(f, "- {v}")?;
        }
        for (v, old, new) in &self.persisted {
            writeln!(f, "= {v}  score {old:.3} -> {new:.3}")?;
        }
        Ok(())
    }
}

/// Computes the view-set difference between two reports (views matched by
/// their column sets).
pub fn diff_reports(
    previous: &CharacterizationReport,
    current: &CharacterizationReport,
) -> ReportDiff {
    let mut appeared = Vec::new();
    let mut persisted = Vec::new();
    for cv in &current.views {
        match previous
            .views
            .iter()
            .find(|pv| pv.view.columns == cv.view.columns)
        {
            Some(pv) => persisted.push((cv.view.clone(), pv.score, cv.score)),
            None => appeared.push(cv.view.clone()),
        }
    }
    let vanished = previous
        .views
        .iter()
        .filter(|pv| {
            !current
                .views
                .iter()
                .any(|cv| cv.view.columns == pv.view.columns)
        })
        .map(|pv| pv.view.clone())
        .collect();
    ReportDiff {
        appeared,
        vanished,
        persisted,
    }
}

/// A stateful exploration session over one table.
///
/// Owns its engine (no borrowed lifetime), so sessions can be stored in
/// registries and moved across threads — the integration surface the
/// `ziggy-serve` session endpoints build on.
pub struct ExplorationSession {
    engine: Ziggy,
    history: Vec<CharacterizationReport>,
}

impl ExplorationSession {
    /// Wraps an engine into a session.
    pub fn new(engine: Ziggy) -> Self {
        Self {
            engine,
            history: Vec::new(),
        }
    }

    /// The underlying engine (for dendrograms, cache inspection, …).
    pub fn engine(&self) -> &Ziggy {
        &self.engine
    }

    /// Characterizes the next query; returns the report plus the diff
    /// against the previous step (None on the first step). The report is
    /// recorded in the history.
    pub fn explore(
        &mut self,
        query: &str,
    ) -> Result<(&CharacterizationReport, Option<ReportDiff>)> {
        let report = self.engine.characterize(query)?;
        let diff = self.history.last().map(|prev| diff_reports(prev, &report));
        self.history.push(report);
        Ok((self.history.last().expect("just pushed"), diff))
    }

    /// All reports so far, oldest first.
    pub fn history(&self) -> &[CharacterizationReport] {
        &self.history
    }

    /// Number of exploration steps taken.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True before the first query.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZiggyConfig;
    use ziggy_store::{Table, TableBuilder};

    fn table() -> Table {
        let n = 400usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "high_end",
            (0..n)
                .map(|i| if i >= 300 { 40.0 } else { 0.0 } + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_numeric(
            "low_end",
            (0..n)
                .map(|i| if i < 100 { 40.0 } else { 0.0 } + ((i * 29) % 7) as f64)
                .collect(),
        );
        b.add_numeric("noise", (0..n).map(|i| ((i * 7919) % 50) as f64).collect());
        b.build().unwrap()
    }

    #[test]
    fn first_step_has_no_diff() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        assert!(s.is_empty());
        let (report, diff) = s.explore("key >= 300").unwrap();
        assert!(!report.views.is_empty());
        assert!(diff.is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn refinement_diff_reports_changes() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        s.explore("key >= 300").unwrap();
        // A very different selection: the low end.
        let (_, diff) = s.explore("key < 100").unwrap();
        let _diff = diff.expect("second step has a diff");
        // The substantive change between the steps: high_end flips from
        // "particularly high" (selection = top keys) to "particularly low"
        // (selection = bottom keys). The session history captures it.
        let explanation_of = |report: &crate::report::CharacterizationReport| -> String {
            report
                .views
                .iter()
                .find(|v| v.view.names.contains(&"high_end".to_string()))
                .map(|v| v.explanation.sentences.join(" "))
                .unwrap_or_default()
        };
        let before = explanation_of(&s.history()[0]);
        let after = explanation_of(&s.history()[1]);
        assert!(before.contains("particularly high values"), "{before}");
        assert!(after.contains("particularly low values"), "{after}");
    }

    #[test]
    fn identical_queries_are_stable() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        s.explore("key >= 300").unwrap();
        let (_, diff) = s.explore("key >= 300").unwrap();
        let diff = diff.unwrap();
        assert!(diff.is_stable(), "{diff}");
        for (_, old, new) in &diff.persisted {
            assert!((old - new).abs() < 1e-12);
        }
    }

    #[test]
    fn history_accumulates() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        s.explore("key >= 300").unwrap();
        s.explore("key < 100").unwrap();
        s.explore("key BETWEEN 100 AND 299").unwrap();
        assert_eq!(s.history().len(), 3);
        assert_eq!(s.history()[0].query, "key >= 300");
        assert_eq!(s.history()[2].query, "key BETWEEN 100 AND 299");
    }

    #[test]
    fn errors_do_not_pollute_history() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        s.explore("key >= 300").unwrap();
        assert!(s.explore("nonsense >>>").is_err());
        assert_eq!(s.len(), 1, "failed step must not be recorded");
    }

    #[test]
    fn diff_display_format() {
        let t = table();
        let mut s = ExplorationSession::new(Ziggy::new(&t, ZiggyConfig::default()));
        s.explore("key >= 300").unwrap();
        let (_, diff) = s.explore("key < 100").unwrap();
        let diff = diff.unwrap();
        let text = diff.to_string();
        if diff.is_stable() {
            assert!(text.contains("unchanged"), "diff text: {text}");
        } else {
            assert!(
                text.contains('+') || text.contains('-') || text.contains('='),
                "diff text: {text}"
            );
        }
    }
}
