//! Engine configuration.

use serde::{Deserialize, Serialize};
use ziggy_stats::Aggregation;

use crate::error::{Result, ZiggyError};
use crate::weights::Weights;

/// The dependence measure `S` used for the tightness constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DependenceKind {
    /// Absolute Pearson correlation (fast, moment-cache friendly).
    Pearson,
    /// Absolute Spearman rank correlation (robust to monotone warps).
    Spearman,
    /// Normalized mutual information over an equi-width grid (captures
    /// non-monotone dependence; slower).
    MutualInformation,
}

/// Configuration of the Ziggy engine (paper parameters are called out).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZiggyConfig {
    /// `D`: maximum number of columns per view (paper: "a set of at most
    /// D columns", kept small so views stay plottable). Default 2.
    pub max_view_size: usize,
    /// `MIN_tight`: minimum pairwise dependence within a view
    /// (Equation 3). Default 0.25.
    pub min_tightness: f64,
    /// Maximum number of views to return (ranked by dissimilarity).
    /// Default 5.
    pub max_views: usize,
    /// User preference weights for the Zig-Dissimilarity.
    pub weights: Weights,
    /// Aggregation scheme for per-view robustness ("it retains the lowest
    /// value, or … the Bonferroni correction"). Default Bonferroni-min.
    pub aggregation: Aggregation,
    /// Significance level used by the explanation generator and the
    /// optional robustness filter. Default 0.05.
    pub alpha: f64,
    /// Drop views whose aggregated robustness p-value exceeds `alpha`.
    /// Default false (rank only, as in the demo).
    pub filter_insignificant: bool,
    /// Dependence measure for the tightness graph.
    pub dependence: DependenceKind,
    /// Grid size per axis for [`DependenceKind::MutualInformation`].
    pub mi_bins: usize,
    /// Minimum rows required on each side of the split. Effect-size
    /// asymptotics need a handful of observations; default 8.
    pub min_side_rows: usize,
    /// Parallelize pairwise component computation across threads.
    pub parallel: bool,
    /// Include two-dimensional (correlation) components. Disabling them
    /// reproduces the cheap univariate-only ablation. Default true.
    pub pairwise_components: bool,
    /// Compute the extended distribution-shape (KS) component. Off by
    /// default: the paper warns that additional components "only add
    /// marginal accuracy gains in practice, at the cost of significant
    /// processing times" (KS needs a sort per column per query).
    #[serde(default)]
    pub extended_components: bool,
    /// Capacity of the per-query `PreparedStats` cache (distinct
    /// selection masks memoized per engine, LRU-evicted). Repeated or
    /// shared predicates skip the preparation stage entirely; `0`
    /// disables the cache. Default 64 — also for deserialized configs
    /// that predate the field (a bare `#[serde(default)]` would turn
    /// the cache *off* for them).
    #[serde(default = "default_prepared_cache_capacity")]
    pub prepared_cache_capacity: usize,
    /// Capacity of the finished-report cache (distinct `(selection
    /// mask, configuration, query label)` triples memoized per engine,
    /// LRU-evicted). A repeated query skips the *entire* pipeline —
    /// view search, post-processing, and report serialization — and is
    /// served memoized bytes; `0` disables the cache. Default 128 (a
    /// finished report is far smaller than a `PreparedStats`, so the
    /// report level can afford to remember more history).
    #[serde(default = "default_report_cache_capacity")]
    pub report_cache_capacity: usize,
}

fn default_prepared_cache_capacity() -> usize {
    64
}

fn default_report_cache_capacity() -> usize {
    128
}

impl Default for ZiggyConfig {
    fn default() -> Self {
        Self {
            max_view_size: 2,
            min_tightness: 0.25,
            max_views: 5,
            weights: Weights::default(),
            aggregation: Aggregation::BonferroniMin,
            alpha: 0.05,
            filter_insignificant: false,
            dependence: DependenceKind::Pearson,
            mi_bins: 8,
            min_side_rows: 8,
            parallel: true,
            pairwise_components: true,
            extended_components: false,
            prepared_cache_capacity: 64,
            report_cache_capacity: 128,
        }
    }
}

impl ZiggyConfig {
    /// The canonical JSON rendering of the whole configuration. Equal
    /// configurations render identically, distinct ones differently (the
    /// rendering is injective: serde emits every field, in declaration
    /// order); the report cache keys on this string so artifacts built
    /// under one configuration can never be served under another (the
    /// per-request override path forks engines that share one report
    /// cache — see `Ziggy::with_config`). A string key, not a hash:
    /// clients choose override configurations freely, so a colliding
    /// fingerprint would let one configuration poison another's entries.
    /// Over-keying is deliberate: fields that cannot change a report
    /// (cache capacities) still participate, trading a few spurious
    /// misses for zero risk of a stale hit when fields are added later.
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(self).expect("configs always render")
    }

    /// A stable 64-bit FNV-1a fingerprint of [`Self::canonical_json`].
    /// Equal configurations always fingerprint equal; the converse holds
    /// only probabilistically, so use it for telemetry and cheap
    /// comparisons, never as a cache key on its own.
    pub fn fingerprint(&self) -> u64 {
        ziggy_store::fnv1a_64(self.canonical_json().as_bytes())
    }

    /// Validates all parameters.
    pub fn validate(&self) -> Result<()> {
        if self.max_view_size == 0 {
            return Err(ZiggyError::InvalidConfig(
                "max_view_size must be >= 1".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.min_tightness) {
            return Err(ZiggyError::InvalidConfig(format!(
                "min_tightness = {} outside [0, 1]",
                self.min_tightness
            )));
        }
        if self.max_views == 0 {
            return Err(ZiggyError::InvalidConfig("max_views must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.alpha) || self.alpha == 0.0 {
            return Err(ZiggyError::InvalidConfig(format!(
                "alpha = {} outside (0, 1]",
                self.alpha
            )));
        }
        if self.mi_bins < 2 {
            return Err(ZiggyError::InvalidConfig("mi_bins must be >= 2".into()));
        }
        if self.min_side_rows < 4 {
            return Err(ZiggyError::InvalidConfig(
                "min_side_rows must be >= 4 (Fisher-z needs n - 3 > 0)".into(),
            ));
        }
        self.weights.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        ZiggyConfig::default().validate().unwrap();
    }

    #[test]
    fn rejects_out_of_range() {
        let base = ZiggyConfig::default();
        assert!(ZiggyConfig {
            max_view_size: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            min_tightness: 1.5,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            min_tightness: -0.1,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            max_views: 0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            alpha: 0.0,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            mi_bins: 1,
            ..base.clone()
        }
        .validate()
        .is_err());
        assert!(ZiggyConfig {
            min_side_rows: 2,
            ..base
        }
        .validate()
        .is_err());
    }

    #[test]
    fn missing_prepared_cache_capacity_defaults_to_enabled() {
        // Configs serialized before the field existed must not silently
        // disable the cache (0 = off; the default is 64).
        let mut json = serde_json::to_value(&ZiggyConfig::default()).unwrap();
        if let serde_json::Value::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "prepared_cache_capacity");
        }
        let back: ZiggyConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert_eq!(back.prepared_cache_capacity, 64);
    }

    #[test]
    fn missing_report_cache_capacity_defaults_to_enabled() {
        let mut json = serde_json::to_value(&ZiggyConfig::default()).unwrap();
        if let serde_json::Value::Object(pairs) = &mut json {
            pairs.retain(|(k, _)| k != "report_cache_capacity");
        }
        let back: ZiggyConfig =
            serde_json::from_str(&serde_json::to_string(&json).unwrap()).unwrap();
        assert_eq!(back.report_cache_capacity, 128);
    }

    #[test]
    fn fingerprint_separates_configs() {
        let base = ZiggyConfig::default();
        assert_eq!(base.fingerprint(), ZiggyConfig::default().fingerprint());
        let overridden = ZiggyConfig {
            max_views: 1,
            ..base.clone()
        };
        assert_ne!(
            base.fingerprint(),
            overridden.fingerprint(),
            "a per-request override must key report-cache entries apart"
        );
    }

    #[test]
    fn serde_round_trip() {
        let c = ZiggyConfig {
            max_views: 7,
            ..ZiggyConfig::default()
        };
        let json = serde_json::to_string(&c).unwrap();
        let back: ZiggyConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
