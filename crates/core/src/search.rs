//! View search: score the candidates, rank them, enforce disjointness.
//!
//! Solves the paper's optimization (Equation 5) greedily: candidates from
//! the tightness-constrained partition are ranked by Zig-Dissimilarity,
//! and views are accepted top-down as long as they share no column with a
//! previously accepted view (Equation 4's `overlap = 0`).

use serde::{Deserialize, Serialize};

use crate::config::ZiggyConfig;
use crate::dissimilarity::view_score;
use crate::prepare::PreparedStats;

/// A candidate view with its Zig-Dissimilarity score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredView {
    /// Table column indices, sorted.
    pub columns: Vec<usize>,
    /// Weighted, normalized Zig-Dissimilarity.
    pub score: f64,
}

/// Scores and ranks candidates (descending score, lexicographic columns
/// as the deterministic tie-break). Borrows the candidate list — it is
/// the engine's memoized plan, shared across every query on the engine.
pub fn rank_candidates(
    candidates: &[Vec<usize>],
    prepared: &PreparedStats,
    config: &ZiggyConfig,
) -> Vec<ScoredView> {
    let mut scored: Vec<ScoredView> = candidates
        .iter()
        .map(|candidate| {
            let mut columns = candidate.clone();
            columns.sort_unstable();
            let score = view_score(&columns, prepared, &config.weights);
            ScoredView { columns, score }
        })
        .collect();
    scored.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then_with(|| a.columns.cmp(&b.columns))
    });
    scored
}

/// Greedy disjoint selection: walks the ranking and keeps a view when it
/// shares no column with the views kept so far, until `max_views`.
pub fn select_disjoint(ranked: Vec<ScoredView>, max_views: usize) -> Vec<ScoredView> {
    let mut used: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    for view in ranked {
        if out.len() >= max_views {
            break;
        }
        if view.columns.iter().any(|c| used.contains(c)) {
            continue;
        }
        used.extend(view.columns.iter().copied());
        out.push(view);
    }
    out
}

/// Full view-search stage: rank then select.
pub fn search(
    candidates: &[Vec<usize>],
    prepared: &PreparedStats,
    config: &ZiggyConfig,
) -> Vec<ScoredView> {
    select_disjoint(
        rank_candidates(candidates, prepared, config),
        config.max_views,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZiggyConfig;
    use crate::graph::usable_columns;
    use crate::prepare::prepare;
    use ziggy_store::{eval::select, StatsCache, Table, TableBuilder};

    fn sample() -> Table {
        let n = 300usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "hot",
            (0..n)
                .map(|i| if i >= 200 { 30.0 } else { 0.0 } + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_numeric(
            "warm",
            (0..n)
                .map(|i| if i >= 200 { 3.0 } else { 0.0 } + ((i * 29) % 11) as f64)
                .collect(),
        );
        b.add_numeric("cold", (0..n).map(|i| ((i * 7919) % 50) as f64).collect());
        b.build().unwrap()
    }

    fn prepared_for(t: &Table) -> PreparedStats {
        let cache = StatsCache::new(t);
        let mask = select(t, "key >= 200").unwrap();
        prepare(&cache, &mask, &usable_columns(t), &ZiggyConfig::default()).unwrap()
    }

    #[test]
    fn ranking_puts_hot_first() {
        let t = sample();
        let p = prepared_for(&t);
        let hot = t.index_of("hot").unwrap();
        let warm = t.index_of("warm").unwrap();
        let cold = t.index_of("cold").unwrap();
        let ranked = rank_candidates(
            &[vec![cold], vec![hot], vec![warm]],
            &p,
            &ZiggyConfig::default(),
        );
        assert_eq!(ranked[0].columns, vec![hot]);
        assert!(ranked[0].score > ranked[2].score);
    }

    #[test]
    fn tie_break_is_deterministic() {
        let t = sample();
        let p = prepared_for(&t);
        // Two candidates with identical (zero) scores under zeroed weights.
        let config = ZiggyConfig {
            weights: crate::weights::Weights {
                mean: 0.0,
                dispersion: 0.0,
                correlation: 0.0,
                frequency: 1.0,
                shape: 0.0,
            },
            ..Default::default()
        };
        let ranked = rank_candidates(&[vec![3], vec![1]], &p, &config);
        assert_eq!(ranked[0].columns, vec![1], "lexicographic tie-break");
    }

    #[test]
    fn disjoint_selection_skips_overlaps() {
        let views = vec![
            ScoredView {
                columns: vec![1, 2],
                score: 10.0,
            },
            ScoredView {
                columns: vec![2, 3],
                score: 9.0,
            }, // overlaps.
            ScoredView {
                columns: vec![4],
                score: 8.0,
            },
        ];
        let picked = select_disjoint(views, 5);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].columns, vec![1, 2]);
        assert_eq!(picked[1].columns, vec![4]);
    }

    #[test]
    fn max_views_cap() {
        let views: Vec<ScoredView> = (0..10)
            .map(|i| ScoredView {
                columns: vec![i],
                score: (10 - i) as f64,
            })
            .collect();
        assert_eq!(select_disjoint(views, 3).len(), 3);
    }

    #[test]
    fn selected_views_pairwise_disjoint_property() {
        let t = sample();
        let p = prepared_for(&t);
        let candidates: Vec<Vec<usize>> =
            vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0], vec![3]];
        let picked = search(&candidates, &p, &ZiggyConfig::default());
        for (i, a) in picked.iter().enumerate() {
            for b in &picked[i + 1..] {
                assert!(
                    a.columns.iter().all(|c| !b.columns.contains(c)),
                    "views {a:?} and {b:?} overlap"
                );
            }
        }
    }
}
