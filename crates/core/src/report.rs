//! Result types: views, per-view reports, and the full characterization
//! report (all serde-serializable so harnesses can persist them).

use serde::{Deserialize, Serialize};

use crate::component::ZigComponent;
use crate::explain::Explanation;

/// A characteristic view: a small set of columns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct View {
    /// Table column indices, sorted ascending.
    pub columns: Vec<usize>,
    /// The matching column names.
    pub names: Vec<String>,
}

impl View {
    /// Number of columns in the view.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the view is empty (never produced by the engine).
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

impl std::fmt::Display for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

/// Everything Ziggy reports about one view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewReport {
    /// The view itself.
    pub view: View,
    /// Zig-Dissimilarity score (weighted, normalized; higher = more
    /// characteristic).
    pub score: f64,
    /// Aggregated robustness p-value (lower = harder to explain away by
    /// chance).
    pub robustness_p: f64,
    /// Minimum pairwise dependence among the view's columns (Equation 2).
    pub tightness: f64,
    /// The view's Zig-Components (owned snapshot).
    pub components: Vec<ZigComponent>,
    /// Generated explanation.
    pub explanation: Explanation,
}

/// Wall-clock cost of each pipeline stage, in microseconds (Figure 4's
/// three boxes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StageTimings {
    /// Query execution + Zig-Component computation.
    pub preparation_us: u64,
    /// Candidate generation + scoring + ranking.
    pub view_search_us: u64,
    /// Robustness testing + explanation generation.
    pub post_processing_us: u64,
}

impl StageTimings {
    /// Total pipeline time in microseconds.
    pub fn total_us(&self) -> u64 {
        self.preparation_us + self.view_search_us + self.post_processing_us
    }

    /// Fraction of total time spent in preparation (NaN when total is 0).
    pub fn preparation_fraction(&self) -> f64 {
        self.preparation_us as f64 / self.total_us() as f64
    }
}

/// The full result of characterizing one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationReport {
    /// The predicate text that defined the selection.
    pub query: String,
    /// Rows matched by the query.
    pub n_inside: usize,
    /// Rows outside the selection.
    pub n_outside: usize,
    /// Views ranked by decreasing dissimilarity.
    pub views: Vec<ViewReport>,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl CharacterizationReport {
    /// Selectivity of the query (fraction of rows selected).
    pub fn selectivity(&self) -> f64 {
        let total = self.n_inside + self.n_outside;
        if total == 0 {
            f64::NAN
        } else {
            self.n_inside as f64 / total as f64
        }
    }

    /// The top view, if any.
    pub fn best_view(&self) -> Option<&ViewReport> {
        self.views.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn view_display() {
        let v = View {
            columns: vec![0, 2],
            names: vec!["a".into(), "b".into()],
        };
        assert_eq!(v.to_string(), "{a, b}");
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }

    #[test]
    fn timings_arithmetic() {
        let t = StageTimings {
            preparation_us: 700,
            view_search_us: 200,
            post_processing_us: 100,
        };
        assert_eq!(t.total_us(), 1000);
        assert!((t.preparation_fraction() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn report_selectivity() {
        let r = CharacterizationReport {
            query: "x > 1".into(),
            n_inside: 25,
            n_outside: 75,
            views: vec![],
            timings: StageTimings::default(),
        };
        assert!((r.selectivity() - 0.25).abs() < 1e-12);
        assert!(r.best_view().is_none());
    }

    #[test]
    fn serde_round_trip() {
        let r = CharacterizationReport {
            query: "x > 1".into(),
            n_inside: 1,
            n_outside: 2,
            views: vec![ViewReport {
                view: View {
                    columns: vec![0],
                    names: vec!["x".into()],
                },
                score: 1.5,
                robustness_p: 0.01,
                tightness: 1.0,
                components: vec![],
                explanation: crate::explain::Explanation {
                    sentences: vec!["s".into()],
                },
            }],
            timings: StageTimings::default(),
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: CharacterizationReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
