//! Post-processing: statistical robustness of the views.
//!
//! "For each view, it tests the significance of the Zig-Components
//! separately, using asymptotic bounds from the literature. Then it
//! aggregates the confidence scores associated with each component.
//! Depending on the users' preferences, it retains the lowest value, or
//! it uses more advanced aggregation schemes such as the Bonferroni
//! correction." (§3.)
//!
//! Per-component p-values come with the effect sizes (asymptotic normal /
//! χ² bounds, crate `ziggy-stats`); this module aggregates them.

use ziggy_stats::{aggregate_p_values, Aggregation};

use crate::component::ZigComponent;

/// Aggregates the p-values of a view's components into one robustness
/// p-value. Components without a usable p-value (degenerate SEs) are
/// skipped; a view with no testable component gets 1.0 (no evidence).
pub fn view_robustness(components: &[&ZigComponent], scheme: Aggregation) -> f64 {
    let ps: Vec<f64> = components
        .iter()
        .map(|c| c.effect.p_value)
        .filter(|p| p.is_finite() && (0.0..=1.0).contains(p))
        .collect();
    if ps.is_empty() {
        return 1.0;
    }
    aggregate_p_values(&ps, scheme).unwrap_or(1.0)
}

/// The components of a view that individually clear the significance
/// threshold, ordered by ascending p-value (most convincing first).
pub fn significant_components<'a>(
    components: &[&'a ZigComponent],
    alpha: f64,
) -> Vec<&'a ZigComponent> {
    let mut sig: Vec<&ZigComponent> = components
        .iter()
        .copied()
        .filter(|c| c.effect.p_value.is_finite() && c.effect.p_value < alpha)
        .collect();
    sig.sort_by(|a, b| {
        a.effect
            .p_value
            .partial_cmp(&b.effect.p_value)
            .expect("filtered p-values are finite")
    });
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::ComponentKind;
    use ziggy_stats::EffectSize;

    fn comp(p: f64) -> ZigComponent {
        ZigComponent {
            kind: ComponentKind::MeanShift,
            column_a: 0,
            column_b: None,
            effect: EffectSize {
                value: 1.0,
                se: 0.5,
                p_value: p,
            },
            normalized: 1.0,
        }
    }

    #[test]
    fn min_p_vs_bonferroni() {
        let cs = [comp(0.01), comp(0.5), comp(0.9)];
        let refs: Vec<&ZigComponent> = cs.iter().collect();
        let min = view_robustness(&refs, Aggregation::MinP);
        let bonf = view_robustness(&refs, Aggregation::BonferroniMin);
        assert!((min - 0.01).abs() < 1e-12);
        assert!((bonf - 0.03).abs() < 1e-12);
        assert!(bonf >= min, "Bonferroni is more conservative");
    }

    #[test]
    fn skips_nan_p_values() {
        let mut bad = comp(0.02);
        bad.effect.p_value = f64::NAN;
        let cs = [bad, comp(0.04)];
        let refs: Vec<&ZigComponent> = cs.iter().collect();
        assert!((view_robustness(&refs, Aggregation::MinP) - 0.04).abs() < 1e-12);
    }

    #[test]
    fn empty_view_gets_one() {
        assert_eq!(view_robustness(&[], Aggregation::MinP), 1.0);
        let mut bad = comp(0.0);
        bad.effect.p_value = f64::NAN;
        let cs = [bad];
        let refs: Vec<&ZigComponent> = cs.iter().collect();
        assert_eq!(view_robustness(&refs, Aggregation::Fisher), 1.0);
    }

    #[test]
    fn significant_sorted_ascending() {
        let cs = [comp(0.04), comp(0.001), comp(0.2)];
        let refs: Vec<&ZigComponent> = cs.iter().collect();
        let sig = significant_components(&refs, 0.05);
        assert_eq!(sig.len(), 2);
        assert!(sig[0].effect.p_value <= sig[1].effect.p_value);
    }

    #[test]
    fn alpha_boundary_is_strict() {
        let cs = [comp(0.05)];
        let refs: Vec<&ZigComponent> = cs.iter().collect();
        assert!(significant_components(&refs, 0.05).is_empty());
    }
}
