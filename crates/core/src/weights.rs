//! User preference weights for the Zig-Dissimilarity.
//!
//! "To aggregate the Zig-Components, we normalize them and compute a
//! weighted sum. … The weights in the final sum are defined by the user.
//! Thanks to this mechanism, our explorers can express their preference
//! for one type of difference over the others." (§2.2)

use serde::{Deserialize, Serialize};

use crate::component::ComponentKind;
use crate::error::{Result, ZiggyError};

/// Per-component-family weights (nonnegative, not all zero).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Weights {
    /// Weight of the difference-between-means component.
    pub mean: f64,
    /// Weight of the difference-between-standard-deviations component.
    pub dispersion: f64,
    /// Weight of the difference-between-correlations component.
    pub correlation: f64,
    /// Weight of the categorical frequency-divergence component.
    pub frequency: f64,
    /// Weight of the extended distribution-shape (Kolmogorov–Smirnov)
    /// component (only computed when
    /// [`crate::ZiggyConfig::extended_components`] is on).
    #[serde(default = "default_shape_weight")]
    pub shape: f64,
}

fn default_shape_weight() -> f64 {
    1.0
}

impl Default for Weights {
    fn default() -> Self {
        Self {
            mean: 1.0,
            dispersion: 1.0,
            correlation: 1.0,
            frequency: 1.0,
            shape: 1.0,
        }
    }
}

impl Weights {
    /// Validates that every weight is finite and nonnegative and at least
    /// one is positive.
    pub fn validate(&self) -> Result<()> {
        let all = [
            self.mean,
            self.dispersion,
            self.correlation,
            self.frequency,
            self.shape,
        ];
        for w in all {
            if !w.is_finite() || w < 0.0 {
                return Err(ZiggyError::InvalidConfig(format!(
                    "weights must be finite and nonnegative, got {w}"
                )));
            }
        }
        if all.iter().all(|&w| w == 0.0) {
            return Err(ZiggyError::InvalidConfig("all weights are zero".into()));
        }
        Ok(())
    }

    /// Weight applied to a component of the given kind.
    pub fn for_kind(&self, kind: ComponentKind) -> f64 {
        match kind {
            ComponentKind::MeanShift => self.mean,
            ComponentKind::DispersionShift => self.dispersion,
            ComponentKind::CorrelationShift => self.correlation,
            ComponentKind::FrequencyShift => self.frequency,
            ComponentKind::ShapeShift => self.shape,
        }
    }

    /// A weight profile that only cares about location shifts.
    pub fn means_only() -> Self {
        Self {
            mean: 1.0,
            dispersion: 0.0,
            correlation: 0.0,
            frequency: 0.0,
            shape: 0.0,
        }
    }

    /// A weight profile emphasizing structural (correlation) change.
    pub fn structure_heavy() -> Self {
        Self {
            mean: 0.5,
            dispersion: 0.5,
            correlation: 2.0,
            frequency: 1.0,
            shape: 0.5,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_uniform() {
        let w = Weights::default();
        w.validate().unwrap();
        assert_eq!(w.for_kind(ComponentKind::MeanShift), 1.0);
        assert_eq!(w.for_kind(ComponentKind::FrequencyShift), 1.0);
    }

    #[test]
    fn rejects_negative_nan_and_all_zero() {
        let bad = Weights {
            mean: -1.0,
            ..Weights::default()
        };
        assert!(bad.validate().is_err());
        let bad = Weights {
            dispersion: f64::NAN,
            ..Weights::default()
        };
        assert!(bad.validate().is_err());
        let bad = Weights {
            mean: 0.0,
            dispersion: 0.0,
            correlation: 0.0,
            frequency: 0.0,
            shape: 0.0,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn profiles() {
        Weights::means_only().validate().unwrap();
        Weights::structure_heavy().validate().unwrap();
        assert_eq!(
            Weights::means_only().for_kind(ComponentKind::CorrelationShift),
            0.0
        );
        assert!(Weights::structure_heavy().for_kind(ComponentKind::CorrelationShift) > 1.0);
    }
}
