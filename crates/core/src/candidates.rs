//! Candidate view generation under the tightness constraint.
//!
//! The dependency graph is partitioned with complete-linkage clustering
//! (the paper's choice) cut at height `1 − MIN_tight`: by the
//! complete-linkage property every resulting group has **all** pairwise
//! similarities ≥ `MIN_tight`, i.e. satisfies Equation 3 exactly. Groups
//! larger than the view-size budget `D` are split greedily into tight
//! chunks of at most `D` columns.

use ziggy_cluster::{hierarchical, Linkage};

use crate::config::ZiggyConfig;
use crate::error::Result;
use crate::graph::DependencyGraph;

/// Generates candidate views (as table column-index sets) satisfying the
/// tightness constraint, each of size `1..=max_view_size`.
pub fn generate_candidates(
    graph: &DependencyGraph,
    config: &ZiggyConfig,
) -> Result<Vec<Vec<usize>>> {
    let m = graph.len();
    if m == 0 {
        return Ok(Vec::new());
    }
    if m == 1 {
        return Ok(vec![vec![graph.columns()[0]]]);
    }
    let dist = graph.to_distance_matrix()?;
    let dendrogram = hierarchical(&dist, Linkage::Complete)?;
    let cut_height = 1.0 - config.min_tightness;
    let groups = dendrogram.cut_at_height(cut_height);

    let mut candidates = Vec::new();
    for group in groups {
        for chunk in split_group(&group, graph, config.max_view_size) {
            // Positions → table column indices.
            candidates.push(chunk.iter().map(|&p| graph.columns()[p]).collect());
        }
    }
    // Deterministic order for reproducibility.
    candidates.sort();
    Ok(candidates)
}

/// Splits a (tight) group of node positions into chunks of at most
/// `max_size`, greedily keeping the most similar columns together: each
/// chunk is seeded with the highest-similarity remaining pair and grown
/// with the column maximizing its minimum similarity to the chunk.
fn split_group(group: &[usize], graph: &DependencyGraph, max_size: usize) -> Vec<Vec<usize>> {
    if group.len() <= max_size {
        return vec![group.to_vec()];
    }
    let mut remaining: Vec<usize> = group.to_vec();
    let mut chunks = Vec::new();
    while !remaining.is_empty() {
        if remaining.len() <= max_size {
            let mut last = std::mem::take(&mut remaining);
            last.sort_unstable();
            chunks.push(last);
            break;
        }
        // Seed: most similar remaining pair (or the single leftover).
        let mut chunk: Vec<usize> = if remaining.len() == 1 || max_size == 1 {
            vec![remaining[0]]
        } else {
            let mut best = (0usize, 1usize, f64::NEG_INFINITY);
            for i in 0..remaining.len() {
                for j in (i + 1)..remaining.len() {
                    let s = graph.similarity(remaining[i], remaining[j]);
                    if s > best.2 {
                        best = (i, j, s);
                    }
                }
            }
            vec![remaining[best.0], remaining[best.1]]
        };
        remaining.retain(|p| !chunk.contains(p));
        // Grow: add the column with the best minimum similarity to chunk.
        while chunk.len() < max_size && !remaining.is_empty() {
            let (best_idx, _) = remaining
                .iter()
                .enumerate()
                .map(|(idx, &p)| {
                    let min_sim = chunk
                        .iter()
                        .map(|&q| graph.similarity(p, q))
                        .fold(f64::INFINITY, f64::min);
                    (idx, min_sim)
                })
                .max_by(|a, b| a.1.partial_cmp(&b.1).expect("similarities are finite"))
                .expect("remaining is non-empty");
            chunk.push(remaining.remove(best_idx));
        }
        chunk.sort_unstable();
        chunks.push(chunk);
    }
    chunks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DependenceKind;
    use ziggy_store::{StatsCache, Table, TableBuilder};

    /// Two tight numeric blocks (0,1,2) and (3,4), plus a loner (5).
    fn blocky_table() -> Table {
        let n = 500usize;
        let base_a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.11).sin() * 10.0).collect();
        let base_b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).cos() * 8.0).collect();
        let noise = |i: usize, k: usize| ((i * (7919 + k * 31)) % 13) as f64 * 0.05;
        let mut b = TableBuilder::new();
        b.add_numeric(
            "a0",
            base_a
                .iter()
                .enumerate()
                .map(|(i, v)| v + noise(i, 0))
                .collect(),
        );
        b.add_numeric(
            "a1",
            base_a
                .iter()
                .enumerate()
                .map(|(i, v)| v * 1.5 + noise(i, 1))
                .collect(),
        );
        b.add_numeric(
            "a2",
            base_a
                .iter()
                .enumerate()
                .map(|(i, v)| -v + noise(i, 2))
                .collect(),
        );
        b.add_numeric(
            "b0",
            base_b
                .iter()
                .enumerate()
                .map(|(i, v)| v + noise(i, 3))
                .collect(),
        );
        b.add_numeric(
            "b1",
            base_b
                .iter()
                .enumerate()
                .map(|(i, v)| v * 2.0 + noise(i, 4))
                .collect(),
        );
        b.add_numeric("lone", (0..n).map(|i| ((i * 104729) % 89) as f64).collect());
        b.build().unwrap()
    }

    fn graph_of(t: &Table, tightness_cols: Vec<usize>) -> DependencyGraph {
        let cache = StatsCache::new(t);
        DependencyGraph::build(&cache, tightness_cols, DependenceKind::Pearson, 8).unwrap()
    }

    #[test]
    fn blocks_recovered_as_candidates() {
        let t = blocky_table();
        let g = graph_of(&t, (0..6).collect());
        let config = ZiggyConfig {
            max_view_size: 3,
            min_tightness: 0.5,
            ..Default::default()
        };
        let cands = generate_candidates(&g, &config).unwrap();
        assert!(cands.contains(&vec![0, 1, 2]), "block A missing: {cands:?}");
        assert!(cands.contains(&vec![3, 4]), "block B missing: {cands:?}");
        assert!(cands.contains(&vec![5]), "loner missing: {cands:?}");
    }

    #[test]
    fn candidates_satisfy_tightness() {
        let t = blocky_table();
        let g = graph_of(&t, (0..6).collect());
        let config = ZiggyConfig {
            max_view_size: 4,
            min_tightness: 0.4,
            ..Default::default()
        };
        for cand in generate_candidates(&g, &config).unwrap() {
            let positions: Vec<usize> = cand
                .iter()
                .map(|c| g.columns().iter().position(|x| x == c).unwrap())
                .collect();
            assert!(
                g.tightness(&positions) >= config.min_tightness - 1e-9,
                "candidate {cand:?} violates tightness"
            );
        }
    }

    #[test]
    fn candidates_respect_size_budget_and_partition() {
        let t = blocky_table();
        let g = graph_of(&t, (0..6).collect());
        let config = ZiggyConfig {
            max_view_size: 2,
            min_tightness: 0.5,
            ..Default::default()
        };
        let cands = generate_candidates(&g, &config).unwrap();
        let mut all: Vec<usize> = cands.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(
            all,
            vec![0, 1, 2, 3, 4, 5],
            "candidates must partition the columns"
        );
        assert!(cands.iter().all(|c| c.len() <= 2));
    }

    #[test]
    fn high_tightness_dissolves_blocks() {
        let t = blocky_table();
        let g = graph_of(&t, (0..6).collect());
        let strict = ZiggyConfig {
            min_tightness: 0.999_999,
            ..Default::default()
        };
        let cands = generate_candidates(&g, &strict).unwrap();
        // Nothing correlates that perfectly; every column is a singleton.
        assert!(cands.iter().all(|c| c.len() == 1), "{cands:?}");
        assert_eq!(cands.len(), 6);
    }

    #[test]
    fn zero_tightness_one_big_group_split_by_budget() {
        let t = blocky_table();
        let g = graph_of(&t, (0..6).collect());
        let lax = ZiggyConfig {
            min_tightness: 0.0,
            max_view_size: 4,
            ..Default::default()
        };
        let cands = generate_candidates(&g, &lax).unwrap();
        let total: usize = cands.iter().map(|c| c.len()).sum();
        assert_eq!(total, 6);
        assert!(cands.iter().all(|c| c.len() <= 4));
    }

    #[test]
    fn single_column_graph() {
        let t = blocky_table();
        let g = graph_of(&t, vec![2]);
        let cands = generate_candidates(&g, &ZiggyConfig::default()).unwrap();
        assert_eq!(cands, vec![vec![2]]);
    }
}
