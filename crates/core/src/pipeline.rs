//! The three-stage pipeline (paper Figure 4): preparation → view search →
//! post-processing.

use std::sync::Arc;
use std::time::Instant;

use ziggy_store::{eval, parse_predicate, Bitmask, PreparedCache, StatsCache, Table};

use crate::candidates::generate_candidates;
use crate::config::ZiggyConfig;
use crate::error::{Result, ZiggyError};
use crate::explain;
use crate::graph::{usable_columns, DependencyGraph};
use crate::prepare::{prepare, PreparedStats};
use crate::report::{CharacterizationReport, StageTimings, View, ViewReport};
use crate::robust::view_robustness;
use crate::search::search;

/// The Ziggy engine bound to one table.
///
/// Holds both levels of the reuse strategy: the whole-table statistics
/// cache (successive queries share the expensive moment computations —
/// the paper's between-query optimization) and the per-query
/// [`PreparedCache`] of finished [`PreparedStats`], keyed by the
/// selection mask, so *repeated* queries skip the preparation stage
/// entirely.
///
/// The engine owns its table through an `Arc` and all interior state is
/// lock-protected, so a single `Ziggy` is `Send + Sync`: one engine per
/// table can serve many threads (and, through `ziggy-serve`, many
/// clients) concurrently, extending the paper's between-*query* sharing
/// to between-*client* sharing.
pub struct Ziggy {
    table: Arc<Table>,
    /// Shared so [`Ziggy::with_config`] forks reuse the whole-table
    /// statistics instead of recomputing them per configuration.
    cache: Arc<StatsCache>,
    config: ZiggyConfig,
    /// Dependency graph is query-independent; memoized after first use.
    graph: parking_lot::Mutex<Option<DependencyGraph>>,
    /// Per-query `PreparedStats`, memoized against the selection mask.
    prepared: PreparedCache<Arc<PreparedStats>>,
}

// parking_lot re-export via ziggy-store's dependency is not public; the
// engine takes its own direct dependency (see Cargo.toml).

impl Ziggy {
    /// Creates an engine over a copy of `table` with the given
    /// configuration. Configuration problems surface on the first
    /// characterization. When the table is already behind an `Arc` (the
    /// serving path), use [`Ziggy::shared`] to avoid the deep copy.
    pub fn new(table: &Table, config: ZiggyConfig) -> Self {
        Self::shared(Arc::new(table.clone()), config)
    }

    /// Creates an engine sharing ownership of `table` (no copy).
    pub fn shared(table: Arc<Table>, config: ZiggyConfig) -> Self {
        Self {
            cache: Arc::new(StatsCache::shared(Arc::clone(&table))),
            table,
            // Capacity 0 disables the cache at lookup time; the clamp to 1
            // inside `PreparedCache::new` only keeps the struct well-formed.
            prepared: PreparedCache::new(config.prepared_cache_capacity),
            config,
            graph: parking_lot::Mutex::new(None),
        }
    }

    /// An engine over the same table — and the same whole-table
    /// [`StatsCache`] — but a different configuration. This is the
    /// per-request override path: the expensive table-level moments and
    /// frequencies stay shared, while everything configuration-dependent
    /// (the per-mask [`PreparedCache`], and the dependency graph when the
    /// dependence measure changed) is fresh, so an override can never be
    /// served a cached artifact built under different parameters.
    pub fn with_config(&self, config: ZiggyConfig) -> Ziggy {
        // The dependency graph only depends on the dependence measure and
        // its binning; when those match, seed the fork with the memoized
        // graph so an override request skips that rebuild too.
        let graph = if config.dependence == self.config.dependence
            && config.mi_bins == self.config.mi_bins
        {
            self.graph.lock().clone()
        } else {
            None
        };
        Ziggy {
            table: Arc::clone(&self.table),
            cache: Arc::clone(&self.cache),
            prepared: PreparedCache::new(config.prepared_cache_capacity),
            config,
            graph: parking_lot::Mutex::new(graph),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ZiggyConfig {
        &self.config
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Shared handle to the underlying table.
    pub fn table_arc(&self) -> Arc<Table> {
        Arc::clone(&self.table)
    }

    /// The whole-table statistics cache (shared across queries).
    pub fn cache(&self) -> &StatsCache {
        &self.cache
    }

    /// The per-query `PreparedStats` cache (shared across queries,
    /// sessions, and clients of this engine; inspect its counters for
    /// the once-per-predicate guarantee).
    pub fn prepared_cache(&self) -> &PreparedCache<Arc<PreparedStats>> {
        &self.prepared
    }

    fn graph(&self) -> Result<DependencyGraph> {
        let mut slot = self.graph.lock();
        if let Some(g) = slot.as_ref() {
            return Ok(g.clone());
        }
        let usable = usable_columns(&self.table);
        if usable.is_empty() {
            return Err(ZiggyError::NoUsableColumns);
        }
        let g = DependencyGraph::build(
            &self.cache,
            usable,
            self.config.dependence,
            self.config.mi_bins,
        )?;
        *slot = Some(g.clone());
        Ok(g)
    }

    /// ASCII dendrogram of the column dependency graph — the "visual
    /// support to help setting the parameter MIN_tight".
    pub fn dependency_dendrogram(&self) -> Result<String> {
        let g = self.graph()?;
        if g.len() < 2 {
            return Ok("<fewer than two usable columns>".to_string());
        }
        let dend = ziggy_cluster::hierarchical(
            &g.to_distance_matrix()?,
            ziggy_cluster::Linkage::Complete,
        )?;
        let labels: Vec<String> = g
            .columns()
            .iter()
            .map(|&c| self.table.name(c).to_string())
            .collect();
        Ok(dend.render_ascii(&labels))
    }

    /// Characterizes the result of a predicate query (parse + evaluate +
    /// [`Ziggy::characterize_mask`]).
    pub fn characterize(&self, query: &str) -> Result<CharacterizationReport> {
        let expr = parse_predicate(query)?;
        let mask = eval::evaluate(&expr, &self.table)?;
        self.characterize_mask(&mask, query)
    }

    /// Characterizes an arbitrary selection mask (`query_label` is used
    /// for reporting only).
    pub fn characterize_mask(
        &self,
        mask: &Bitmask,
        query_label: &str,
    ) -> Result<CharacterizationReport> {
        self.config.validate()?;
        // The word-wise kernels index columns by mask word; a mask built
        // for a different table must fail up front as an Err, not as a
        // kernel panic (or an n_outside underflow) deep in preparation.
        if mask.len() != self.table.n_rows() {
            return Err(ZiggyError::Store(ziggy_store::StoreError::LengthMismatch {
                column: "<mask>".to_string(),
                got: mask.len(),
                expected: self.table.n_rows(),
            }));
        }
        let n_inside = mask.count_ones();
        let n_outside = self.table.n_rows() - n_inside;
        if n_inside < self.config.min_side_rows || n_outside < self.config.min_side_rows {
            return Err(ZiggyError::DegenerateSelection {
                inside: n_inside,
                outside: n_outside,
                needed: self.config.min_side_rows,
            });
        }

        // --- Stage 1: preparation. --------------------------------------
        // Two-level reuse: a mask already prepared on this engine (by any
        // thread, session, or client) is served from the PreparedCache in
        // O(mask words); only genuinely new selections pay the masked
        // scans, which themselves run word-wise and derive complement
        // statistics from the whole-table StatsCache by subtraction.
        let t0 = Instant::now();
        let graph = self.graph()?;
        let prepared: Arc<PreparedStats> = if self.config.prepared_cache_capacity == 0 {
            Arc::new(prepare(&self.cache, mask, graph.columns(), &self.config)?)
        } else {
            self.prepared.get_or_build(mask, || {
                prepare(&self.cache, mask, graph.columns(), &self.config).map(Arc::new)
            })?
        };
        let preparation_us = t0.elapsed().as_micros() as u64;

        // --- Stage 2: view search. --------------------------------------
        let t1 = Instant::now();
        let candidates = generate_candidates(&graph, &self.config)?;
        let selected = search(candidates, &prepared, &self.config);
        let view_search_us = t1.elapsed().as_micros() as u64;

        // --- Stage 3: post-processing. ----------------------------------
        let t2 = Instant::now();
        let mut views = Vec::with_capacity(selected.len());
        for sv in selected {
            let comp_refs = prepared.components_for_view(&sv.columns);
            let robustness_p = view_robustness(&comp_refs, self.config.aggregation);
            if self.config.filter_insignificant && robustness_p >= self.config.alpha {
                continue;
            }
            let explanation = explain::generate(
                &self.table,
                mask,
                &sv.columns,
                &comp_refs,
                self.config.alpha,
            );
            let positions: Vec<usize> = sv
                .columns
                .iter()
                .filter_map(|c| graph.columns().iter().position(|x| x == c))
                .collect();
            let tightness = graph.tightness(&positions);
            let names = sv
                .columns
                .iter()
                .map(|&c| self.table.name(c).to_string())
                .collect();
            views.push(ViewReport {
                view: View {
                    columns: sv.columns,
                    names,
                },
                score: sv.score,
                robustness_p,
                tightness,
                components: comp_refs.into_iter().copied().collect(),
                explanation,
            });
        }
        let post_processing_us = t2.elapsed().as_micros() as u64;

        Ok(CharacterizationReport {
            query: query_label.to_string(),
            n_inside,
            n_outside,
            views,
            timings: StageTimings {
                preparation_us,
                view_search_us,
                post_processing_us,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::TableBuilder;

    /// A table with a planted 2-column characteristic view:
    /// (pop, density) correlated and shifted inside the selection.
    fn crime_like() -> Table {
        let n = 600usize;
        let sel = |i: usize| i >= 450;
        let noise = |i: usize, k: usize| ((i * (31 + 7 * k)) % 17) as f64 * 0.3;
        let mut b = TableBuilder::new();
        b.add_numeric(
            "crime",
            (0..n)
                .map(|i| if sel(i) { 90.0 } else { 10.0 } + noise(i, 0))
                .collect(),
        );
        b.add_numeric(
            "pop",
            (0..n)
                .map(|i| if sel(i) { 80.0 } else { 20.0 } + noise(i, 1) * 4.0)
                .collect(),
        );
        b.add_numeric(
            "density",
            (0..n)
                .map(|i| {
                    let pop = if sel(i) { 80.0 } else { 20.0 } + noise(i, 1) * 4.0;
                    pop * 1.5 + noise(i, 2)
                })
                .collect(),
        );
        b.add_numeric("rain", (0..n).map(|i| ((i * 7919) % 100) as f64).collect());
        b.add_categorical(
            "coast",
            (0..n)
                .map(|i| Some(if i % 3 == 0 { "yes" } else { "no" }))
                .collect(),
        );
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_finds_planted_view() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        assert_eq!(report.n_inside, 150);
        assert!(!report.views.is_empty());
        let top = report.best_view().unwrap();
        // The top view should involve pop and/or density (excluding the
        // selection column itself is not required by the paper).
        let names: Vec<&str> = top.view.names.iter().map(|s| s.as_str()).collect();
        assert!(
            names.contains(&"pop") || names.contains(&"density") || names.contains(&"crime"),
            "unexpected top view {names:?}"
        );
        assert!(top.score > 0.0);
        assert!(top.robustness_p < 0.05);
        assert!(!top.explanation.sentences.is_empty());
    }

    #[test]
    fn views_are_disjoint_and_tight() {
        let t = crime_like();
        let config = ZiggyConfig {
            min_tightness: 0.3,
            ..Default::default()
        };
        let z = Ziggy::new(&t, config.clone());
        let report = z.characterize("crime >= 50").unwrap();
        let mut seen: Vec<usize> = Vec::new();
        for v in &report.views {
            for c in &v.view.columns {
                assert!(!seen.contains(c), "column {c} appears in two views");
                seen.push(*c);
            }
            assert!(v.view.len() <= config.max_view_size);
            assert!(v.tightness >= config.min_tightness - 1e-9);
        }
    }

    #[test]
    fn ranking_is_descending() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        for w in report.views.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn degenerate_selections_rejected() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        assert!(matches!(
            z.characterize("crime < 0"),
            Err(ZiggyError::DegenerateSelection { .. })
        ));
        assert!(matches!(
            z.characterize("crime >= 0"),
            Err(ZiggyError::DegenerateSelection { .. })
        ));
    }

    #[test]
    fn bad_query_propagates_parse_error() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        assert!(matches!(
            z.characterize("crime >>> 1"),
            Err(ZiggyError::Store(_))
        ));
        assert!(matches!(
            z.characterize("nope > 1"),
            Err(ZiggyError::Store(_))
        ));
    }

    #[test]
    fn invalid_config_rejected_at_characterize() {
        let t = crime_like();
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                max_views: 0,
                ..Default::default()
            },
        );
        assert!(matches!(
            z.characterize("crime >= 50"),
            Err(ZiggyError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_config_shares_stats_but_honors_overrides() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let base = z.characterize("crime >= 50").unwrap();
        let misses_after_base = z.cache().counters().misses;

        // A fork asking for fewer views sees the override...
        let fork = z.with_config(ZiggyConfig {
            max_views: 1,
            ..ZiggyConfig::default()
        });
        let overridden = fork.characterize("crime >= 50").unwrap();
        assert!(overridden.views.len() <= 1);
        assert!(base.views.len() > overridden.views.len());
        // ...while the whole-table statistics stay shared: the fork's
        // preparation re-ran (fresh PreparedCache) but added no new
        // whole-table scans.
        assert_eq!(z.cache().counters().misses, misses_after_base);
        assert_eq!(fork.prepared_cache().counters().misses, 1);

        // The base engine's own config is untouched.
        let again = z.characterize("crime >= 50").unwrap();
        assert_eq!(again.views.len(), base.views.len());
    }

    #[test]
    fn preparation_dominates_timings() {
        // Paper: "This is often the most time consuming step."
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        assert!(report.timings.total_us() > 0);
        // Don't assert dominance strictly (tiny table), just coherence.
        assert_eq!(
            report.timings.total_us(),
            report.timings.preparation_us
                + report.timings.view_search_us
                + report.timings.post_processing_us
        );
    }

    #[test]
    fn cache_makes_second_query_cheaper_or_equal() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let first = z.characterize("crime >= 50").unwrap();
        let second = z.characterize("pop >= 50").unwrap();
        // Both succeed and share the cache; the graph is only built once.
        assert!(first.timings.total_us() > 0 && second.timings.total_us() > 0);
        let (uni, pair, freq) = z.cache().sizes();
        assert!(uni >= 4 && pair >= 6 && freq >= 1);
    }

    #[test]
    fn filter_insignificant_drops_noise_views() {
        let t = crime_like();
        let config = ZiggyConfig {
            filter_insignificant: true,
            ..Default::default()
        };
        let z = Ziggy::new(&t, config);
        let report = z.characterize("crime >= 50").unwrap();
        for v in &report.views {
            assert!(v.robustness_p < 0.05);
        }
    }

    #[test]
    fn dendrogram_rendering() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let art = z.dependency_dendrogram().unwrap();
        assert!(art.contains("pop"));
        assert!(art.contains("height"));
    }

    #[test]
    fn repeated_query_served_from_prepared_cache() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let first = z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (0, 1), "{c:?}");
        // Same predicate again: preparation is skipped entirely…
        let second = z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (1, 1), "{c:?}");
        // …and the report is identical.
        assert_eq!(first.views.len(), second.views.len());
        for (a, b) in first.views.iter().zip(&second.views) {
            assert_eq!(a.view, b.view);
            assert!((a.score - b.score).abs() < 1e-15);
        }
        // A *semantically* equal predicate spelled differently also hits:
        // the cache keys on the selection mask, not the query text.
        z.characterize("NOT crime < 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (2, 1), "{c:?}");
        // A different selection builds its own entry. (Note "pop >= 50"
        // would *hit*: it selects the same rows as "crime >= 50" in this
        // fixture, and the cache keys on rows, not query text.)
        z.characterize("rain >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (2, 2), "{c:?}");
        assert_eq!(z.prepared_cache().len(), 2);
    }

    #[test]
    fn prepared_cache_capacity_zero_disables() {
        let t = crime_like();
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                prepared_cache_capacity: 0,
                ..Default::default()
            },
        );
        z.characterize("crime >= 50").unwrap();
        z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!(
            (c.hits, c.misses),
            (0, 0),
            "disabled cache must not be touched"
        );
        assert!(z.prepared_cache().is_empty());
    }

    #[test]
    fn wrong_length_mask_is_an_error_not_a_panic() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        for bad_len in [10usize, t.n_rows() + 64] {
            let mask = ziggy_store::Bitmask::ones(bad_len);
            assert!(
                matches!(
                    z.characterize_mask(&mask, "bad"),
                    Err(ZiggyError::Store(
                        ziggy_store::StoreError::LengthMismatch { .. }
                    ))
                ),
                "len {bad_len}"
            );
        }
        // Direct prepare() callers get the same contract.
        let usable = crate::graph::usable_columns(&t);
        assert!(crate::prepare::prepare(
            z.cache(),
            &ziggy_store::Bitmask::ones(10),
            &usable,
            z.config()
        )
        .is_err());
    }

    #[test]
    fn characterize_mask_matches_query_path() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let mask = ziggy_store::eval::select(&t, "crime >= 50").unwrap();
        let via_mask = z.characterize_mask(&mask, "crime >= 50").unwrap();
        let via_query = z.characterize("crime >= 50").unwrap();
        assert_eq!(via_mask.n_inside, via_query.n_inside);
        assert_eq!(via_mask.views.len(), via_query.views.len());
        for (a, b) in via_mask.views.iter().zip(&via_query.views) {
            assert_eq!(a.view, b.view);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}
