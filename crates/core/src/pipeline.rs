//! The three-stage pipeline (paper Figure 4): preparation → view search →
//! post-processing — staged behind three levels of reuse.
//!
//! A characterization is decomposed into an explicit *plan* whose
//! query-independent stages are memoized per engine:
//!
//! 1. the [`DependencyGraph`] **and** the candidate views generated from
//!    it ([`generate_candidates`] over the usable columns) depend only on
//!    the table and the configuration, so both are computed once per
//!    engine and reused by every query;
//! 2. [`PreparedStats`] are memoized per selection mask (the
//!    [`PreparedCache`]), so a repeated predicate skips the masked scans;
//! 3. the finished [`CharacterizationReport`] *and its serialized JSON
//!    bytes* are memoized per `(mask, configuration)` (the report
//!    cache), so a repeated query — under *any* spelling of the same
//!    selection — skips view search, post-processing, and serde
//!    entirely; the serving layer answers it with memoized bytes and an
//!    `ETag`, splicing the client's query label in at render time.

use std::sync::Arc;
use std::time::Instant;

use ziggy_store::{
    eval, parse_predicate, run_indexed, Bitmask, KeyedCache, PreparedCache, StatsCache, Table,
};

use crate::candidates::generate_candidates;
use crate::config::ZiggyConfig;
use crate::error::{Result, ZiggyError};
use crate::explain;
use crate::graph::{usable_columns, DependencyGraph};
use crate::prepare::{prepare, PreparedStats};
use crate::report::{CharacterizationReport, StageTimings, View, ViewReport};
use crate::robust::view_robustness;
use crate::search::search;

/// Key of one report-cache entry: the selection mask (hashed by
/// fingerprint, confirmed by full word equality) and the configuration's
/// canonical JSON ([`ZiggyConfig::canonical_json`] — forked engines
/// share one cache, so artifacts built under an override must key apart
/// from the default configuration's; the full string, compared by
/// equality, because clients choose override configurations and a mere
/// hash could be made to collide). The query label is deliberately *not*
/// part of the key: two spellings of the same selection (`"x > 5"`,
/// `"x>5.0"`, `"NOT x <= 5"`) are the same characterization, so they
/// share one cached build. The label is spliced into the serialized
/// bytes at render time ([`CachedReport::bytes_with_query`]) instead of
/// being baked into the cached artifact.
pub type ReportKey = (Bitmask, Arc<str>);

/// The report cache: finished reports plus their serialized bytes,
/// shared by all configuration forks of one engine.
pub type ReportCache = KeyedCache<ReportKey, Arc<CachedReport>>;

/// A finished characterization in both forms the system serves: the
/// structured report and its canonical JSON bytes. The bytes are
/// `serde_json::to_string` of the report *with stage timings and the
/// query label zeroed*: timings are wall-clock measurements of one
/// build, and the label is presentation — both would make two artifacts
/// that computed the identical characterization disagree byte-for-byte
/// (and therefore tag-for-tag) across replicas or across spellings of
/// the same predicate. They ride along as side channels instead —
/// [`CachedReport::report`] keeps the real timings for struct-level
/// consumers, and the requested label is attached at render time by
/// [`CachedReport::bytes_with_query`] / [`CachedReport::report_with_query`]
/// — excluded from the fingerprint, so the `ETag` is a pure function of
/// (table, configuration, mask) and replicas revalidate each other's
/// tags with `304`s no matter how the client spelled the predicate.
#[derive(Debug, Clone)]
pub struct CachedReport {
    /// The structured report, timings included (this build's wall-clock
    /// cost) and query label empty (attach one with
    /// [`CachedReport::report_with_query`]).
    pub report: CharacterizationReport,
    /// Its serialized JSON (timings zeroed, query label empty) — the
    /// canonical label-free wire form. Behind an `Arc` so the serving
    /// layer's warm path shares one allocation; responses carrying a
    /// label are spliced per request by
    /// [`CachedReport::bytes_with_query`].
    pub bytes: Arc<str>,
    /// FNV-1a fingerprint of `bytes` — the `ETag` source. Deterministic
    /// across processes and fleet replicas: any engine that computes the
    /// same report under the same configuration produces the same tag.
    pub fingerprint: u64,
}

/// Byte offset in [`CachedReport::bytes`] where the query label is
/// spliced in: the length of `{"query":"` — `query` is the first field
/// of [`CharacterizationReport`]'s serialized form.
const QUERY_SPLICE_AT: usize = 10;

impl CachedReport {
    fn build(mut report: CharacterizationReport) -> Self {
        // Zero the timings and the label only for serialization; the
        // timings stay on the struct (real values), the label is
        // dropped entirely (one cached build serves every spelling of
        // the selection, so no single label is canonical).
        let timings = std::mem::take(&mut report.timings);
        report.query.clear();
        let bytes: Arc<str> =
            Arc::from(serde_json::to_string(&report).expect("reports always render"));
        report.timings = timings;
        debug_assert!(
            bytes.starts_with(r#"{"query":"""#),
            "query must serialize first for the render-time splice"
        );
        let fingerprint = ziggy_store::fnv1a_64(bytes.as_bytes());
        Self {
            report,
            bytes,
            fingerprint,
        }
    }

    /// The serialized report with `query_label` spliced into the
    /// (empty) `query` field — what a response body carries. The label
    /// is JSON-escaped; everything after it is the shared label-free
    /// allocation's tail, so this is one copy, no re-serialization.
    pub fn bytes_with_query(&self, query_label: &str) -> Arc<str> {
        if query_label.is_empty() {
            return Arc::clone(&self.bytes);
        }
        let escaped = serde_json::to_string(query_label).expect("strings serialize");
        let escaped = &escaped[1..escaped.len() - 1];
        let mut out = String::with_capacity(self.bytes.len() + escaped.len());
        out.push_str(&self.bytes[..QUERY_SPLICE_AT]);
        out.push_str(escaped);
        out.push_str(&self.bytes[QUERY_SPLICE_AT..]);
        Arc::from(out)
    }

    /// A clone of the structured report with `query_label` attached —
    /// the struct-level counterpart of [`CachedReport::bytes_with_query`]
    /// (sessions, the REPL, and `characterize_mask` use this so the
    /// caller sees their own spelling, whichever spelling built the
    /// cached artifact).
    pub fn report_with_query(&self, query_label: &str) -> CharacterizationReport {
        let mut report = self.report.clone();
        report.query = query_label.to_string();
        report
    }

    /// The strong HTTP entity tag for this report (quoted hex
    /// fingerprint), used for `ETag` / `If-None-Match` revalidation.
    /// A pure function of (table, configuration, mask): every spelling
    /// of the same selection revalidates against the same tag.
    pub fn etag(&self) -> String {
        format!("\"{:016x}\"", self.fingerprint)
    }
}

/// The deepest reuse level that answered a characterization — the
/// engine's three-tier cache hierarchy, numbered shallow to deep. The
/// serving layer surfaces it per response in the `Server-Timing`
/// header so clients can see *why* a request was fast or slow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ReuseLevel {
    /// Level 1: the pipeline ran end to end; only the memoized search
    /// plan (dependency graph + candidate views) and the whole-table
    /// statistics were reused.
    Plan = 1,
    /// Level 2: the pipeline ran, but the per-mask [`PreparedStats`]
    /// came from the prepared cache — the masked scans were skipped.
    Prepared = 2,
    /// Level 3: the finished report bytes came from the report cache;
    /// no pipeline stage ran at all.
    Report = 3,
}

impl ReuseLevel {
    /// The numeric level (1..=3).
    pub fn as_u8(self) -> u8 {
        self as u8
    }
}

/// What a cache-aware characterization returns: the (possibly shared)
/// cached artifact plus whether this call actually ran the pipeline.
/// Callers that meter work (the serving layer's stage-timing metrics)
/// must only count `fresh` outcomes — a cached report's embedded
/// timings describe the original build, not this request.
pub struct CharacterizeOutcome {
    /// The report and its bytes.
    pub cached: Arc<CachedReport>,
    /// True when this call built the report; false when it was served
    /// from the report cache.
    pub fresh: bool,
    /// The deepest cache level that answered this call.
    pub reuse: ReuseLevel,
}

/// The Ziggy engine bound to one table.
///
/// Holds every level of the reuse strategy: the whole-table statistics
/// cache (successive queries share the expensive moment computations —
/// the paper's between-query optimization), the memoized search plan
/// (dependency graph + candidate views, query-independent), the
/// per-query [`PreparedCache`] of finished [`PreparedStats`] keyed by
/// the selection mask, and the report cache of finished
/// [`CachedReport`]s keyed by `(mask, config)` so *repeated*
/// queries skip the entire pipeline.
///
/// The engine owns its table through an `Arc` and all interior state is
/// lock-protected, so a single `Ziggy` is `Send + Sync`: one engine per
/// table can serve many threads (and, through `ziggy-serve`, many
/// clients) concurrently, extending the paper's between-*query* sharing
/// to between-*client* sharing.
pub struct Ziggy {
    table: Arc<Table>,
    /// Shared so [`Ziggy::with_config`] forks reuse the whole-table
    /// statistics instead of recomputing them per configuration.
    cache: Arc<StatsCache>,
    config: ZiggyConfig,
    /// Memoized [`ZiggyConfig::canonical_json`] — part of every report
    /// key (shared, not re-rendered, per lookup).
    config_key: Arc<str>,
    /// Dependency graph is query-independent; memoized after first use.
    graph: parking_lot::Mutex<Option<DependencyGraph>>,
    /// Candidate views are query-independent too (they derive from the
    /// graph and the search parameters alone); memoized alongside it.
    candidates: parking_lot::Mutex<Option<Arc<Vec<Vec<usize>>>>>,
    /// Per-query `PreparedStats`, memoized against the selection mask.
    prepared: PreparedCache<Arc<PreparedStats>>,
    /// Finished reports + serialized bytes, shared across configuration
    /// forks (the `Arc`), keyed by `(mask, canonical config)`.
    reports: Arc<ReportCache>,
}

// parking_lot re-export via ziggy-store's dependency is not public; the
// engine takes its own direct dependency (see Cargo.toml).

impl Ziggy {
    /// Creates an engine over a copy of `table` with the given
    /// configuration. Configuration problems surface on the first
    /// characterization. When the table is already behind an `Arc` (the
    /// serving path), use [`Ziggy::shared`] to avoid the deep copy.
    pub fn new(table: &Table, config: ZiggyConfig) -> Self {
        Self::shared(Arc::new(table.clone()), config)
    }

    /// Creates an engine sharing ownership of `table` (no copy).
    pub fn shared(table: Arc<Table>, config: ZiggyConfig) -> Self {
        Self::from_stats(Arc::new(StatsCache::shared(table)), config)
    }

    /// Creates an engine over a pre-built [`StatsCache`] (and the table
    /// it serves). This is the incremental-append path: the new table's
    /// cache is derived from the old one with `StatsCache::for_appended`
    /// — full chunks keep their frozen partials, only the grown tail is
    /// rescanned — and the engine is rebuilt around it, so everything a
    /// longer table invalidates (masks, prepared stats, reports, the
    /// search plan) starts cold while the whole-table statistics stay
    /// warm.
    pub fn from_stats(cache: Arc<StatsCache>, config: ZiggyConfig) -> Self {
        Self {
            table: cache.table_arc(),
            cache,
            // Capacity 0 disables a cache at lookup time; the clamp to 1
            // inside `KeyedCache::new` only keeps the structs well-formed.
            prepared: PreparedCache::new(config.prepared_cache_capacity),
            reports: Arc::new(ReportCache::new(config.report_cache_capacity)),
            config_key: Arc::from(config.canonical_json()),
            config,
            graph: parking_lot::Mutex::new(None),
            candidates: parking_lot::Mutex::new(None),
        }
    }

    /// An engine over the same table — and the same whole-table
    /// [`StatsCache`] and report cache — but a different configuration.
    /// This is the per-request override path: the expensive table-level
    /// moments and frequencies stay shared, while everything the new
    /// configuration could change is either re-keyed (report entries
    /// carry the configuration fingerprint, so a fork can never be
    /// served — or poison — another configuration's reports) or fresh
    /// (the per-mask [`PreparedCache`]). The memoized search plan
    /// carries over piecewise: the dependency graph when the dependence
    /// measure and binning match, the candidate views only when the
    /// search parameters (`min_tightness`, `max_view_size`) match too —
    /// a search-relevant change invalidates the candidate memo.
    pub fn with_config(&self, config: ZiggyConfig) -> Ziggy {
        let graph_compatible =
            config.dependence == self.config.dependence && config.mi_bins == self.config.mi_bins;
        let graph = if graph_compatible {
            self.graph.lock().clone()
        } else {
            None
        };
        let candidates = if graph_compatible
            && config.min_tightness == self.config.min_tightness
            && config.max_view_size == self.config.max_view_size
        {
            self.candidates.lock().clone()
        } else {
            None
        };
        // One report cache serves all forks (entries key on the config
        // fingerprint), so a repeated override request is as warm as a
        // repeated default one. A changed capacity opts the fork out
        // into its own cache — capacity is a property of the instance,
        // not of an entry.
        let reports = if config.report_cache_capacity == self.config.report_cache_capacity {
            Arc::clone(&self.reports)
        } else {
            Arc::new(ReportCache::new(config.report_cache_capacity))
        };
        Ziggy {
            table: Arc::clone(&self.table),
            cache: Arc::clone(&self.cache),
            prepared: PreparedCache::new(config.prepared_cache_capacity),
            reports,
            config_key: Arc::from(config.canonical_json()),
            config,
            graph: parking_lot::Mutex::new(graph),
            candidates: parking_lot::Mutex::new(candidates),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ZiggyConfig {
        &self.config
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Shared handle to the underlying table.
    pub fn table_arc(&self) -> Arc<Table> {
        Arc::clone(&self.table)
    }

    /// The whole-table statistics cache (shared across queries).
    pub fn cache(&self) -> &StatsCache {
        &self.cache
    }

    /// The per-query `PreparedStats` cache (shared across queries,
    /// sessions, and clients of this engine; inspect its counters for
    /// the once-per-predicate guarantee).
    pub fn prepared_cache(&self) -> &PreparedCache<Arc<PreparedStats>> {
        &self.prepared
    }

    /// The finished-report cache (shared across queries, clients, *and*
    /// configuration forks of this engine; its hit counter is exactly
    /// the number of characterizations that skipped the pipeline).
    pub fn report_cache(&self) -> &ReportCache {
        &self.reports
    }

    /// Whether the dependency graph is memoized (instrumentation).
    pub fn graph_memoized(&self) -> bool {
        self.graph.lock().is_some()
    }

    /// Whether the candidate views are memoized (instrumentation; a
    /// `with_config` fork that changed a search-relevant parameter
    /// starts with this false).
    pub fn candidates_memoized(&self) -> bool {
        self.candidates.lock().is_some()
    }

    fn graph(&self) -> Result<DependencyGraph> {
        let mut slot = self.graph.lock();
        if let Some(g) = slot.as_ref() {
            return Ok(g.clone());
        }
        let usable = usable_columns(&self.table);
        if usable.is_empty() {
            return Err(ZiggyError::NoUsableColumns);
        }
        let g = DependencyGraph::build(
            &self.cache,
            usable,
            self.config.dependence,
            self.config.mi_bins,
        )?;
        *slot = Some(g.clone());
        Ok(g)
    }

    /// The memoized candidate views for `graph` (query-independent:
    /// they derive from the graph and the search parameters alone, so
    /// they are generated once per engine, not once per request).
    fn candidates(&self, graph: &DependencyGraph) -> Result<Arc<Vec<Vec<usize>>>> {
        let mut slot = self.candidates.lock();
        if let Some(c) = slot.as_ref() {
            return Ok(Arc::clone(c));
        }
        let c = Arc::new(generate_candidates(graph, &self.config)?);
        *slot = Some(Arc::clone(&c));
        Ok(c)
    }

    /// ASCII dendrogram of the column dependency graph — the "visual
    /// support to help setting the parameter MIN_tight".
    pub fn dependency_dendrogram(&self) -> Result<String> {
        let g = self.graph()?;
        if g.len() < 2 {
            return Ok("<fewer than two usable columns>".to_string());
        }
        let dend = ziggy_cluster::hierarchical(
            &g.to_distance_matrix()?,
            ziggy_cluster::Linkage::Complete,
        )?;
        let labels: Vec<String> = g
            .columns()
            .iter()
            .map(|&c| self.table.name(c).to_string())
            .collect();
        Ok(dend.render_ascii(&labels))
    }

    /// Characterizes the result of a predicate query (parse + evaluate +
    /// [`Ziggy::characterize_mask`]).
    pub fn characterize(&self, query: &str) -> Result<CharacterizationReport> {
        let expr = parse_predicate(query)?;
        let mask = eval::evaluate_with(&expr, &self.table, Some(self.cache.zone_maps().as_ref()))?;
        self.characterize_mask(&mask, query)
    }

    /// Cache-aware characterization of a predicate query: returns the
    /// shared [`CachedReport`] (report + serialized bytes + fingerprint)
    /// and whether this call actually ran the pipeline. The serving
    /// layer's fast path — a repeated query costs one parse, one
    /// predicate evaluation, and a cache probe.
    pub fn characterize_cached(&self, query: &str) -> Result<CharacterizeOutcome> {
        let expr = parse_predicate(query)?;
        let mask = eval::evaluate_with(&expr, &self.table, Some(self.cache.zone_maps().as_ref()))?;
        self.characterize_mask_cached(&mask, query)
    }

    /// Validation + degeneracy checks shared by every characterize entry
    /// point; returns `(n_inside, n_outside)`. These always run, so an
    /// invalid request can never be masked by a cached artifact.
    fn validated_sides(&self, mask: &Bitmask) -> Result<(usize, usize)> {
        self.config.validate()?;
        // The word-wise kernels index columns by mask word; a mask built
        // for a different table must fail up front as an Err, not as a
        // kernel panic (or an n_outside underflow) deep in preparation.
        if mask.len() != self.table.n_rows() {
            return Err(ZiggyError::Store(ziggy_store::StoreError::LengthMismatch {
                column: "<mask>".to_string(),
                got: mask.len(),
                expected: self.table.n_rows(),
            }));
        }
        let n_inside = mask.count_ones();
        let n_outside = self.table.n_rows() - n_inside;
        if n_inside < self.config.min_side_rows || n_outside < self.config.min_side_rows {
            return Err(ZiggyError::DegenerateSelection {
                inside: n_inside,
                outside: n_outside,
                needed: self.config.min_side_rows,
            });
        }
        Ok((n_inside, n_outside))
    }

    /// Characterizes an arbitrary selection mask (`query_label` is used
    /// for reporting only).
    pub fn characterize_mask(
        &self,
        mask: &Bitmask,
        query_label: &str,
    ) -> Result<CharacterizationReport> {
        if self.config.report_cache_capacity == 0 {
            // Struct-only caller with the report cache disabled: run the
            // pipeline directly, paying no serialization at all.
            let (n_inside, n_outside) = self.validated_sides(mask)?;
            return self
                .run_pipeline(mask, query_label, n_inside, n_outside)
                .map(|(report, _)| report);
        }
        Ok(self
            .characterize_mask_cached(mask, query_label)?
            .cached
            .report_with_query(query_label))
    }

    /// Cache-aware characterization of an arbitrary selection mask: the
    /// report cache is probed with `(mask, canonical config)`,
    /// and only a miss runs the staged pipeline (concurrent identical
    /// requests collapse to exactly one run — the losers block on the
    /// winner's slot and share its artifact). Failed runs are never
    /// cached.
    pub fn characterize_mask_cached(
        &self,
        mask: &Bitmask,
        query_label: &str,
    ) -> Result<CharacterizeOutcome> {
        let (n_inside, n_outside) = self.validated_sides(mask)?;
        if self.config.report_cache_capacity == 0 {
            let (report, prepared_hit) =
                self.run_pipeline(mask, query_label, n_inside, n_outside)?;
            return Ok(CharacterizeOutcome {
                cached: Arc::new(CachedReport::build(report)),
                fresh: true,
                reuse: if prepared_hit {
                    ReuseLevel::Prepared
                } else {
                    ReuseLevel::Plan
                },
            });
        }
        let key: ReportKey = (mask.clone(), Arc::clone(&self.config_key));
        let mut fresh = false;
        let mut prepared_hit = false;
        let cached = self.reports.get_or_build(&key, || {
            fresh = true;
            self.run_pipeline(mask, query_label, n_inside, n_outside)
                .map(|(report, hit)| {
                    prepared_hit = hit;
                    Arc::new(CachedReport::build(report))
                })
        })?;
        // Losers of a concurrent collapse share the winner's artifact,
        // which from their perspective is a report-cache hit.
        let reuse = match (fresh, prepared_hit) {
            (false, _) => ReuseLevel::Report,
            (true, true) => ReuseLevel::Prepared,
            (true, false) => ReuseLevel::Plan,
        };
        Ok(CharacterizeOutcome {
            cached,
            fresh,
            reuse,
        })
    }

    /// Runs the three pipeline stages for one genuinely new request.
    /// Also reports whether stage 1 was answered by the prepared cache
    /// (the reuse-level-2 signal).
    fn run_pipeline(
        &self,
        mask: &Bitmask,
        query_label: &str,
        n_inside: usize,
        n_outside: usize,
    ) -> Result<(CharacterizationReport, bool)> {
        // --- Stage 1: preparation. --------------------------------------
        // Reuse on top of reuse: a mask already prepared on this engine
        // (by any thread, session, or client) is served from the
        // PreparedCache in O(mask words); only genuinely new selections
        // pay the masked scans, which themselves run word-wise and derive
        // complement statistics from the whole-table StatsCache by
        // subtraction.
        let t0 = Instant::now();
        let graph = self.graph()?;
        let mut prepared_hit = true;
        let prepared: Arc<PreparedStats> = if self.config.prepared_cache_capacity == 0 {
            prepared_hit = false;
            Arc::new(prepare(&self.cache, mask, graph.columns(), &self.config)?)
        } else {
            self.prepared.get_or_build(mask, || {
                prepared_hit = false;
                prepare(&self.cache, mask, graph.columns(), &self.config).map(Arc::new)
            })?
        };
        let preparation_us = t0.elapsed().as_micros() as u64;

        // --- Stage 2: view search. --------------------------------------
        // Candidate views are part of the memoized plan: they depend on
        // the graph and the search parameters, not on the query, so only
        // the first request on this engine generates them.
        let t1 = Instant::now();
        let candidates = self.candidates(&graph)?;
        let selected = search(&candidates, &prepared, &self.config);
        let view_search_us = t1.elapsed().as_micros() as u64;

        // --- Stage 3: post-processing. ----------------------------------
        // Each selected view is scored independently (robustness,
        // explanation, tightness), so candidates fan out on the worker
        // pool; results come back in selection order, keeping the
        // report's view ranking — and its bytes — identical to the
        // serial path.
        let t2 = Instant::now();
        let score_parallel =
            self.config.parallel && selected.len() >= 2 && self.table.n_rows() >= 4096;
        let scored: Vec<Option<ViewReport>> = run_indexed(selected.len(), score_parallel, |i| {
            let sv = &selected[i];
            let comp_refs = prepared.components_for_view(&sv.columns);
            let robustness_p = view_robustness(&comp_refs, self.config.aggregation);
            if self.config.filter_insignificant && robustness_p >= self.config.alpha {
                return None;
            }
            let explanation = explain::generate(
                &self.table,
                mask,
                &sv.columns,
                &comp_refs,
                self.config.alpha,
            );
            let positions: Vec<usize> = sv
                .columns
                .iter()
                .filter_map(|c| graph.columns().iter().position(|x| x == c))
                .collect();
            let tightness = graph.tightness(&positions);
            let names = sv
                .columns
                .iter()
                .map(|&c| self.table.name(c).to_string())
                .collect();
            Some(ViewReport {
                view: View {
                    columns: sv.columns.clone(),
                    names,
                },
                score: sv.score,
                robustness_p,
                tightness,
                components: comp_refs.into_iter().copied().collect(),
                explanation,
            })
        });
        let views: Vec<ViewReport> = scored.into_iter().flatten().collect();
        let post_processing_us = t2.elapsed().as_micros() as u64;

        Ok((
            CharacterizationReport {
                query: query_label.to_string(),
                n_inside,
                n_outside,
                views,
                timings: StageTimings {
                    preparation_us,
                    view_search_us,
                    post_processing_us,
                },
            },
            prepared_hit,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::TableBuilder;

    /// A table with a planted 2-column characteristic view:
    /// (pop, density) correlated and shifted inside the selection.
    fn crime_like() -> Table {
        let n = 600usize;
        let sel = |i: usize| i >= 450;
        let noise = |i: usize, k: usize| ((i * (31 + 7 * k)) % 17) as f64 * 0.3;
        let mut b = TableBuilder::new();
        b.add_numeric(
            "crime",
            (0..n)
                .map(|i| if sel(i) { 90.0 } else { 10.0 } + noise(i, 0))
                .collect(),
        );
        b.add_numeric(
            "pop",
            (0..n)
                .map(|i| if sel(i) { 80.0 } else { 20.0 } + noise(i, 1) * 4.0)
                .collect(),
        );
        b.add_numeric(
            "density",
            (0..n)
                .map(|i| {
                    let pop = if sel(i) { 80.0 } else { 20.0 } + noise(i, 1) * 4.0;
                    pop * 1.5 + noise(i, 2)
                })
                .collect(),
        );
        b.add_numeric("rain", (0..n).map(|i| ((i * 7919) % 100) as f64).collect());
        b.add_categorical(
            "coast",
            (0..n)
                .map(|i| Some(if i % 3 == 0 { "yes" } else { "no" }))
                .collect(),
        );
        b.build().unwrap()
    }

    #[test]
    fn end_to_end_finds_planted_view() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        assert_eq!(report.n_inside, 150);
        assert!(!report.views.is_empty());
        let top = report.best_view().unwrap();
        // The top view should involve pop and/or density (excluding the
        // selection column itself is not required by the paper).
        let names: Vec<&str> = top.view.names.iter().map(|s| s.as_str()).collect();
        assert!(
            names.contains(&"pop") || names.contains(&"density") || names.contains(&"crime"),
            "unexpected top view {names:?}"
        );
        assert!(top.score > 0.0);
        assert!(top.robustness_p < 0.05);
        assert!(!top.explanation.sentences.is_empty());
    }

    #[test]
    fn views_are_disjoint_and_tight() {
        let t = crime_like();
        let config = ZiggyConfig {
            min_tightness: 0.3,
            ..Default::default()
        };
        let z = Ziggy::new(&t, config.clone());
        let report = z.characterize("crime >= 50").unwrap();
        let mut seen: Vec<usize> = Vec::new();
        for v in &report.views {
            for c in &v.view.columns {
                assert!(!seen.contains(c), "column {c} appears in two views");
                seen.push(*c);
            }
            assert!(v.view.len() <= config.max_view_size);
            assert!(v.tightness >= config.min_tightness - 1e-9);
        }
    }

    #[test]
    fn ranking_is_descending() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        for w in report.views.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn degenerate_selections_rejected() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        assert!(matches!(
            z.characterize("crime < 0"),
            Err(ZiggyError::DegenerateSelection { .. })
        ));
        assert!(matches!(
            z.characterize("crime >= 0"),
            Err(ZiggyError::DegenerateSelection { .. })
        ));
    }

    #[test]
    fn bad_query_propagates_parse_error() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        assert!(matches!(
            z.characterize("crime >>> 1"),
            Err(ZiggyError::Store(_))
        ));
        assert!(matches!(
            z.characterize("nope > 1"),
            Err(ZiggyError::Store(_))
        ));
    }

    #[test]
    fn invalid_config_rejected_at_characterize() {
        let t = crime_like();
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                max_views: 0,
                ..Default::default()
            },
        );
        assert!(matches!(
            z.characterize("crime >= 50"),
            Err(ZiggyError::InvalidConfig(_))
        ));
    }

    #[test]
    fn with_config_shares_stats_but_honors_overrides() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let base = z.characterize("crime >= 50").unwrap();
        let misses_after_base = z.cache().counters().misses;

        // A fork asking for fewer views sees the override...
        let fork = z.with_config(ZiggyConfig {
            max_views: 1,
            ..ZiggyConfig::default()
        });
        let overridden = fork.characterize("crime >= 50").unwrap();
        assert!(overridden.views.len() <= 1);
        assert!(base.views.len() > overridden.views.len());
        // ...while the whole-table statistics stay shared: the fork's
        // preparation re-ran (fresh PreparedCache) but added no new
        // whole-table scans.
        assert_eq!(z.cache().counters().misses, misses_after_base);
        assert_eq!(fork.prepared_cache().counters().misses, 1);

        // The base engine's own config is untouched.
        let again = z.characterize("crime >= 50").unwrap();
        assert_eq!(again.views.len(), base.views.len());
    }

    #[test]
    fn preparation_dominates_timings() {
        // Paper: "This is often the most time consuming step."
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let report = z.characterize("crime >= 50").unwrap();
        assert!(report.timings.total_us() > 0);
        // Don't assert dominance strictly (tiny table), just coherence.
        assert_eq!(
            report.timings.total_us(),
            report.timings.preparation_us
                + report.timings.view_search_us
                + report.timings.post_processing_us
        );
    }

    #[test]
    fn cache_makes_second_query_cheaper_or_equal() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let first = z.characterize("crime >= 50").unwrap();
        let second = z.characterize("pop >= 50").unwrap();
        // Both succeed and share the cache; the graph is only built once.
        assert!(first.timings.total_us() > 0 && second.timings.total_us() > 0);
        let (uni, pair, freq) = z.cache().sizes();
        assert!(uni >= 4 && pair >= 6 && freq >= 1);
    }

    #[test]
    fn filter_insignificant_drops_noise_views() {
        let t = crime_like();
        let config = ZiggyConfig {
            filter_insignificant: true,
            ..Default::default()
        };
        let z = Ziggy::new(&t, config);
        let report = z.characterize("crime >= 50").unwrap();
        for v in &report.views {
            assert!(v.robustness_p < 0.05);
        }
    }

    #[test]
    fn dendrogram_rendering() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let art = z.dependency_dendrogram().unwrap();
        assert!(art.contains("pop"));
        assert!(art.contains("height"));
    }

    #[test]
    fn repeated_query_served_from_prepared_cache() {
        let t = crime_like();
        // Disable the report level so this test observes the prepared
        // level in isolation (with reports on, a repeated identical
        // query never reaches the prepared cache at all).
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                report_cache_capacity: 0,
                ..Default::default()
            },
        );
        let first = z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (0, 1), "{c:?}");
        // Same predicate again: preparation is skipped entirely…
        let second = z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (1, 1), "{c:?}");
        // …and the report is identical.
        assert_eq!(first.views.len(), second.views.len());
        for (a, b) in first.views.iter().zip(&second.views) {
            assert_eq!(a.view, b.view);
            assert!((a.score - b.score).abs() < 1e-15);
        }
        // A *semantically* equal predicate spelled differently also hits:
        // the cache keys on the selection mask, not the query text.
        z.characterize("NOT crime < 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (2, 1), "{c:?}");
        // A different selection builds its own entry. (Note "pop >= 50"
        // would *hit*: it selects the same rows as "crime >= 50" in this
        // fixture, and the cache keys on rows, not query text.)
        z.characterize("rain >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!((c.hits, c.misses), (2, 2), "{c:?}");
        assert_eq!(z.prepared_cache().len(), 2);
    }

    #[test]
    fn prepared_cache_capacity_zero_disables() {
        let t = crime_like();
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                prepared_cache_capacity: 0,
                ..Default::default()
            },
        );
        z.characterize("crime >= 50").unwrap();
        z.characterize("crime >= 50").unwrap();
        let c = z.prepared_cache().counters();
        assert_eq!(
            (c.hits, c.misses),
            (0, 0),
            "disabled cache must not be touched"
        );
        assert!(z.prepared_cache().is_empty());
    }

    #[test]
    fn wrong_length_mask_is_an_error_not_a_panic() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        for bad_len in [10usize, t.n_rows() + 64] {
            let mask = ziggy_store::Bitmask::ones(bad_len);
            assert!(
                matches!(
                    z.characterize_mask(&mask, "bad"),
                    Err(ZiggyError::Store(
                        ziggy_store::StoreError::LengthMismatch { .. }
                    ))
                ),
                "len {bad_len}"
            );
        }
        // Direct prepare() callers get the same contract.
        let usable = crate::graph::usable_columns(&t);
        assert!(crate::prepare::prepare(
            z.cache(),
            &ziggy_store::Bitmask::ones(10),
            &usable,
            z.config()
        )
        .is_err());
    }

    #[test]
    fn report_cache_serves_repeated_queries_byte_identically() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let first = z.characterize_cached("crime >= 50").unwrap();
        assert!(first.fresh);
        let c = z.report_cache().counters();
        assert_eq!((c.hits, c.misses), (0, 1), "{c:?}");

        // The repeat is the same artifact — same Arc, same bytes, same
        // ETag — with no pipeline work at all: neither the prepared
        // cache nor the stats cache sees another lookup.
        let stats_before = z.cache().counters();
        let prepared_before = z.prepared_cache().counters();
        let second = z.characterize_cached("crime >= 50").unwrap();
        assert!(!second.fresh);
        assert!(Arc::ptr_eq(&first.cached, &second.cached));
        assert_eq!(first.cached.bytes, second.cached.bytes);
        assert_eq!(first.cached.etag(), second.cached.etag());
        assert_eq!(z.cache().counters(), stats_before);
        assert_eq!(z.prepared_cache().counters(), prepared_before);
        let c = z.report_cache().counters();
        assert_eq!((c.hits, c.misses), (1, 1), "{c:?}");

        // The bytes are the canonical serialization of the report with
        // timings zeroed and the label empty (the wire form is
        // timing-free and label-free so it is deterministic across
        // replicas and spellings); the struct keeps the real build cost
        // as a side channel.
        let mut wire = first.cached.report.clone();
        wire.timings = StageTimings::default();
        wire.query.clear();
        assert_eq!(&*first.cached.bytes, serde_json::to_string(&wire).unwrap());

        // A different spelling of the same selection is the same
        // characterization: it answers from the report cache (no
        // pipeline, no new entry), and only the render-time label
        // differs.
        let respelled = z.characterize_cached("NOT crime < 50").unwrap();
        assert!(!respelled.fresh, "respelled predicate must hit level 3");
        assert!(Arc::ptr_eq(&respelled.cached, &first.cached));
        assert_eq!(respelled.cached.etag(), first.cached.etag());
        assert_eq!(z.report_cache().len(), 1);
        assert_eq!(
            respelled.cached.report_with_query("NOT crime < 50").query,
            "NOT crime < 50"
        );

        // A different selection is its own entry with different bytes.
        let other = z.characterize_cached("rain >= 50").unwrap();
        assert!(other.fresh);
        assert_ne!(other.cached.fingerprint, first.cached.fingerprint);
    }

    #[test]
    fn respelled_predicates_share_one_cached_build() {
        // The regression this pins: the level-3 cache used to key on the
        // query *text*, so "x > 5" and "x>5.0" — the same selection —
        // each paid a full pipeline run. The key is now (mask, config)
        // only; the label is spliced into the bytes at render time.
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let a = z.characterize_cached("crime > 50").unwrap();
        assert!(a.fresh);
        let b = z.characterize_cached("crime>50.0").unwrap();
        assert!(!b.fresh, "respelling must not rebuild");
        assert_eq!(b.reuse, ReuseLevel::Report);
        assert!(Arc::ptr_eq(&a.cached, &b.cached));
        assert_eq!(z.report_cache().len(), 1);
        let c = z.report_cache().counters();
        assert_eq!((c.hits, c.misses), (1, 1), "{c:?}");

        // One shared ETag — a client that revalidates the respelled
        // request against the first response's tag gets a 304.
        assert_eq!(a.cached.etag(), b.cached.etag());

        // Render-time labels: the spliced bodies differ only in the
        // query field and parse back to the requested spelling.
        let body_a = a.cached.bytes_with_query("crime > 50");
        let body_b = b.cached.bytes_with_query("crime>50.0");
        assert_ne!(body_a, body_b);
        let ra: CharacterizationReport = serde_json::from_str(&body_a).unwrap();
        let rb: CharacterizationReport = serde_json::from_str(&body_b).unwrap();
        assert_eq!(ra.query, "crime > 50");
        assert_eq!(rb.query, "crime>50.0");
        let mut ra = ra;
        ra.query = rb.query.clone();
        assert_eq!(
            serde_json::to_string(&ra).unwrap(),
            serde_json::to_string(&rb).unwrap(),
            "bodies differ only in the query label"
        );

        // Labels needing JSON escapes splice correctly.
        let hostile = "crime > 50 AND coast IN ('\"quoted\\')";
        let spliced = a.cached.bytes_with_query(hostile);
        let v: CharacterizationReport = serde_json::from_str(&spliced).unwrap();
        assert_eq!(v.query, hostile);

        // The struct path carries the caller's spelling too.
        let via_mask = z.characterize("crime>50.0").unwrap();
        assert_eq!(via_mask.query, "crime>50.0");
    }

    #[test]
    fn etags_are_deterministic_across_independent_engines() {
        // Two engines built independently over the same table and
        // configuration — the fleet's "two replicas of one shard" —
        // must produce byte-identical wire reports and therefore the
        // same fingerprint/ETag, even though their wall-clock stage
        // timings differ. This is what lets a conditional request
        // revalidate (304) against whichever replica rotation picks.
        let t = crime_like();
        let a = Ziggy::new(&t, ZiggyConfig::default());
        let b = Ziggy::new(&t, ZiggyConfig::default());
        let ra = a.characterize_cached("crime >= 50").unwrap();
        let rb = b.characterize_cached("crime >= 50").unwrap();
        assert_eq!(ra.cached.bytes, rb.cached.bytes);
        assert_eq!(ra.cached.fingerprint, rb.cached.fingerprint);
        assert_eq!(ra.cached.etag(), rb.cached.etag());
        // The side-channel timings still describe each build (they are
        // just not fingerprinted). At least one stage of a real build
        // takes measurable time.
        assert!(ra.cached.report.timings.total_us() > 0);
        // And the wire form really is timing-free.
        assert!(
            ra.cached.bytes.contains(r#""preparation_us":0"#),
            "{}",
            ra.cached.bytes
        );
    }

    #[test]
    fn report_cache_capacity_zero_disables() {
        let t = crime_like();
        let z = Ziggy::new(
            &t,
            ZiggyConfig {
                report_cache_capacity: 0,
                ..Default::default()
            },
        );
        let first = z.characterize_cached("crime >= 50").unwrap();
        let second = z.characterize_cached("crime >= 50").unwrap();
        assert!(first.fresh && second.fresh, "disabled cache never serves");
        let c = z.report_cache().counters();
        assert_eq!((c.hits, c.misses), (0, 0), "disabled cache is untouched");
        assert!(z.report_cache().is_empty());
        // The prepared level still absorbs the repeat.
        let p = z.prepared_cache().counters();
        assert_eq!((p.hits, p.misses), (1, 1), "{p:?}");
    }

    #[test]
    fn config_forks_share_report_cache_without_poisoning() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let base = z.characterize_cached("crime >= 50").unwrap();
        assert!(base.cached.report.views.len() > 1);

        // An override fork builds its own entry (distinct configuration
        // fingerprint) in the *shared* cache…
        let fork = z.with_config(ZiggyConfig {
            max_views: 1,
            ..ZiggyConfig::default()
        });
        let overridden = fork.characterize_cached("crime >= 50").unwrap();
        assert!(overridden.fresh, "override must not be served base bytes");
        assert_eq!(overridden.cached.report.views.len(), 1);
        assert_eq!(fork.report_cache().len(), 2, "one shared cache, two keys");

        // …and the base entry is intact: the default-config repeat is a
        // hit with the full view list — the regression this test pins is
        // an override poisoning the default entry.
        let again = z.characterize_cached("crime >= 50").unwrap();
        assert!(!again.fresh);
        assert_eq!(
            again.cached.report.views.len(),
            base.cached.report.views.len()
        );
        assert!(Arc::ptr_eq(&again.cached, &base.cached));

        // A second identical override fork re-uses the first's entry:
        // repeated override requests are as warm as default ones.
        let fork2 = z.with_config(ZiggyConfig {
            max_views: 1,
            ..ZiggyConfig::default()
        });
        let warm = fork2.characterize_cached("crime >= 50").unwrap();
        assert!(!warm.fresh);
        assert!(Arc::ptr_eq(&warm.cached, &overridden.cached));
    }

    #[test]
    fn search_plan_memoized_and_selectively_carried_by_forks() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        assert!(!z.graph_memoized() && !z.candidates_memoized());
        z.characterize("crime >= 50").unwrap();
        assert!(z.graph_memoized() && z.candidates_memoized());

        // A fork that changes nothing search-relevant inherits the whole
        // plan…
        let same_plan = z.with_config(ZiggyConfig {
            alpha: 0.01,
            ..ZiggyConfig::default()
        });
        assert!(same_plan.graph_memoized() && same_plan.candidates_memoized());

        // …a search-parameter change keeps the graph but invalidates the
        // candidate memo…
        let new_search = z.with_config(ZiggyConfig {
            min_tightness: 0.5,
            ..ZiggyConfig::default()
        });
        assert!(new_search.graph_memoized());
        assert!(!new_search.candidates_memoized());
        let report = new_search.characterize("crime >= 50").unwrap();
        assert!(new_search.candidates_memoized());
        assert!(!report.views.is_empty());

        // …and a dependence-measure change drops both.
        let new_graph = z.with_config(ZiggyConfig {
            dependence: crate::config::DependenceKind::Spearman,
            ..ZiggyConfig::default()
        });
        assert!(!new_graph.graph_memoized());
        assert!(!new_graph.candidates_memoized());
    }

    #[test]
    fn concurrent_identical_requests_collapse_to_one_pipeline_run() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let outcomes: Vec<CharacterizeOutcome> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| z.characterize_cached("crime >= 50").unwrap()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let fresh = outcomes.iter().filter(|o| o.fresh).count();
        assert_eq!(fresh, 1, "exactly one thread runs the pipeline");
        for o in &outcomes {
            assert!(Arc::ptr_eq(&o.cached, &outcomes[0].cached));
        }
        let c = z.report_cache().counters();
        assert_eq!((c.hits, c.misses), (7, 1), "{c:?}");
        // The single run did a single preparation.
        let p = z.prepared_cache().counters();
        assert_eq!((p.hits, p.misses), (0, 1), "{p:?}");
    }

    #[test]
    fn characterize_mask_matches_query_path() {
        let t = crime_like();
        let z = Ziggy::new(&t, ZiggyConfig::default());
        let mask = ziggy_store::eval::select(&t, "crime >= 50").unwrap();
        let via_mask = z.characterize_mask(&mask, "crime >= 50").unwrap();
        let via_query = z.characterize("crime >= 50").unwrap();
        assert_eq!(via_mask.n_inside, via_query.n_inside);
        assert_eq!(via_mask.views.len(), via_query.views.len());
        for (a, b) in via_mask.views.iter().zip(&via_query.views) {
            assert_eq!(a.view, b.view);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }
}
