//! Rule-based explanation generation.
//!
//! "Ziggy choses the Zig-Components associated with the highest levels of
//! confidence, and it describes them with text. We implemented the text
//! generation functionalities with handwritten rules…" (§3.) The target
//! style is the paper's example:
//!
//! > "On the columns Population and Density, your selection has
//! > particularly high values and a low variance"

use serde::{Deserialize, Serialize};
use ziggy_store::{masked_freq, Bitmask, Table};

use crate::component::{ComponentKind, ZigComponent};
use crate::robust::significant_components;

/// A generated explanation: one sentence per confirmed phenomenon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Human-readable sentences, most confident phenomena first.
    pub sentences: Vec<String>,
}

impl std::fmt::Display for Explanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, s) in self.sentences.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

fn join_names(names: &[String]) -> String {
    match names.len() {
        0 => String::new(),
        1 => names[0].clone(),
        2 => format!("{} and {}", names[0], names[1]),
        _ => format!(
            "{} and {}",
            names[..names.len() - 1].join(", "),
            names[names.len() - 1]
        ),
    }
}

/// Generates the explanation for one view from its significant
/// components. `table` and `mask` are consulted to name over- and
/// under-represented categories for frequency components.
pub fn generate(
    table: &Table,
    mask: &Bitmask,
    view: &[usize],
    components: &[&ZigComponent],
    alpha: f64,
) -> Explanation {
    let sig = significant_components(components, alpha);
    let mut sentences = Vec::new();

    // --- Mean shifts, grouped by direction, fused with dispersion. -----
    let mean_dir = |c: &&ZigComponent| {
        (c.kind == ComponentKind::MeanShift).then_some((c.column_a, c.effect.value > 0.0))
    };
    let disp_of = |col: usize| -> Option<f64> {
        sig.iter()
            .find(|c| c.kind == ComponentKind::DispersionShift && c.column_a == col)
            .map(|c| c.effect.value)
    };
    let mut consumed_dispersion: Vec<usize> = Vec::new();
    for up in [true, false] {
        let cols: Vec<usize> = sig
            .iter()
            .filter_map(mean_dir)
            .filter(|&(_, dir)| dir == up)
            .map(|(col, _)| col)
            .collect();
        if cols.is_empty() {
            continue;
        }
        let names: Vec<String> = cols.iter().map(|&c| table.name(c).to_string()).collect();
        let level = if up {
            "particularly high values"
        } else {
            "particularly low values"
        };
        // Fuse a uniform dispersion direction into the same sentence.
        let disps: Vec<f64> = cols.iter().filter_map(|&c| disp_of(c)).collect();
        let dispersion_phrase = if disps.len() == cols.len() && !disps.is_empty() {
            consumed_dispersion.extend(cols.iter().copied());
            if disps.iter().all(|&d| d < 0.0) {
                " and a low variance"
            } else if disps.iter().all(|&d| d > 0.0) {
                " and a high variance"
            } else {
                consumed_dispersion.retain(|c| !cols.contains(c));
                ""
            }
        } else {
            ""
        };
        let column_word = if cols.len() == 1 { "column" } else { "columns" };
        sentences.push(format!(
            "On the {column_word} {}, your selection has {level}{dispersion_phrase}.",
            join_names(&names)
        ));
    }

    // --- Leftover dispersion shifts. ------------------------------------
    for c in sig
        .iter()
        .filter(|c| c.kind == ComponentKind::DispersionShift)
    {
        if consumed_dispersion.contains(&c.column_a) {
            continue;
        }
        let spread = if c.effect.value > 0.0 {
            "more dispersed"
        } else {
            "more concentrated"
        };
        sentences.push(format!(
            "On the column {}, the values of your selection are noticeably {spread} \
             than in the rest of the data.",
            table.name(c.column_a)
        ));
    }

    // --- Correlation shifts. --------------------------------------------
    for c in sig
        .iter()
        .filter(|c| c.kind == ComponentKind::CorrelationShift)
    {
        let b = c.column_b.expect("correlation components span two columns");
        let direction = if c.effect.value > 0.0 {
            "more positively related"
        } else {
            "more negatively related"
        };
        sentences.push(format!(
            "Inside your selection, the columns {} and {} are {direction} than elsewhere \
             (Fisher-z shift {:+.2}).",
            table.name(c.column_a),
            table.name(b),
            c.effect.value
        ));
    }

    // --- Distribution-shape shifts (extended component). -----------------
    for c in sig.iter().filter(|c| c.kind == ComponentKind::ShapeShift) {
        // Skip columns already covered by a mean-shift sentence — the KS
        // signal is then redundant narration.
        let has_mean = sig
            .iter()
            .any(|m| m.kind == ComponentKind::MeanShift && m.column_a == c.column_a);
        if has_mean {
            continue;
        }
        sentences.push(format!(
            "The overall distribution of {} differs inside your selection              (Kolmogorov-Smirnov D = {:.2}).",
            table.name(c.column_a),
            c.effect.value
        ));
    }

    // --- Frequency shifts (consult the data for the culprit labels). ----
    for c in sig
        .iter()
        .filter(|c| c.kind == ComponentKind::FrequencyShift)
    {
        let col = c.column_a;
        let sentence = match frequency_detail(table, mask, col) {
            Some((label, p_in, p_out)) => format!(
                "The category '{label}' of {} is strongly over-represented in your selection \
                 ({:.0}% vs {:.0}% elsewhere).",
                table.name(col),
                p_in * 100.0,
                p_out * 100.0
            ),
            None => format!(
                "Your selection has an unusual mix of categories on {}.",
                table.name(col)
            ),
        };
        sentences.push(sentence);
    }

    if sentences.is_empty() {
        let names: Vec<String> = view.iter().map(|&c| table.name(c).to_string()).collect();
        sentences.push(format!(
            "No statistically robust difference was confirmed on the columns {} at \
             significance level {alpha}.",
            join_names(&names)
        ));
    }
    Explanation { sentences }
}

/// Finds the category with the largest positive proportion gap
/// (inside − outside); returns `(label, p_inside, p_outside)`.
fn frequency_detail(table: &Table, mask: &Bitmask, col: usize) -> Option<(String, f64, f64)> {
    let (_, labels) = table.categorical(col).ok()?;
    let inside = masked_freq(table, col, mask).ok()?;
    let outside = masked_freq(table, col, &mask.complement()).ok()?;
    let pi = inside.proportions();
    let po = outside.proportions();
    let (best, gap) = pi
        .iter()
        .zip(&po)
        .enumerate()
        .map(|(i, (a, b))| (i, a - b))
        .max_by(|x, y| x.1.partial_cmp(&y.1).expect("proportions are finite"))?;
    if gap <= 0.0 {
        return None;
    }
    Some((labels[best].clone(), pi[best], po[best]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_stats::EffectSize;
    use ziggy_store::{eval::select, TableBuilder};

    fn mk(kind: ComponentKind, a: usize, b: Option<usize>, value: f64, p: f64) -> ZigComponent {
        ZigComponent {
            kind,
            column_a: a,
            column_b: b,
            effect: EffectSize {
                value,
                se: 0.1,
                p_value: p,
            },
            normalized: 1.0,
        }
    }

    fn sample_table() -> (Table, Bitmask) {
        let n = 100usize;
        let mut b = TableBuilder::new();
        b.add_numeric("population", (0..n).map(|i| i as f64).collect());
        b.add_numeric("density", (0..n).map(|i| (i * 2) as f64).collect());
        b.add_categorical(
            "region",
            (0..n)
                .map(|i| Some(if i >= 80 { "west" } else { "east" }))
                .collect(),
        );
        let t = b.build().unwrap();
        let mask = select(&t, "population >= 80").unwrap();
        (t, mask)
    }
    use ziggy_store::Table;

    #[test]
    fn paper_style_sentence_high_values_low_variance() {
        let (t, mask) = sample_table();
        let comps = [
            mk(ComponentKind::MeanShift, 0, None, 2.0, 0.001),
            mk(ComponentKind::MeanShift, 1, None, 1.5, 0.002),
            mk(ComponentKind::DispersionShift, 0, None, -0.8, 0.01),
            mk(ComponentKind::DispersionShift, 1, None, -0.5, 0.01),
        ];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0, 1], &refs, 0.05);
        assert_eq!(e.sentences.len(), 1, "{:?}", e.sentences);
        let s = &e.sentences[0];
        assert!(s.contains("population") && s.contains("density"), "{s}");
        assert!(s.contains("particularly high values"), "{s}");
        assert!(s.contains("and a low variance"), "{s}");
    }

    #[test]
    fn low_values_direction() {
        let (t, mask) = sample_table();
        let comps = [mk(ComponentKind::MeanShift, 0, None, -2.0, 0.001)];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0], &refs, 0.05);
        assert!(e.sentences[0].contains("particularly low values"));
    }

    #[test]
    fn mixed_dispersion_not_fused() {
        let (t, mask) = sample_table();
        let comps = [
            mk(ComponentKind::MeanShift, 0, None, 2.0, 0.001),
            mk(ComponentKind::MeanShift, 1, None, 1.5, 0.002),
            mk(ComponentKind::DispersionShift, 0, None, -0.8, 0.01),
            mk(ComponentKind::DispersionShift, 1, None, 0.5, 0.01),
        ];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0, 1], &refs, 0.05);
        // Mean sentence without fused variance + two dispersion sentences.
        assert!(e.sentences[0].contains("particularly high values"));
        assert!(!e.sentences[0].contains("variance"));
        assert_eq!(e.sentences.len(), 3, "{:?}", e.sentences);
    }

    #[test]
    fn correlation_sentence() {
        let (t, mask) = sample_table();
        let comps = [mk(ComponentKind::CorrelationShift, 0, Some(1), 1.2, 0.003)];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0, 1], &refs, 0.05);
        let s = &e.sentences[0];
        assert!(s.contains("more positively related"), "{s}");
        assert!(s.contains("population") && s.contains("density"), "{s}");
    }

    #[test]
    fn frequency_sentence_names_over_represented_label() {
        let (t, mask) = sample_table();
        let comps = [mk(ComponentKind::FrequencyShift, 2, None, 1.0, 0.001)];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[2], &refs, 0.05);
        let s = &e.sentences[0];
        // Selection (rows 80..) is all 'west'.
        assert!(s.contains("'west'"), "{s}");
        assert!(s.contains("100%"), "{s}");
    }

    #[test]
    fn shape_sentence_only_without_mean_shift() {
        let (t, mask) = sample_table();
        // Shape shift alone → sentence appears.
        let comps = [mk(ComponentKind::ShapeShift, 0, None, 0.45, 0.001)];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0], &refs, 0.05);
        assert!(
            e.sentences[0].contains("overall distribution"),
            "{:?}",
            e.sentences
        );
        assert!(e.sentences[0].contains("D = 0.45"));
        // With a mean shift on the same column, the KS narration is
        // suppressed as redundant.
        let comps = [
            mk(ComponentKind::MeanShift, 0, None, 2.0, 0.001),
            mk(ComponentKind::ShapeShift, 0, None, 0.45, 0.001),
        ];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0], &refs, 0.05);
        assert!(e
            .sentences
            .iter()
            .all(|s| !s.contains("overall distribution")));
    }

    #[test]
    fn insignificant_components_fall_back() {
        let (t, mask) = sample_table();
        let comps = [mk(ComponentKind::MeanShift, 0, None, 0.1, 0.8)];
        let refs: Vec<&ZigComponent> = comps.iter().collect();
        let e = generate(&t, &mask, &[0], &refs, 0.05);
        assert_eq!(e.sentences.len(), 1);
        assert!(e.sentences[0].contains("No statistically robust difference"));
    }

    #[test]
    fn display_joins_sentences() {
        let e = Explanation {
            sentences: vec!["A.".into(), "B.".into()],
        };
        assert_eq!(e.to_string(), "A.\nB.");
    }

    #[test]
    fn join_names_forms() {
        assert_eq!(join_names(&["a".into()]), "a");
        assert_eq!(join_names(&["a".into(), "b".into()]), "a and b");
        assert_eq!(
            join_names(&["a".into(), "b".into(), "c".into()]),
            "a, b and c"
        );
    }
}
