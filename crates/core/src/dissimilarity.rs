//! The Zig-Dissimilarity: normalized, weighted aggregation of the
//! Zig-Components of a view (Equation 1 instantiated as §2.2 describes).

use crate::component::ZigComponent;
use crate::prepare::PreparedStats;
use crate::weights::Weights;

/// Scores a view: the weighted sum of the normalized magnitudes of every
/// component that lies entirely within the view's columns.
pub fn view_score(view: &[usize], prepared: &PreparedStats, weights: &Weights) -> f64 {
    prepared
        .components_for_view(view)
        .iter()
        .map(|c| weights.for_kind(c.kind) * c.normalized)
        .sum()
}

/// Itemized score: `(component, weighted contribution)` pairs, sorted by
/// contribution descending — the raw material for explanations and debug
/// output.
pub fn score_breakdown<'p>(
    view: &[usize],
    prepared: &'p PreparedStats,
    weights: &Weights,
) -> Vec<(&'p ZigComponent, f64)> {
    let mut parts: Vec<(&ZigComponent, f64)> = prepared
        .components_for_view(view)
        .into_iter()
        .map(|c| (c, weights.for_kind(c.kind) * c.normalized))
        .collect();
    parts.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("weighted scores are finite"));
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ZiggyConfig;
    use crate::graph::usable_columns;
    use crate::prepare::prepare;
    use ziggy_store::{eval::select, StatsCache, Table, TableBuilder};

    fn sample() -> Table {
        let n = 300usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "hot",
            (0..n)
                .map(|i| if i >= 200 { 50.0 } else { 0.0 } + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_numeric("cold", (0..n).map(|i| ((i * 7919) % 50) as f64).collect());
        b.build().unwrap()
    }

    fn prepared(t: &Table) -> PreparedStats {
        let cache = StatsCache::new(t);
        let mask = select(t, "key >= 200").unwrap();
        prepare(&cache, &mask, &usable_columns(t), &ZiggyConfig::default()).unwrap()
    }

    #[test]
    fn hot_column_scores_higher_than_cold() {
        let t = sample();
        let p = prepared(&t);
        let hot = t.index_of("hot").unwrap();
        let cold = t.index_of("cold").unwrap();
        let w = Weights::default();
        assert!(view_score(&[hot], &p, &w) > view_score(&[cold], &p, &w));
    }

    #[test]
    fn weights_gate_families() {
        let t = sample();
        let p = prepared(&t);
        let hot = t.index_of("hot").unwrap();
        let zero = Weights {
            mean: 0.0,
            dispersion: 0.0,
            correlation: 0.0,
            frequency: 1.0,
            shape: 0.0,
        };
        // No categorical columns → frequency-only weights zero the score.
        assert_eq!(view_score(&[hot], &p, &zero), 0.0);
    }

    #[test]
    fn score_monotone_in_view_growth() {
        // Adding a column can only add components (scores are sums of
        // nonnegative contributions).
        let t = sample();
        let p = prepared(&t);
        let hot = t.index_of("hot").unwrap();
        let cold = t.index_of("cold").unwrap();
        let w = Weights::default();
        assert!(view_score(&[hot, cold], &p, &w) >= view_score(&[hot], &p, &w) - 1e-12);
    }

    #[test]
    fn breakdown_sorted_and_consistent() {
        let t = sample();
        let p = prepared(&t);
        let hot = t.index_of("hot").unwrap();
        let cold = t.index_of("cold").unwrap();
        let w = Weights::default();
        let parts = score_breakdown(&[hot, cold], &p, &w);
        let total: f64 = parts.iter().map(|(_, s)| s).sum();
        assert!((total - view_score(&[hot, cold], &p, &w)).abs() < 1e-12);
        for pair in parts.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn empty_view_scores_zero() {
        let t = sample();
        let p = prepared(&t);
        assert_eq!(view_score(&[], &p, &Weights::default()), 0.0);
    }
}
