//! Request-body helpers and the API error type shared by all handlers.

use serde_json::Value;

/// An error that maps directly onto an HTTP error response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Human-readable message, returned as `{"error": message}`.
    pub message: String,
}

impl ApiError {
    /// 400 Bad Request.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    /// 404 Not Found.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    /// 405 Method Not Allowed.
    pub fn method_not_allowed() -> Self {
        Self {
            status: 405,
            message: "method not allowed".into(),
        }
    }

    /// 409 Conflict.
    pub fn conflict(message: impl Into<String>) -> Self {
        Self {
            status: 409,
            message: message.into(),
        }
    }

    /// 413 Payload Too Large.
    pub fn too_large(message: impl Into<String>) -> Self {
        Self {
            status: 413,
            message: message.into(),
        }
    }

    /// 422 Unprocessable Entity (well-formed request, engine rejected it).
    pub fn unprocessable(message: impl Into<String>) -> Self {
        Self {
            status: 422,
            message: message.into(),
        }
    }

    /// 500 Internal Server Error (an acknowledged-durability write
    /// failed; the request must not be acknowledged).
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }

    /// The `{"error": ...}` response body.
    pub fn body(&self) -> Value {
        Value::Object(vec![("error".into(), Value::String(self.message.clone()))])
    }
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.status, self.message)
    }
}

impl std::error::Error for ApiError {}

impl From<ziggy_core::ZiggyError> for ApiError {
    fn from(e: ziggy_core::ZiggyError) -> Self {
        // Engine rejections are semantic problems with a well-formed
        // request: degenerate selections, bad predicates, bad config.
        ApiError::unprocessable(e.to_string())
    }
}

impl From<ziggy_store::StoreError> for ApiError {
    fn from(e: ziggy_store::StoreError) -> Self {
        ApiError::unprocessable(e.to_string())
    }
}

/// Parses a request body as a JSON object.
pub fn parse_object(body: &[u8]) -> Result<Value, ApiError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| ApiError::bad_request("request body is not UTF-8"))?;
    let v = serde_json::from_str_value(text)
        .map_err(|e| ApiError::bad_request(format!("invalid JSON body: {e}")))?;
    if v.as_object().is_none() {
        return Err(ApiError::bad_request("request body must be a JSON object"));
    }
    Ok(v)
}

/// Extracts a required string field from a parsed body.
pub fn required_str<'a>(body: &'a Value, field: &str) -> Result<&'a str, ApiError> {
    body.get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ApiError::bad_request(format!("missing string field `{field}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_extract() {
        let v = parse_object(br#"{"name": "crime", "csv": "a,b\n1,2\n"}"#).unwrap();
        assert_eq!(required_str(&v, "name").unwrap(), "crime");
        assert!(required_str(&v, "missing").is_err());
    }

    #[test]
    fn rejects_non_objects() {
        assert!(parse_object(b"[1,2]").is_err());
        assert!(parse_object(b"not json").is_err());
        assert!(parse_object(&[0xFF, 0xFE]).is_err());
    }

    #[test]
    fn error_bodies_are_json() {
        let e = ApiError::not_found("no such table");
        assert_eq!(
            serde_json::to_string(&e.body()).unwrap(),
            r#"{"error":"no such table"}"#
        );
    }
}
