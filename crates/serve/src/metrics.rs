//! Request counters and stage-timing accumulators for `/metrics`.

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;
use ziggy_core::StageTimings;

fn num(n: u64) -> Value {
    Value::Number(serde_json::Number::U(n))
}

/// One monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Server-wide metrics, shared by all worker threads.
///
/// Everything is a relaxed atomic: the numbers are operational telemetry,
/// not synchronization.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests that parsed and reached the router. (Requests so
    /// malformed the HTTP layer rejected them with 400 never get here.)
    pub requests_total: Counter,
    /// Routed requests answered with a 4xx/5xx status.
    pub errors_total: Counter,
    /// `POST /tables` requests that created a table.
    pub tables_created: Counter,
    /// `GET /tables` listings served.
    pub tables_listed: Counter,
    /// `DELETE /tables/{name}` requests that dropped a table.
    pub tables_deleted: Counter,
    /// Characterizations served (direct and via session steps),
    /// including ones answered from the report cache.
    pub characterizations: Counter,
    /// Characterizations answered from the report cache — no search, no
    /// post-processing, no serialization (and no stage timings added to
    /// the sums below, which only meter pipeline runs).
    pub report_cache_hits: Counter,
    /// Characterize requests answered `304 Not Modified` because the
    /// client's `If-None-Match` matched the report's `ETag` (a subset of
    /// `report_cache_hits` plus revalidations of fresh builds).
    pub not_modified_total: Counter,
    /// Sessions created.
    pub sessions_created: Counter,
    /// Session steps served.
    pub session_steps: Counter,
    /// Sessions closed — explicitly via `DELETE /sessions/{id}` or
    /// cascaded from `DELETE /tables/{name}`.
    pub sessions_deleted: Counter,
    /// Requests refused with 429 by the per-client rate limiter (these
    /// never reach the router, so they are not in `requests_total`).
    pub rate_limited: Counter,
    /// Sum of the preparation stage over all characterizations (µs).
    pub preparation_us: Counter,
    /// Sum of the view-search stage over all characterizations (µs).
    pub view_search_us: Counter,
    /// Sum of the post-processing stage over all characterizations (µs).
    pub post_processing_us: Counter,
}

impl Metrics {
    /// Folds one characterization's stage timings into the totals.
    pub fn record_characterization(&self, t: &StageTimings) {
        self.characterizations.inc();
        self.preparation_us.add(t.preparation_us);
        self.view_search_us.add(t.view_search_us);
        self.post_processing_us.add(t.post_processing_us);
    }

    /// Records a characterization served from the report cache. The
    /// stage-timing sums are left alone on purpose: a cached report's
    /// embedded timings describe the original build, and re-adding them
    /// would misreport work the server never did.
    pub fn record_cached_characterization(&self) {
        self.characterizations.inc();
        self.report_cache_hits.inc();
    }

    /// Renders the counters as the `/metrics` JSON body (the `tables`
    /// section with per-table cache counters is appended by the router,
    /// which owns the registry).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "requests".into(),
                Value::Object(vec![
                    ("total".into(), num(self.requests_total.get())),
                    ("errors".into(), num(self.errors_total.get())),
                    ("tables_created".into(), num(self.tables_created.get())),
                    ("tables_listed".into(), num(self.tables_listed.get())),
                    ("tables_deleted".into(), num(self.tables_deleted.get())),
                    (
                        "characterizations".into(),
                        num(self.characterizations.get()),
                    ),
                    (
                        "report_cache_hits".into(),
                        num(self.report_cache_hits.get()),
                    ),
                    ("not_modified".into(), num(self.not_modified_total.get())),
                    ("sessions_created".into(), num(self.sessions_created.get())),
                    ("session_steps".into(), num(self.session_steps.get())),
                    ("sessions_deleted".into(), num(self.sessions_deleted.get())),
                    ("rate_limited".into(), num(self.rate_limited.get())),
                ]),
            ),
            (
                "stage_timings_us".into(),
                Value::Object(vec![
                    ("preparation".into(), num(self.preparation_us.get())),
                    ("view_search".into(), num(self.view_search_us.get())),
                    ("post_processing".into(), num(self.post_processing_us.get())),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.requests_total.inc();
        m.requests_total.inc();
        m.record_characterization(&StageTimings {
            preparation_us: 10,
            view_search_us: 20,
            post_processing_us: 30,
        });
        assert_eq!(m.requests_total.get(), 2);
        assert_eq!(m.characterizations.get(), 1);
        assert_eq!(m.preparation_us.get(), 10);
        let json = serde_json::to_string(&m.to_json()).unwrap();
        assert!(json.contains("\"total\":2"), "{json}");
        assert!(json.contains("\"preparation\":10"), "{json}");
    }
}
