//! Request counters, latency histograms, and stage-timing accumulators
//! for `/metrics` (JSON and Prometheus exposition).

use std::sync::atomic::{AtomicU64, Ordering};

use serde_json::Value;
use ziggy_core::StageTimings;
use ziggy_obs::hist::{BUCKET_BOUNDS_US, FINITE_BUCKETS};
use ziggy_obs::{Histogram, PromDoc, RouteHistograms};

/// Route-label keys for the per-route latency histograms. Every request
/// maps onto exactly one of these (bounded cardinality by construction —
/// table and session names never become labels).
pub const ROUTE_KEYS: &[&str] = &[
    "healthz",
    "metrics",
    "tables",
    "characterize",
    "rows",
    "csv",
    "sessions",
    "session_step",
    "tombstones",
    "other",
];

/// Maps a request to its route-label key. Unknown paths all collapse
/// into `other` so hostile traffic cannot inflate label cardinality.
pub fn route_key(method: &str, path: &str) -> &'static str {
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (method, segments.as_slice()) {
        (_, ["healthz"]) => "healthz",
        (_, ["metrics"]) => "metrics",
        (_, ["tables"]) | (_, ["tables", _]) => "tables",
        (_, ["tables", _, "characterize"]) => "characterize",
        (_, ["tables", _, "rows"]) => "rows",
        (_, ["tables", _, "csv"]) => "csv",
        (_, ["sessions"]) | (_, ["sessions", _]) => "sessions",
        (_, ["sessions", _, "step"]) => "session_step",
        (_, ["tombstones"]) => "tombstones",
        _ => "other",
    }
}

fn num(n: u64) -> Value {
    Value::Number(serde_json::Number::U(n))
}

/// One monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Server-wide metrics, shared by all worker threads.
///
/// Everything is a relaxed atomic: the numbers are operational telemetry,
/// not synchronization.
#[derive(Debug)]
pub struct Metrics {
    /// HTTP requests that parsed and reached the router. (Requests so
    /// malformed the HTTP layer rejected them with 400 never get here.)
    pub requests_total: Counter,
    /// Routed requests answered with a 4xx/5xx status.
    pub errors_total: Counter,
    /// `POST /tables` requests that created a table.
    pub tables_created: Counter,
    /// `GET /tables` listings served.
    pub tables_listed: Counter,
    /// `DELETE /tables/{name}` requests that dropped a table.
    pub tables_deleted: Counter,
    /// `POST /tables/{name}/rows` requests that appended rows.
    pub appends: Counter,
    /// Total rows appended across all append requests.
    pub rows_appended: Counter,
    /// Characterizations served (direct and via session steps),
    /// including ones answered from the report cache.
    pub characterizations: Counter,
    /// Characterizations answered from the report cache — no search, no
    /// post-processing, no serialization (and no stage timings added to
    /// the sums below, which only meter pipeline runs).
    pub report_cache_hits: Counter,
    /// Characterize requests answered `304 Not Modified` because the
    /// client's `If-None-Match` matched the report's `ETag` (a subset of
    /// `report_cache_hits` plus revalidations of fresh builds).
    pub not_modified_total: Counter,
    /// Sessions created.
    pub sessions_created: Counter,
    /// Session steps served.
    pub session_steps: Counter,
    /// Sessions closed — explicitly via `DELETE /sessions/{id}` or
    /// cascaded from `DELETE /tables/{name}`.
    pub sessions_deleted: Counter,
    /// Requests refused with 429 by the per-client rate limiter (these
    /// never reach the router, so they are not in `requests_total`).
    pub rate_limited: Counter,
    /// Sum of the preparation stage over all characterizations (µs).
    pub preparation_us: Counter,
    /// Sum of the view-search stage over all characterizations (µs).
    pub view_search_us: Counter,
    /// Sum of the post-processing stage over all characterizations (µs).
    pub post_processing_us: Counter,
    /// Per-route request latency, keyed by [`ROUTE_KEYS`].
    pub route_latency: RouteHistograms,
    /// Distribution of the preparation stage over pipeline runs.
    pub preparation_hist: Histogram,
    /// Distribution of the view-search stage over pipeline runs.
    pub view_search_hist: Histogram,
    /// Distribution of the post-processing stage over pipeline runs.
    pub post_processing_hist: Histogram,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests_total: Counter::default(),
            errors_total: Counter::default(),
            tables_created: Counter::default(),
            tables_listed: Counter::default(),
            tables_deleted: Counter::default(),
            appends: Counter::default(),
            rows_appended: Counter::default(),
            characterizations: Counter::default(),
            report_cache_hits: Counter::default(),
            not_modified_total: Counter::default(),
            sessions_created: Counter::default(),
            session_steps: Counter::default(),
            sessions_deleted: Counter::default(),
            rate_limited: Counter::default(),
            preparation_us: Counter::default(),
            view_search_us: Counter::default(),
            post_processing_us: Counter::default(),
            route_latency: RouteHistograms::new(ROUTE_KEYS),
            preparation_hist: Histogram::new(),
            view_search_hist: Histogram::new(),
            post_processing_hist: Histogram::new(),
        }
    }
}

impl Metrics {
    /// Folds one characterization's stage timings into the totals and
    /// the per-stage distributions.
    pub fn record_characterization(&self, t: &StageTimings) {
        self.characterizations.inc();
        self.preparation_us.add(t.preparation_us);
        self.view_search_us.add(t.view_search_us);
        self.post_processing_us.add(t.post_processing_us);
        self.preparation_hist.record_us(t.preparation_us);
        self.view_search_hist.record_us(t.view_search_us);
        self.post_processing_hist.record_us(t.post_processing_us);
    }

    /// Records a characterization served from the report cache. The
    /// stage-timing sums are left alone on purpose: a cached report's
    /// embedded timings describe the original build, and re-adding them
    /// would misreport work the server never did.
    pub fn record_cached_characterization(&self) {
        self.characterizations.inc();
        self.report_cache_hits.inc();
    }

    /// Renders the counters and histograms as a Prometheus document.
    /// Counter families carry a `ziggy_` prefix and `_total` suffix;
    /// histogram buckets are cumulative and expressed in seconds.
    pub fn to_prometheus(&self) -> PromDoc {
        let mut doc = PromDoc::new();
        for (name, counter) in [
            ("ziggy_requests_total", &self.requests_total),
            ("ziggy_errors_total", &self.errors_total),
            ("ziggy_tables_created_total", &self.tables_created),
            ("ziggy_tables_listed_total", &self.tables_listed),
            ("ziggy_tables_deleted_total", &self.tables_deleted),
            ("ziggy_appends_total", &self.appends),
            ("ziggy_rows_appended_total", &self.rows_appended),
            ("ziggy_characterizations_total", &self.characterizations),
            ("ziggy_report_cache_hits_total", &self.report_cache_hits),
            ("ziggy_not_modified_total", &self.not_modified_total),
            ("ziggy_sessions_created_total", &self.sessions_created),
            ("ziggy_session_steps_total", &self.session_steps),
            ("ziggy_sessions_deleted_total", &self.sessions_deleted),
            ("ziggy_rate_limited_total", &self.rate_limited),
        ] {
            doc.counter(name, &[], counter.get());
        }
        for (route, hist) in self.route_latency.iter() {
            if hist.count() > 0 {
                doc.histogram_us(
                    "ziggy_request_duration_seconds",
                    &[("route", route)],
                    &hist.snapshot(),
                );
            }
        }
        for (stage, hist) in [
            ("prepare", &self.preparation_hist),
            ("view_search", &self.view_search_hist),
            ("post_process", &self.post_processing_hist),
        ] {
            doc.histogram_us(
                "ziggy_stage_duration_seconds",
                &[("stage", stage)],
                &hist.snapshot(),
            );
        }
        doc
    }

    /// The per-route latency exemplars as JSON (see
    /// [`route_exemplars_json`]).
    pub fn exemplars_json(&self) -> Value {
        route_exemplars_json(&self.route_latency)
    }

    /// Renders the counters as the `/metrics` JSON body (the `tables`
    /// section with per-table cache counters is appended by the router,
    /// which owns the registry).
    pub fn to_json(&self) -> Value {
        Value::Object(vec![
            (
                "requests".into(),
                Value::Object(vec![
                    ("total".into(), num(self.requests_total.get())),
                    ("errors".into(), num(self.errors_total.get())),
                    ("tables_created".into(), num(self.tables_created.get())),
                    ("tables_listed".into(), num(self.tables_listed.get())),
                    ("tables_deleted".into(), num(self.tables_deleted.get())),
                    ("appends".into(), num(self.appends.get())),
                    ("rows_appended".into(), num(self.rows_appended.get())),
                    (
                        "characterizations".into(),
                        num(self.characterizations.get()),
                    ),
                    (
                        "report_cache_hits".into(),
                        num(self.report_cache_hits.get()),
                    ),
                    ("not_modified".into(), num(self.not_modified_total.get())),
                    ("sessions_created".into(), num(self.sessions_created.get())),
                    ("session_steps".into(), num(self.session_steps.get())),
                    ("sessions_deleted".into(), num(self.sessions_deleted.get())),
                    ("rate_limited".into(), num(self.rate_limited.get())),
                ]),
            ),
            (
                "stage_timings_us".into(),
                Value::Object(vec![
                    ("preparation".into(), num(self.preparation_us.get())),
                    ("view_search".into(), num(self.view_search_us.get())),
                    ("post_processing".into(), num(self.post_processing_us.get())),
                ]),
            ),
        ])
    }
}

/// Renders a [`RouteHistograms`]'s latency exemplars as JSON: route →
/// one entry per bucket that saw a traced sample,
/// `{le_us, trace_id, value_us}` (`le_us` is `"+Inf"` for the overflow
/// bucket). The same trace links the Prometheus exposition carries via
/// OpenMetrics `# {trace_id="…"}` syntax. Shared by the single-node
/// server and the fleet router, which meter different route keys but
/// expose the identical exemplar shape.
pub fn route_exemplars_json(route_latency: &RouteHistograms) -> Value {
    let mut routes = Vec::new();
    for (route, hist) in route_latency.iter() {
        let snap = hist.snapshot();
        let entries: Vec<Value> = snap
            .exemplars
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|e| (i, e)))
            .map(|(i, e)| {
                let le = if i < FINITE_BUCKETS {
                    num(BUCKET_BOUNDS_US[i])
                } else {
                    Value::String("+Inf".into())
                };
                Value::Object(vec![
                    ("le_us".into(), le),
                    ("trace_id".into(), Value::String(e.trace_id.clone())),
                    ("value_us".into(), num(e.value_us)),
                ])
            })
            .collect();
        if !entries.is_empty() {
            routes.push((route.to_string(), Value::Array(entries)));
        }
    }
    Value::Object(routes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.requests_total.inc();
        m.requests_total.inc();
        m.record_characterization(&StageTimings {
            preparation_us: 10,
            view_search_us: 20,
            post_processing_us: 30,
        });
        assert_eq!(m.requests_total.get(), 2);
        assert_eq!(m.characterizations.get(), 1);
        assert_eq!(m.preparation_us.get(), 10);
        let json = serde_json::to_string(&m.to_json()).unwrap();
        assert!(json.contains("\"total\":2"), "{json}");
        assert!(json.contains("\"preparation\":10"), "{json}");
    }

    #[test]
    fn route_keys_have_bounded_cardinality() {
        for (method, path, want) in [
            ("GET", "/healthz", "healthz"),
            ("GET", "/metrics", "metrics"),
            ("POST", "/tables", "tables"),
            ("DELETE", "/tables/demo", "tables"),
            ("POST", "/tables/demo/characterize", "characterize"),
            ("POST", "/tables/demo/rows", "rows"),
            ("GET", "/tables/demo/csv", "csv"),
            ("POST", "/sessions", "sessions"),
            ("POST", "/sessions/7/step", "session_step"),
            ("GET", "/anything/else/at/all", "other"),
        ] {
            assert_eq!(route_key(method, path), want, "{method} {path}");
            assert!(ROUTE_KEYS.contains(&route_key(method, path)));
        }
    }

    #[test]
    fn prometheus_document_is_lint_clean() {
        let m = Metrics::default();
        m.requests_total.inc();
        m.route_latency.record_us("healthz", 1_250);
        m.record_characterization(&StageTimings {
            preparation_us: 10,
            view_search_us: 20,
            post_processing_us: 30,
        });
        let doc = m.to_prometheus();
        let text = doc.render();
        assert!(text.contains("ziggy_requests_total 1"), "{text}");
        assert!(
            text.contains("ziggy_request_duration_seconds_bucket{route=\"healthz\""),
            "{text}"
        );
        assert!(
            text.contains("ziggy_stage_duration_seconds_count{stage=\"prepare\"} 1"),
            "{text}"
        );
        let reparsed = PromDoc::parse(&text).unwrap();
        assert!(reparsed.lint().is_empty(), "{:?}", reparsed.lint());
    }
}
