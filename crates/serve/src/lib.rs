#![warn(missing_docs)]

//! `ziggy-serve` — the concurrent characterization service.
//!
//! The paper positions Ziggy "as a library, to be included into external
//! exploration systems" behind an interactive front-end (Figure 5). This
//! crate is that serving layer: a dependency-light, multi-threaded
//! HTTP/1.1 JSON API over the shared-ownership engine core. One
//! [`ziggy_core::Ziggy`] engine per ingested table is shared across all
//! worker threads and all clients, so whole-table statistics and the
//! column dependency graph are computed **once per table** — the paper's
//! between-query cache promoted to a between-client cache.
//!
//! # API contract
//!
//! All bodies are JSON (`Content-Type: application/json`); errors are
//! `{"error": "<message>"}` with the status codes noted below.
//!
//! | Route | Body | Response |
//! |-------|------|----------|
//! | `GET /healthz` | — | `200` `{"status":"ok","uptime_s":…,"version":"…"}` |
//! | `GET /metrics` | — | `200` request counters, cumulative stage timings (µs), and per-table counters for all three reuse levels (`cache` = whole-table statistics, `prepared` = per-mask `PreparedStats`, `reports` = finished report bytes); `?format=prometheus` switches to text exposition (counters, gauges, and latency histograms) |
//! | `POST /tables` | `{"name": "crime", "csv": "<csv text>"}` | `201` `{"name","n_rows","n_cols"}` — `400` invalid name/JSON, `409` duplicate name or registry full, `422` CSV rejected |
//! | `GET /tables` | — | `200` `{"tables":[{"name","n_rows","n_cols"},…]}` |
//! | `POST /tables/{name}/characterize` | `{"query": "<predicate>", "config": {…}?}` | `200` a full [`ziggy_core::CharacterizationReport`] — `404` unknown table, `422` engine rejection (parse error, degenerate selection). Every response carries an `ETag` (the report-byte fingerprint); a request whose `If-None-Match` matches is answered `304` with no body. A repeated `(query, config)` pair is served memoized bytes from the engine's report cache — no search, no post-processing, no serialization. The optional `config` object overlays [`ZiggyConfig`] fields onto the server default for this request only (`400` on unknown fields); overridden requests share the whole-table statistics and the report cache (entries are keyed by configuration fingerprint, so overrides can neither read nor poison the default configuration's entries) |
//! | `PUT /tables/{name}` | `{"csv": "<csv text>"}` | idempotent ingest (the fleet's replicate path): `201` created, `200` the identical table (by CSV fingerprint) was already resident, `409` the name is taken by different content |
//! | `GET /tables/{name}/csv` | — | `200` `{"name","csv","fingerprint"}` — the original upload bytes, verbatim, so replicating the export elsewhere fingerprints identically (the fleet repair loop's read side); `404` unknown table or no CSV provenance (in-process registrations) |
//! | `DELETE /tables/{name}` | — | `200` `{"deleted": "<name>", "sessions_closed": <n>}` — `404` unknown table. Frees the name and the registry slot immediately and closes the table's sessions (cascade), so the engine's memory is not pinned by abandoned clients; in-flight requests finish normally |
//! | `POST /sessions` | `{"table": "crime"}` | `201` `{"session_id", "table"}` — `404` unknown table |
//! | `POST /sessions/{id}/step` | `{"query": "<predicate>"}` | `200` `{"step", "report", "diff"}` where `diff` is a [`ziggy_core::ReportDiff`] against the previous step (`null` on the first) — `404` unknown session, `422` engine rejection |
//! | `DELETE /sessions/{id}` | — | `200` `{"deleted": <id>}` — `404` unknown session. Frees the session slot and releases its table pin |
//! | `GET /tombstones` | — | `200` `{"tombstones":[{"table","ts"},…]}` — the HLC-stamped delete set, consumed by the fleet repair loop so backends that missed a delete cannot resurrect the table; stray-GC tombstones (`DELETE …?stray=true`) are withheld |
//!
//! With [`ServeOptions::data_dir`] unset, CSV-ingested tables retain
//! their source text in memory for the export route (the fleet repair
//! loop replicates the *original* bytes so fingerprints match across
//! replicas) — roughly doubling a table's footprint. With the
//! durability tier on, the retained copy is dropped and exports are
//! read back out of the write-ahead log's ingest records instead: the
//! bytes already on disk for crash recovery do double duty. Every
//! mutation (ingest, delete, session create/step/delete) is logged
//! before it is acknowledged, per [`ServeOptions::durability`]
//! (`fsync` per-op / `batch` group commit / `async` write-to-OS), and
//! boot replays the newest snapshot plus the log tail — tables,
//! tombstones, and sessions all come back, and replayed reports are
//! byte-identical (same `ETag`s) because wire bytes are a pure function
//! of (table, configuration, query).
//!
//! Table and session counts are capped
//! ([`registry::MAX_TABLES`], [`sessions::MAX_SESSIONS`]; `409` beyond
//! them). The caps bound *live* state: the DELETE routes free slots, so
//! long-running servers do not exhaust them from lifetime churn, and
//! sessions idle past [`ServeOptions::session_ttl`] are evicted (counted
//! as `sessions_expired` in `/metrics`).
//!
//! With [`ServeOptions::rate_limit`] set, each client IP gets a token
//! bucket of that many requests/second (equal burst); beyond it requests
//! are answered `429` with a `Retry-After` header. `GET /healthz` is
//! exempt. With [`ServeOptions::access_log`] set, every request emits one
//! structured JSON line to stderr ([`logging::AccessLog`]).
//!
//! Characterize responses are byte-for-byte the engine's serialized
//! report *with stage timings zeroed*: timings describe one build's
//! wall clock, so they ride along as a side channel (the struct form,
//! `/metrics`) instead of the wire bytes. The wire form is therefore a
//! pure function of (table, configuration, query) — any server, any
//! process, any fleet replica produces identical bytes and an identical
//! `ETag`, which is what makes the tag a strong validator that survives
//! replica rotation and failover (a conditional request revalidates
//! `304` against whichever replica answers).
//!
//! Failed session steps (`4xx`/`422`) do not enter the session history,
//! matching [`ziggy_core::ExplorationSession`] semantics.
//!
//! # Concurrency model
//!
//! * A fixed worker-thread pool serves keep-alive connections from a
//!   blocking accept loop ([`http::Server`]); no async runtime.
//! * [`registry::TableRegistry`] and [`sessions::SessionManager`] use
//!   `parking_lot::RwLock` maps of `Arc` entries: lookups take shared
//!   read locks, and the engine itself is only `&self` — concurrent
//!   characterizations of one table proceed in parallel, sharing the
//!   per-table [`ziggy_store::StatsCache`].
//! * Session steps lock only their own session's history; the engine
//!   call happens outside that lock.
//!
//! # Example
//!
//! ```
//! use ziggy_serve::{serve, ServeOptions};
//! use ziggy_serve::http::request_once;
//!
//! let server = serve("127.0.0.1:0", ServeOptions::default()).unwrap();
//! let (status, body) =
//!     request_once(server.local_addr(), "GET", "/healthz", None).unwrap();
//! assert_eq!(status, 200);
//! assert!(body.contains(r#""status":"ok""#));
//! server.shutdown();
//! ```

pub mod http;
pub mod json;
pub mod limit;
pub mod logging;
pub mod metrics;
pub mod registry;
pub mod router;
pub mod sessions;

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ziggy_core::ZiggyConfig;
use ziggy_durable::{DurableLog, DurableOptions};
use ziggy_obs::span::{self, DEFAULT_TRACE_CAPACITY, SPAN_CONTEXT_HEADER};
use ziggy_obs::trace::{mint_trace_id, sanitize_trace_id, TRACE_HEADER};
use ziggy_obs::FlightRecorder;

pub use http::{Client, Request, Response, Server};
pub use json::ApiError;
pub use limit::RateLimiter;
pub use logging::AccessLog;
pub use metrics::Metrics;
pub use registry::{fnv1a_64, valid_table_name, TableEntry, TableRegistry};
pub use router::{route, ServeState};
pub use sessions::{SessionManager, StepOutcome};
pub use ziggy_durable::DurabilityMode;

/// Options for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Worker threads (default: available parallelism, at least 2 so a
    /// slow characterization cannot head-of-line-block health checks).
    pub threads: usize,
    /// Engine configuration applied to every ingested table (a request
    /// may override it per characterization via its `config` field).
    pub config: ZiggyConfig,
    /// Emit one structured JSON access-log line per request to stderr.
    pub access_log: bool,
    /// Append access-log lines to this file instead of stderr (implies
    /// logging even when `access_log` is false). Multi-process tests
    /// read trace ids back out of it.
    pub access_log_path: Option<PathBuf>,
    /// Per-client token-bucket rate limit (sustained requests/second,
    /// equal burst); `None` disables limiting. `GET /healthz` is always
    /// exempt so fleet health probes cannot be throttled.
    pub rate_limit: Option<u32>,
    /// Idle TTL for exploration sessions; `None` keeps them until
    /// explicitly deleted. Defaults to one hour.
    pub session_ttl: Option<Duration>,
    /// Durable-log directory. `Some` turns the durability tier on: boot
    /// replays the newest snapshot plus the log tail (tables, delete
    /// tombstones, sessions), every subsequent mutation is WAL'd before
    /// it is acknowledged, and CSV exports are served from the log
    /// instead of a retained in-memory copy. `None` (the default) keeps
    /// the original all-in-memory behavior.
    pub data_dir: Option<PathBuf>,
    /// How hard an acknowledged write is (`--durability`); only
    /// meaningful with `data_dir` set.
    pub durability: DurabilityMode,
    /// Snapshot after this many log records (0 disables snapshots;
    /// segments then grow until restart). Only meaningful with
    /// `data_dir` set.
    pub snapshot_every: u64,
    /// Slow-query threshold in milliseconds (`--slow-ms`): requests at
    /// or past it are pinned in the flight recorder and emit one
    /// slow-query log line with their span breakdown.
    pub slow_ms: u64,
}

impl Default for ServeOptions {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .max(2),
            config: ZiggyConfig::default(),
            access_log: false,
            access_log_path: None,
            rate_limit: None,
            session_ttl: Some(Duration::from_secs(3600)),
            data_dir: None,
            durability: DurabilityMode::default(),
            snapshot_every: DurableOptions::default().snapshot_every,
            slow_ms: 250,
        }
    }
}

/// A running characterization service.
pub struct ServerHandle {
    server: Server,
    state: Arc<ServeState>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The shared state, for in-process inspection (tests, benchmarks)
    /// or pre-loading tables before traffic arrives.
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Stops the server and joins its threads.
    pub fn shutdown(self) {
        self.server.shutdown();
    }
}

/// Opens the durable log in `dir`, replays snapshot + tail into the
/// registry and session manager, and attaches the log so subsequent
/// mutations are persisted. Replayed state that no longer applies (a
/// table whose CSV the current parser rejects, a session whose table is
/// gone) is skipped with a stderr note, never fatal: a backend must
/// boot with whatever subset of its state is still valid.
fn boot_durable(
    state: &ServeState,
    dir: &std::path::Path,
    mode: DurabilityMode,
    snapshot_every: u64,
) -> io::Result<Arc<DurableLog>> {
    let opts = DurableOptions {
        mode,
        snapshot_every,
        ..DurableOptions::default()
    };
    let (log, replay) = DurableLog::open(dir, opts)?;
    let log = Arc::new(log);
    // Attach before restoring so restored tables serve CSV exports from
    // the log (restore_table requires it).
    state.registry.attach_durable(Arc::clone(&log));
    for t in &replay.state.tables {
        if let Err(e) =
            state
                .registry
                .restore_table(&t.name, &t.csv, t.fingerprint, t.ts, state.config.clone())
        {
            eprintln!("ziggy-serve: replay skipped table `{}`: {e}", t.name);
        }
    }
    for (name, ts, stray) in &replay.state.tombstones {
        state.registry.restore_tombstone(name, *ts, *stray);
    }
    for s in &replay.state.sessions {
        match state.registry.get(&s.table) {
            Ok(entry) => {
                state.sessions.restore(s.id, entry, &s.queries, s.steps);
            }
            Err(_) => {
                eprintln!(
                    "ziggy-serve: replay skipped session {} (table `{}` gone)",
                    s.id, s.table
                );
            }
        }
    }
    Ok(log)
}

/// Binds `addr` and starts serving the characterization API.
pub fn serve(addr: impl ToSocketAddrs, options: ServeOptions) -> io::Result<ServerHandle> {
    let mut state = ServeState::with_config(options.config);
    state.recorder = Arc::new(FlightRecorder::new(
        DEFAULT_TRACE_CAPACITY,
        options.slow_ms.saturating_mul(1000),
    ));
    let state = Arc::new(state);
    state.sessions.set_ttl(options.session_ttl);
    if let Some(dir) = &options.data_dir {
        boot_durable(&state, dir, options.durability, options.snapshot_every)?;
    }
    let limiter = options.rate_limit.map(RateLimiter::new);
    let log = Arc::new(match &options.access_log_path {
        Some(path) => AccessLog::to_file(path)?,
        None if options.access_log => AccessLog::stderr(),
        None => AccessLog::disabled(),
    });
    let handler_state = Arc::clone(&state);
    let handler_log = Arc::clone(&log);
    // Rejections written below the handler (over-capacity 503, malformed
    // 400) never reach the closure above, so the HTTP layer reports them
    // here — every response lands in the same access log.
    let edge_log = Arc::clone(&log);
    let edge: http::EdgeObserver = Arc::new(move |status: u16, trace: &str| {
        edge_log.log("-", "-", status, 0.0, Some(trace), None);
    });
    let server = Server::start_observed(
        addr,
        options.threads,
        Arc::new(move |req: &Request| {
            let started = Instant::now();
            // A fleet hop's X-Span-Context wins (it names the trace AND
            // the remote parent span); a bare well-formed X-Request-Id
            // still names the trace; mint one otherwise.
            let span_ctx: Option<(String, String)> = req
                .header(SPAN_CONTEXT_HEADER)
                .and_then(span::parse_span_context)
                .map(|(t, p)| (t.to_string(), p.to_string()));
            let trace: String = match &span_ctx {
                Some((t, _)) => t.clone(),
                None => req
                    .header(TRACE_HEADER)
                    .and_then(sanitize_trace_id)
                    .map(str::to_string)
                    .unwrap_or_else(mint_trace_id),
            };
            let parent = span_ctx.as_ref().map(|(_, p)| p.as_str());
            let mut root = handler_state.recorder.root(&trace, parent, "serve.request");
            root.attr("method", req.method.clone());
            root.attr("path", req.path.clone());
            let key = metrics::route_key(&req.method, &req.path);
            root.attr("route", key);
            let response = {
                let _handler = span::child("serve.handler");
                throttle(&handler_state, limiter.as_ref(), req)
                    .unwrap_or_else(|| route(&handler_state, req))
            };
            root.attr("status", response.status.to_string());
            root.set_error(response.status >= 400);
            drop(root); // Commits the trace to the flight recorder.
            let elapsed = started.elapsed();
            let elapsed_us = elapsed.as_micros().min(u64::MAX as u128) as u64;
            handler_state
                .metrics
                .route_latency
                .record_us_traced(key, elapsed_us, &trace);
            if elapsed_us >= handler_state.recorder.slow_us() {
                if let Some(entry) = handler_state.recorder.trace(&trace) {
                    eprintln!("{}", logging::slow_query_line(&entry));
                }
            }
            handler_log.log(
                &req.method,
                &req.path,
                response.status,
                elapsed.as_secs_f64() * 1e3,
                Some(&trace),
                None,
            );
            response.with_header(TRACE_HEADER, trace)
        }),
        Some(edge),
    )?;
    Ok(ServerHandle { server, state })
}

/// Applies the per-client rate limit, returning the 429 to send when the
/// client is over budget. Health checks are exempt: a throttled client
/// must still look *alive* to the fleet's ring prober, just busy.
fn throttle(state: &ServeState, limiter: Option<&RateLimiter>, req: &Request) -> Option<Response> {
    let limiter = limiter?;
    if req.path == "/healthz" {
        return None;
    }
    let client = req.peer.map_or(limit::ANONYMOUS_CLIENT, |p| p.ip());
    match limiter.try_acquire(client) {
        Ok(()) => None,
        Err(retry_after) => {
            state.metrics.rate_limited.inc();
            Some(
                Response::new(429, r#"{"error":"rate limit exceeded"}"#)
                    .with_header("Retry-After", retry_after.to_string()),
            )
        }
    }
}
