//! Server-side exploration sessions.
//!
//! A session pins a table and accumulates its report history so each step
//! can be diffed against the previous one ([`ziggy_core::diff_reports`]),
//! mirroring the library's `ExplorationSession` across the network
//! boundary. Sessions do **not** own an engine: they borrow the table's
//! shared engine from the registry, so session traffic enjoys the same
//! once-per-table statistics as direct characterizations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use ziggy_core::{diff_reports, CharacterizationReport, ReportDiff};

use crate::json::ApiError;
use crate::registry::TableEntry;

/// Upper bound on live sessions; creation beyond it is refused (409).
/// The cap bounds *live* state: deleting a session (`DELETE
/// /sessions/{id}`) frees its slot and releases its table pin.
pub const MAX_SESSIONS: usize = 4096;

/// Cap on per-session history length; older reports are dropped so
/// long-lived sessions cannot grow without bound.
const MAX_HISTORY: usize = 64;

/// One client's exploration state.
pub struct Session {
    table: Arc<TableEntry>,
    history: Vec<CharacterizationReport>,
    /// Successful steps taken over the session's lifetime (monotonic —
    /// unlike `history.len()`, which is capped at [`MAX_HISTORY`]).
    steps_taken: usize,
}

impl Session {
    /// The table this session explores.
    pub fn table(&self) -> &Arc<TableEntry> {
        &self.table
    }

    /// Steps taken so far.
    pub fn len(&self) -> usize {
        self.steps_taken
    }

    /// True before the first step.
    pub fn is_empty(&self) -> bool {
        self.steps_taken == 0
    }
}

/// The outcome of one session step.
#[derive(Debug)]
pub struct StepOutcome {
    /// 1-based index of this step in the session.
    pub step: usize,
    /// The fresh report.
    pub report: CharacterizationReport,
    /// Diff against the previous step (`None` on the first step).
    pub diff: Option<ReportDiff>,
}

/// Thread-safe id → [`Session`] map.
#[derive(Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
}

impl SessionManager {
    /// An empty manager.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a session over `table`, returning its id.
    pub fn create(&self, table: Arc<TableEntry>) -> Result<u64, ApiError> {
        let mut sessions = self.sessions.write();
        if sessions.len() >= MAX_SESSIONS {
            return Err(ApiError::conflict(format!(
                "session limit reached ({MAX_SESSIONS})"
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        sessions.insert(
            id,
            Arc::new(Mutex::new(Session {
                table,
                history: Vec::new(),
                steps_taken: 0,
            })),
        );
        Ok(id)
    }

    /// Closes a session, freeing its slot under [`MAX_SESSIONS`] and
    /// dropping its pin on the table entry. A step racing the delete on
    /// another thread finishes normally on its own `Arc`.
    pub fn remove(&self, id: u64) -> Result<(), ApiError> {
        self.sessions
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))
    }

    /// Closes every session pinned to `entry`, returning how many were
    /// closed. Called when a table is dropped, so deleted tables cannot
    /// stay resident behind abandoned sessions.
    pub fn remove_for_table(&self, entry: &Arc<TableEntry>) -> usize {
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        sessions.retain(|_, s| !Arc::ptr_eq(&s.lock().table, entry));
        before - sessions.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }

    /// Runs one step: characterize `query` on the session's shared
    /// engine, diff against the previous report, append to history.
    ///
    /// Only the history bookkeeping holds the session lock; the engine
    /// call itself is lock-free with respect to other sessions, so
    /// concurrent clients on different sessions (even on the same table)
    /// proceed in parallel.
    pub fn step(&self, id: u64, query: &str) -> Result<StepOutcome, ApiError> {
        let session = self
            .sessions
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?;

        // Characterize outside the session lock: failed steps must not
        // pollute history (matching `ExplorationSession::explore`).
        let table = session.lock().table.clone();
        let report = table.engine().characterize(query)?;

        let mut s = session.lock();
        let diff = s.history.last().map(|prev| diff_reports(prev, &report));
        s.history.push(report.clone());
        if s.history.len() > MAX_HISTORY {
            s.history.remove(0);
        }
        s.steps_taken += 1;
        Ok(StepOutcome {
            step: s.steps_taken,
            report,
            diff,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TableRegistry;
    use ziggy_core::ZiggyConfig;

    fn registry_with_table() -> (TableRegistry, Arc<TableEntry>) {
        let mut csv = String::from("key,hot,cold\n");
        for i in 0..200 {
            csv.push_str(&format!(
                "{},{},{}\n",
                i,
                if i >= 150 { 25 } else { 0 } + (i * 13) % 7,
                (i * 7919) % 31
            ));
        }
        let r = TableRegistry::new();
        let e = r.insert_csv("t", &csv, ZiggyConfig::default()).unwrap();
        (r, e)
    }

    #[test]
    fn first_step_has_no_diff() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 1);
        assert!(out.diff.is_none());
        assert!(!out.report.views.is_empty());
    }

    #[test]
    fn identical_steps_are_stable() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        m.step(id, "key >= 150").unwrap();
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 2);
        assert!(out.diff.unwrap().is_stable());
    }

    #[test]
    fn failed_steps_do_not_pollute_history() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        m.step(id, "key >= 150").unwrap();
        assert_eq!(m.step(id, "nonsense >>>").unwrap_err().status, 422);
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 2);
    }

    #[test]
    fn step_counter_survives_history_truncation() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        let mut last = 0;
        for _ in 0..(super::MAX_HISTORY + 3) {
            last = m.step(id, "key >= 150").unwrap().step;
        }
        assert_eq!(last, super::MAX_HISTORY + 3, "step must stay monotonic");
    }

    #[test]
    fn unknown_session_404s() {
        let m = SessionManager::new();
        assert_eq!(m.step(99, "x > 1").unwrap_err().status, 404);
        assert_eq!(m.remove(99).unwrap_err().status, 404);
    }

    #[test]
    fn remove_for_table_closes_only_that_tables_sessions() {
        let (r, entry) = registry_with_table();
        let other = r
            .insert_csv("u", "a,b\n1,2\n3,4\n", ZiggyConfig::default())
            .unwrap();
        let m = SessionManager::new();
        m.create(Arc::clone(&entry)).unwrap();
        m.create(Arc::clone(&entry)).unwrap();
        let kept = m.create(other).unwrap();
        assert_eq!(m.remove_for_table(&entry), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove_for_table(&entry), 0);
        m.remove(kept).unwrap();
    }

    #[test]
    fn remove_frees_slot_without_reusing_ids() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(Arc::clone(&entry)).unwrap();
        m.step(id, "key >= 150").unwrap();
        assert_eq!(m.len(), 1);
        m.remove(id).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.step(id, "key >= 150").unwrap_err().status, 404);
        let id2 = m.create(entry).unwrap();
        assert_ne!(id, id2, "ids must stay unique across removals");
    }

    #[test]
    fn sessions_share_the_table_engine() {
        let (r, entry) = registry_with_table();
        let m = SessionManager::new();
        let a = m.create(Arc::clone(&entry)).unwrap();
        let b = m.create(entry).unwrap();
        m.step(a, "key >= 150").unwrap();
        let misses_after_first = r.get("t").unwrap().cache().counters().misses;
        m.step(b, "key >= 150").unwrap();
        let misses_after_second = r.get("t").unwrap().cache().counters().misses;
        // The second session's identical query is fully served from the
        // shared cache: no new whole-table scans.
        assert_eq!(misses_after_first, misses_after_second);
    }
}
