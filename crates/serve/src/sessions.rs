//! Server-side exploration sessions.
//!
//! A session pins a table and accumulates its report history so each step
//! can be diffed against the previous one ([`ziggy_core::diff_reports`]),
//! mirroring the library's `ExplorationSession` across the network
//! boundary. Sessions do **not** own an engine: they borrow the table's
//! shared engine from the registry, so session traffic enjoys the same
//! once-per-table statistics as direct characterizations.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};
use ziggy_core::{diff_reports, CharacterizationReport, ReportDiff};

use crate::json::ApiError;
use crate::registry::TableEntry;

/// Upper bound on live sessions; creation beyond it is refused (409).
/// The cap bounds *live* state: deleting a session (`DELETE
/// /sessions/{id}`) frees its slot and releases its table pin, and
/// sessions idle past the manager's TTL are evicted on sweep.
pub const MAX_SESSIONS: usize = 4096;

/// Cap on per-session history length; older reports are dropped so
/// long-lived sessions cannot grow without bound. (Matches
/// `ziggy_durable::MAX_SESSION_QUERIES` so a restored session replays
/// exactly the history a live one would hold.)
pub const MAX_HISTORY: usize = 64;

/// One client's exploration state.
pub struct Session {
    table: Arc<TableEntry>,
    history: Vec<CharacterizationReport>,
    /// The predicate text of the retained history steps, oldest first
    /// (capped alongside `history`). This is what makes a session
    /// *replayable*: the durable log and the fleet's failover path both
    /// re-step these queries to rebuild byte-identical reports.
    queries: Vec<String>,
    /// Successful steps taken over the session's lifetime (monotonic —
    /// unlike `history.len()`, which is capped at [`MAX_HISTORY`]).
    steps_taken: usize,
    /// Last creation/step activity; sessions idle past the manager's TTL
    /// are evicted by [`SessionManager::sweep_expired`].
    last_used: Instant,
}

impl Session {
    /// The table this session explores.
    pub fn table(&self) -> &Arc<TableEntry> {
        &self.table
    }

    /// Steps taken so far.
    pub fn len(&self) -> usize {
        self.steps_taken
    }

    /// True before the first step.
    pub fn is_empty(&self) -> bool {
        self.steps_taken == 0
    }
}

/// The outcome of one session step.
#[derive(Debug)]
pub struct StepOutcome {
    /// 1-based index of this step in the session.
    pub step: usize,
    /// The report for this step.
    pub report: CharacterizationReport,
    /// Diff against the previous step (`None` on the first step).
    pub diff: Option<ReportDiff>,
    /// Whether the report was built by this step (false = served from
    /// the engine's report cache); the router meters stage timings only
    /// for fresh builds.
    pub fresh: bool,
}

/// Thread-safe id → [`Session`] map with optional idle-TTL eviction.
#[derive(Default)]
pub struct SessionManager {
    next_id: AtomicU64,
    sessions: RwLock<HashMap<u64, Arc<Mutex<Session>>>>,
    /// Idle TTL in milliseconds; 0 disables expiry. Atomic so the serve
    /// layer can configure it on the shared state after construction.
    ttl_ms: AtomicU64,
    /// Sessions evicted by TTL sweeps (reported as `sessions_expired`).
    expired: AtomicU64,
    /// When the last sweep ran (`None` = never); sweeps are throttled so
    /// the hot step path does not pay an O(sessions) exclusive-lock scan
    /// per request.
    last_sweep: Mutex<Option<Instant>>,
}

impl SessionManager {
    /// An empty manager (expiry disabled until [`Self::set_ttl`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or, with `None`, disables) the idle TTL. Sub-millisecond
    /// TTLs clamp up to 1ms so "enabled" is never silently rounded to
    /// disabled.
    pub fn set_ttl(&self, ttl: Option<Duration>) {
        let ms = ttl.map_or(0, |d| (d.as_millis() as u64).max(1));
        self.ttl_ms.store(ms, Ordering::Relaxed);
    }

    /// The configured idle TTL, if any.
    pub fn ttl(&self) -> Option<Duration> {
        match self.ttl_ms.load(Ordering::Relaxed) {
            0 => None,
            ms => Some(Duration::from_millis(ms)),
        }
    }

    /// Total sessions evicted by TTL sweeps over the manager's lifetime.
    pub fn expired_total(&self) -> u64 {
        self.expired.load(Ordering::Relaxed)
    }

    /// Evicts every session idle past the TTL, returning how many were
    /// dropped. Runs lazily from `create`/`step` (and `/metrics`), so no
    /// background thread is needed: an idle server holds at most a
    /// sweep's worth of stale sessions until the next request.
    ///
    /// Sweeps are throttled to ~8 per TTL (at least 10ms apart): a full
    /// sweep takes the map write lock and locks every session, which
    /// must not be paid per step on a busy server. The skipped calls
    /// return 0; expiry granularity is the throttle interval, which is
    /// negligible against any real TTL.
    pub fn sweep_expired(&self) -> usize {
        let Some(ttl) = self.ttl() else { return 0 };
        let interval = (ttl / 8).max(Duration::from_millis(10));
        {
            let mut last = self.last_sweep.lock();
            let now = Instant::now();
            match *last {
                Some(prev) if now.duration_since(prev) < interval => return 0,
                _ => *last = Some(now),
            }
        }
        let now = Instant::now();
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        // try_lock, never lock: blocking on a session's mutex here —
        // while holding the map write lock — would stall every other
        // session behind one slow step. A locked session is in use
        // right now, which is the opposite of idle: keep it.
        sessions.retain(|_, s| match s.try_lock() {
            Some(session) => now.duration_since(session.last_used) < ttl,
            None => true,
        });
        let dropped = before - sessions.len();
        self.expired.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Opens a session over `table`, returning its id.
    pub fn create(&self, table: Arc<TableEntry>) -> Result<u64, ApiError> {
        self.sweep_expired();
        let mut sessions = self.sessions.write();
        if sessions.len() >= MAX_SESSIONS {
            return Err(ApiError::conflict(format!(
                "session limit reached ({MAX_SESSIONS})"
            )));
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        sessions.insert(
            id,
            Arc::new(Mutex::new(Session {
                table,
                history: Vec::new(),
                queries: Vec::new(),
                steps_taken: 0,
                last_used: Instant::now(),
            })),
        );
        Ok(id)
    }

    /// Re-creates a session under a known id (durable-log replay and
    /// fleet failover). The retained `queries` are re-stepped through
    /// the table's shared engine so the rebuilt history — and therefore
    /// the next diff — is byte-identical to what the lost process held;
    /// `steps` restores the monotonic lifetime counter, which may exceed
    /// `queries.len()` when history was truncated. Queries that no
    /// longer parse (config drift) are skipped rather than fatal.
    /// Returns how many steps were replayed.
    pub fn restore(
        &self,
        id: u64,
        table: Arc<TableEntry>,
        queries: &[String],
        steps: u64,
    ) -> usize {
        // Keep future `create` ids above every restored id.
        self.next_id.fetch_max(id, Ordering::Relaxed);
        let mut history = Vec::new();
        let mut kept = Vec::new();
        for q in queries.iter().take(MAX_HISTORY) {
            if let Ok(outcome) = table.engine().characterize_cached(q) {
                history.push(outcome.cached.report_with_query(q));
                kept.push(q.clone());
            }
        }
        let replayed = history.len();
        self.sessions.write().insert(
            id,
            Arc::new(Mutex::new(Session {
                table,
                history,
                queries: kept,
                steps_taken: steps as usize,
                last_used: Instant::now(),
            })),
        );
        replayed
    }

    /// A consistent copy of every live session's replayable state:
    /// `(id, table name, lifetime steps, retained queries)`. Used by
    /// snapshot writers; sessions busy in a step are captured as of
    /// whenever their lock frees (the WAL tail covers the in-flight
    /// step either way).
    pub fn snapshot_sessions(&self) -> Vec<(u64, String, u64, Vec<String>)> {
        let sessions: Vec<(u64, Arc<Mutex<Session>>)> = self
            .sessions
            .read()
            .iter()
            .map(|(id, s)| (*id, Arc::clone(s)))
            .collect();
        let mut out: Vec<(u64, String, u64, Vec<String>)> = sessions
            .into_iter()
            .map(|(id, s)| {
                let s = s.lock();
                (
                    id,
                    s.table.name().to_string(),
                    s.steps_taken as u64,
                    s.queries.clone(),
                )
            })
            .collect();
        out.sort_by_key(|(id, ..)| *id);
        out
    }

    /// Closes a session, freeing its slot under [`MAX_SESSIONS`] and
    /// dropping its pin on the table entry. A step racing the delete on
    /// another thread finishes normally on its own `Arc`.
    pub fn remove(&self, id: u64) -> Result<(), ApiError> {
        self.sessions
            .write()
            .remove(&id)
            .map(|_| ())
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))
    }

    /// Closes every session pinned to `entry`, returning how many were
    /// closed. Called when a table is dropped, so deleted tables cannot
    /// stay resident behind abandoned sessions.
    pub fn remove_for_table(&self, entry: &Arc<TableEntry>) -> usize {
        let mut sessions = self.sessions.write();
        let before = sessions.len();
        sessions.retain(|_, s| !Arc::ptr_eq(&s.lock().table, entry));
        before - sessions.len()
    }

    /// Number of live sessions.
    pub fn len(&self) -> usize {
        self.sessions.read().len()
    }

    /// True when no sessions are live.
    pub fn is_empty(&self) -> bool {
        self.sessions.read().is_empty()
    }

    /// Runs one step: characterize `query` on the session's shared
    /// engine, diff against the previous report, append to history.
    ///
    /// Only the history bookkeeping holds the session lock; the engine
    /// call itself is lock-free with respect to other sessions, so
    /// concurrent clients on different sessions (even on the same table)
    /// proceed in parallel.
    pub fn step(&self, id: u64, query: &str) -> Result<StepOutcome, ApiError> {
        self.sweep_expired();
        let session = self
            .sessions
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no session {id}")))?;

        // Characterize outside the session lock: failed steps must not
        // pollute history (matching `ExplorationSession::explore`).
        // Session traffic rides the same report cache as direct
        // characterizations, so a step repeating a predicate any client
        // has asked before skips the pipeline.
        let table = session.lock().table.clone();
        let outcome = table.engine().characterize_cached(query)?;
        let report = outcome.cached.report_with_query(query);

        let mut s = session.lock();
        let diff = s.history.last().map(|prev| diff_reports(prev, &report));
        s.history.push(report.clone());
        s.queries.push(query.to_string());
        if s.history.len() > MAX_HISTORY {
            s.history.remove(0);
            s.queries.remove(0);
        }
        s.steps_taken += 1;
        s.last_used = Instant::now();
        Ok(StepOutcome {
            step: s.steps_taken,
            report,
            diff,
            fresh: outcome.fresh,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::TableRegistry;
    use ziggy_core::ZiggyConfig;

    fn registry_with_table() -> (TableRegistry, Arc<TableEntry>) {
        let mut csv = String::from("key,hot,cold\n");
        for i in 0..200 {
            csv.push_str(&format!(
                "{},{},{}\n",
                i,
                if i >= 150 { 25 } else { 0 } + (i * 13) % 7,
                (i * 7919) % 31
            ));
        }
        let r = TableRegistry::new();
        let e = r.insert_csv("t", &csv, ZiggyConfig::default()).unwrap();
        (r, e)
    }

    #[test]
    fn first_step_has_no_diff() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 1);
        assert!(out.diff.is_none());
        assert!(!out.report.views.is_empty());
    }

    #[test]
    fn identical_steps_are_stable() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        m.step(id, "key >= 150").unwrap();
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 2);
        assert!(out.diff.unwrap().is_stable());
    }

    #[test]
    fn failed_steps_do_not_pollute_history() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        m.step(id, "key >= 150").unwrap();
        assert_eq!(m.step(id, "nonsense >>>").unwrap_err().status, 422);
        let out = m.step(id, "key >= 150").unwrap();
        assert_eq!(out.step, 2);
    }

    #[test]
    fn step_counter_survives_history_truncation() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(entry).unwrap();
        let mut last = 0;
        for _ in 0..(super::MAX_HISTORY + 3) {
            last = m.step(id, "key >= 150").unwrap().step;
        }
        assert_eq!(last, super::MAX_HISTORY + 3, "step must stay monotonic");
    }

    #[test]
    fn unknown_session_404s() {
        let m = SessionManager::new();
        assert_eq!(m.step(99, "x > 1").unwrap_err().status, 404);
        assert_eq!(m.remove(99).unwrap_err().status, 404);
    }

    #[test]
    fn remove_for_table_closes_only_that_tables_sessions() {
        let (r, entry) = registry_with_table();
        let other = r
            .insert_csv("u", "a,b\n1,2\n3,4\n", ZiggyConfig::default())
            .unwrap();
        let m = SessionManager::new();
        m.create(Arc::clone(&entry)).unwrap();
        m.create(Arc::clone(&entry)).unwrap();
        let kept = m.create(other).unwrap();
        assert_eq!(m.remove_for_table(&entry), 2);
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove_for_table(&entry), 0);
        m.remove(kept).unwrap();
    }

    #[test]
    fn remove_frees_slot_without_reusing_ids() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        let id = m.create(Arc::clone(&entry)).unwrap();
        m.step(id, "key >= 150").unwrap();
        assert_eq!(m.len(), 1);
        m.remove(id).unwrap();
        assert!(m.is_empty());
        assert_eq!(m.step(id, "key >= 150").unwrap_err().status, 404);
        let id2 = m.create(entry).unwrap();
        assert_ne!(id, id2, "ids must stay unique across removals");
    }

    #[test]
    fn idle_sessions_expire_past_ttl() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        m.set_ttl(Some(Duration::from_millis(30)));
        let stale = m.create(Arc::clone(&entry)).unwrap();
        std::thread::sleep(Duration::from_millis(60));
        // A fresh session created now survives the sweep the creation
        // itself triggers; the stale one is evicted by it.
        let fresh = m.create(Arc::clone(&entry)).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.expired_total(), 1);
        assert_eq!(m.step(stale, "key >= 150").unwrap_err().status, 404);
        // Stepping refreshes the idle clock.
        std::thread::sleep(Duration::from_millis(20));
        m.step(fresh, "key >= 150").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        m.step(fresh, "key >= 150").unwrap();
        assert_eq!(m.expired_total(), 1, "active sessions must not expire");
    }

    #[test]
    fn expiry_disabled_by_default() {
        let (_r, entry) = registry_with_table();
        let m = SessionManager::new();
        assert!(m.ttl().is_none());
        m.create(entry).unwrap();
        assert_eq!(m.sweep_expired(), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn sessions_share_the_table_engine() {
        let (r, entry) = registry_with_table();
        let m = SessionManager::new();
        let a = m.create(Arc::clone(&entry)).unwrap();
        let b = m.create(entry).unwrap();
        m.step(a, "key >= 150").unwrap();
        let misses_after_first = r.get("t").unwrap().cache().counters().misses;
        m.step(b, "key >= 150").unwrap();
        let misses_after_second = r.get("t").unwrap().cache().counters().misses;
        // The second session's identical query is fully served from the
        // shared cache: no new whole-table scans.
        assert_eq!(misses_after_first, misses_after_second);
    }
}
