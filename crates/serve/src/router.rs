//! Dispatches parsed HTTP requests to the API handlers.

use std::sync::Arc;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use serde_json::Value;
use ziggy_core::{StageTimings, ZiggyConfig};
use ziggy_durable::Record;
use ziggy_obs::span::{self, DEFAULT_TRACE_CAPACITY};
use ziggy_obs::{FlightRecorder, Span, TraceEntry};

use crate::http::{Request, Response};
use crate::json::{parse_object, required_str, ApiError};
use crate::metrics::Metrics;
use crate::registry::TableRegistry;
use crate::sessions::SessionManager;

/// Default slow-trace threshold (µs): traces at or past it are pinned
/// in the flight recorder and emitted to the slow-query log.
pub const DEFAULT_SLOW_US: u64 = 250_000;

/// Shared server state: registry, sessions, metrics, engine defaults.
pub struct ServeState {
    /// Ingested tables, one shared engine each.
    pub registry: TableRegistry,
    /// Live exploration sessions.
    pub sessions: SessionManager,
    /// Request/timing counters.
    pub metrics: Metrics,
    /// Engine configuration applied to every ingested table.
    pub config: ZiggyConfig,
    /// Process start, for the `/healthz` uptime and the uptime gauge.
    pub started: Instant,
    /// The per-process flight recorder behind `/debug/traces`.
    pub recorder: Arc<FlightRecorder>,
}

impl Default for ServeState {
    fn default() -> Self {
        Self {
            registry: TableRegistry::default(),
            sessions: SessionManager::default(),
            metrics: Metrics::default(),
            config: ZiggyConfig::default(),
            started: Instant::now(),
            recorder: Arc::new(FlightRecorder::new(DEFAULT_TRACE_CAPACITY, DEFAULT_SLOW_US)),
        }
    }
}

impl ServeState {
    /// State with the given engine configuration.
    pub fn with_config(config: ZiggyConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }
}

fn json_response(status: u16, value: &Value) -> Response {
    Response::new(
        status,
        serde_json::to_string(value).expect("value trees always render"),
    )
}

/// Routes one request; this is the server's single entry point.
pub fn route(state: &ServeState, req: &Request) -> Response {
    state.metrics.requests_total.inc();
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    let result = match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => handle_healthz(state),
        ("GET", ["metrics"]) => handle_metrics(state, req),
        ("POST", ["tables"]) => handle_create_table(state, &req.body),
        ("GET", ["tables"]) => handle_list_tables(state),
        ("POST", ["tables", name, "characterize"]) => handle_characterize(state, name, req),
        ("POST", ["tables", name, "rows"]) => handle_append_rows(state, name, &req.body),
        ("GET", ["tables", name, "csv"]) => handle_export_csv(state, name),
        ("PUT", ["tables", name]) => handle_replicate_table(state, name, &req.body),
        ("DELETE", ["tables", name]) => handle_delete_table(state, name, req),
        ("POST", ["sessions"]) => handle_create_session(state, &req.body),
        ("POST", ["sessions", id, "step"]) => handle_session_step(state, id, &req.body),
        ("DELETE", ["sessions", id]) => handle_delete_session(state, id),
        ("GET", ["tombstones"]) => handle_tombstones(state),
        ("GET", ["debug", "traces"]) => handle_list_traces(state, req),
        ("GET", ["debug", "traces", id]) => handle_get_trace(state, id),
        (
            _,
            ["healthz"]
            | ["metrics"]
            | ["tables"]
            | ["tables", _]
            | ["tables", _, "characterize"]
            | ["tables", _, "rows"]
            | ["tables", _, "csv"]
            | ["sessions"]
            | ["sessions", _]
            | ["sessions", _, "step"]
            | ["tombstones"]
            | ["debug", "traces"]
            | ["debug", "traces", _],
        ) => Err(ApiError::method_not_allowed()),
        _ => Err(ApiError::not_found(format!("no route for {}", req.path))),
    };
    // Mutating requests that succeeded may have pushed the log past its
    // snapshot threshold; snapshotting here (not on a timer) keeps the
    // whole serve layer thread-pool-only.
    if result.is_ok() && req.method != "GET" {
        maybe_snapshot(state);
    }
    match result {
        Ok(response) => response,
        Err(e) => {
            state.metrics.errors_total.inc();
            json_response(e.status, &e.body())
        }
    }
}

/// Writes a snapshot when the attached log wants one. The cover LSN is
/// captured *before* the live state is gathered, so records landing in
/// between are both inside the snapshot and replayed after it — every
/// record type is idempotent under re-application (see `ziggy_durable`).
fn maybe_snapshot(state: &ServeState) {
    let Some(log) = state.registry.durable() else {
        return;
    };
    if !log.wants_snapshot() {
        return;
    }
    let Some(cover) = log.begin_snapshot() else {
        return; // Another thread's snapshot is in flight.
    };
    let snap = ziggy_durable::SnapshotState {
        tables: state.registry.snapshot_tables(),
        tombstones: state.registry.tombstones(),
        sessions: state
            .sessions
            .snapshot_sessions()
            .into_iter()
            .map(|(id, table, steps, queries)| ziggy_durable::SessionState {
                id,
                table,
                steps,
                queries,
            })
            .collect(),
    };
    // A failed write is not fatal to the request that triggered it: the
    // log is still intact, segments just don't compact yet.
    let _ = log.write_snapshot(cover, &snap);
}

/// The local delete-tombstone set, consumed by the fleet's repair loop
/// so a backend that missed a delete cannot resurrect the table. Stray
/// garbage-collection tombstones are withheld — they are local
/// clean-ups, not fleet-wide deletes.
fn handle_tombstones(state: &ServeState) -> Result<Response, ApiError> {
    let tombstones = state
        .registry
        .exported_tombstones()
        .into_iter()
        .map(|(table, ts)| {
            Value::Object(vec![
                ("table".into(), Value::String(table)),
                ("ts".into(), Value::Number(serde_json::Number::U(ts))),
            ])
        })
        .collect();
    Ok(json_response(
        200,
        &Value::Object(vec![("tombstones".into(), Value::Array(tombstones))]),
    ))
}

/// One span as JSON, full form (ids, wall-clock, attrs, error flag).
pub fn span_json(s: &Span) -> Value {
    let attrs = s
        .attrs
        .iter()
        .map(|(k, v)| (k.clone(), Value::String(v.clone())))
        .collect();
    Value::Object(vec![
        ("span_id".into(), Value::String(s.span_id.clone())),
        (
            "parent_id".into(),
            match &s.parent_id {
                Some(p) => Value::String(p.clone()),
                None => Value::Null,
            },
        ),
        ("name".into(), Value::String(s.name.clone())),
        (
            "start_unix_us".into(),
            Value::Number(serde_json::Number::U(s.start_unix_us)),
        ),
        (
            "duration_us".into(),
            Value::Number(serde_json::Number::U(s.duration_us)),
        ),
        ("error".into(), Value::Bool(s.error)),
        ("attrs".into(), Value::Object(attrs)),
    ])
}

/// One trace as JSON. The listing form (`with_spans: false`) carries a
/// span *count*; the detail form inlines every span.
pub fn trace_json(entry: &TraceEntry, with_spans: bool) -> Value {
    let mut pairs = vec![
        ("trace_id".into(), Value::String(entry.trace_id.clone())),
        ("root".into(), Value::String(entry.root_name.clone())),
        (
            "route".into(),
            match &entry.route {
                Some(r) => Value::String(r.clone()),
                None => Value::Null,
            },
        ),
        (
            "start_unix_us".into(),
            Value::Number(serde_json::Number::U(entry.start_unix_us)),
        ),
        (
            "duration_us".into(),
            Value::Number(serde_json::Number::U(entry.duration_us)),
        ),
        ("error".into(), Value::Bool(entry.error)),
    ];
    if with_spans {
        pairs.push((
            "spans".into(),
            Value::Array(entry.spans.iter().map(span_json).collect()),
        ));
    } else {
        pairs.push((
            "spans".into(),
            Value::Number(serde_json::Number::U(entry.spans.len() as u64)),
        ));
    }
    Value::Object(pairs)
}

/// `GET /debug/traces` — the flight recorder's committed traces,
/// newest first. `?min_ms=` keeps traces at least that slow, `?route=`
/// keeps one route class, `?errors=1` keeps erroring traces only.
fn handle_list_traces(state: &ServeState, req: &Request) -> Result<Response, ApiError> {
    let min_us = match req.query_param("min_ms") {
        Some(raw) => raw
            .parse::<u64>()
            .map_err(|_| ApiError::bad_request("`min_ms` must be an integer"))?
            .saturating_mul(1000),
        None => 0,
    };
    let route = req.query_param("route");
    let errors_only = req.query_param("errors") == Some("1");
    let traces: Vec<Value> = state
        .recorder
        .recent()
        .iter()
        .filter(|e| e.duration_us >= min_us)
        .filter(|e| route.is_none_or(|r| e.route.as_deref() == Some(r)))
        .filter(|e| !errors_only || e.error)
        .map(|e| trace_json(e, false))
        .collect();
    Ok(json_response(
        200,
        &Value::Object(vec![("traces".into(), Value::Array(traces))]),
    ))
}

/// `GET /debug/traces/{id}` — one trace, spans inlined (the router's
/// fleet handler overlays backend spans on top of this local form).
fn handle_get_trace(state: &ServeState, id: &str) -> Result<Response, ApiError> {
    let entry = state
        .recorder
        .trace(id)
        .ok_or_else(|| ApiError::not_found(format!("no trace `{id}` in the flight recorder")))?;
    Ok(json_response(200, &trace_json(&entry, true)))
}

/// Records the three characterize pipeline stages as spans under
/// `parent`, tiled back from *now* so they line up end-to-end the way
/// the build ran. Only fresh builds get stage spans — a cached report's
/// timings describe someone else's build.
fn record_stage_spans(t: &StageTimings) {
    let Some((recorder, trace, parent)) = span::current_recorder() else {
        return;
    };
    let total = t.preparation_us + t.view_search_us + t.post_processing_us;
    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0);
    let mut start = now.saturating_sub(total);
    for (name, dur) in [
        ("stage.prepare", t.preparation_us),
        ("stage.view_search", t.view_search_us),
        ("stage.post_process", t.post_processing_us),
    ] {
        recorder.record_span(&trace, Some(&parent), name, start, dur, &[], false);
        start += dur;
    }
}

fn handle_healthz(state: &ServeState) -> Result<Response, ApiError> {
    Ok(json_response(
        200,
        &Value::Object(vec![
            ("status".into(), Value::String("ok".into())),
            (
                "uptime_s".into(),
                Value::Number(serde_json::Number::U(state.started.elapsed().as_secs())),
            ),
            (
                "version".into(),
                Value::String(env!("CARGO_PKG_VERSION").into()),
            ),
        ]),
    ))
}

fn handle_metrics(state: &ServeState, req: &Request) -> Result<Response, ApiError> {
    // Sweep first so `sessions_expired` reflects idle sessions even on a
    // server receiving no session traffic.
    state.sessions.sweep_expired();
    if req.query_param("format") == Some("prometheus") {
        let mut doc = state.metrics.to_prometheus();
        doc.counter(
            "ziggy_sessions_expired_total",
            &[],
            state.sessions.expired_total(),
        );
        doc.gauge(
            "ziggy_uptime_seconds",
            &[],
            state.started.elapsed().as_secs_f64(),
        );
        doc.gauge(
            "ziggy_build_info",
            &[("version", env!("CARGO_PKG_VERSION"))],
            1.0,
        );
        if let Some(log) = state.registry.durable() {
            use std::sync::atomic::Ordering;
            let m = log.metrics();
            doc.counter(
                "ziggy_durable_records_total",
                &[],
                m.records.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_fsyncs_total",
                &[],
                m.fsyncs.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_group_commits_total",
                &[],
                m.group_commits.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_snapshots_total",
                &[],
                m.snapshots.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_segments_compacted_total",
                &[],
                m.segments_compacted.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_torn_records_total",
                &[],
                m.torn_records.load(Ordering::Relaxed),
            );
            doc.counter(
                "ziggy_durable_snapshot_checksum_failures_total",
                &[],
                m.snapshot_checksum_failures.load(Ordering::Relaxed),
            );
            doc.gauge("ziggy_durable_async_lag_ms", &[], log.async_lag_ms() as f64);
            doc.gauge("ziggy_durable_segments", &[], log.segment_count() as f64);
            doc.gauge("ziggy_durable_snapshot_lsn", &[], log.snapshot_lsn() as f64);
            doc.gauge(
                "ziggy_durable_replay_records",
                &[],
                m.replay_records.load(Ordering::Relaxed) as f64,
            );
            doc.gauge(
                "ziggy_durable_replay_seconds",
                &[],
                m.replay_us.load(Ordering::Relaxed) as f64 / 1e6,
            );
            doc.gauge(
                "ziggy_durable_mode_info",
                &[("mode", log.mode().as_str())],
                1.0,
            );
            if m.append_latency.count() > 0 {
                doc.histogram_us(
                    "ziggy_durable_append_duration_seconds",
                    &[],
                    &m.append_latency.snapshot(),
                );
            }
            if m.fsync_latency.count() > 0 {
                doc.histogram_us(
                    "ziggy_durable_fsync_duration_seconds",
                    &[],
                    &m.fsync_latency.snapshot(),
                );
            }
        }
        return Ok(Response::new(200, doc.render())
            .with_header("Content-Type", "text/plain; version=0.0.4"));
    }
    let mut body = match state.metrics.to_json() {
        Value::Object(pairs) => pairs,
        _ => unreachable!("metrics render as an object"),
    };
    if let Some((_, Value::Object(requests))) = body.iter_mut().find(|(k, _)| k == "requests") {
        requests.push((
            "sessions_expired".into(),
            Value::Number(serde_json::Number::U(state.sessions.expired_total())),
        ));
    }
    body.push(("tables".into(), Value::Array(state.registry.cache_stats())));
    body.push(("latency_exemplars".into(), state.metrics.exemplars_json()));
    if let Some(log) = state.registry.durable() {
        use std::sync::atomic::Ordering;
        let m = log.metrics();
        let n = |v: u64| Value::Number(serde_json::Number::U(v));
        body.push((
            "durable".into(),
            Value::Object(vec![
                ("mode".into(), Value::String(log.mode().as_str().into())),
                ("records".into(), n(m.records.load(Ordering::Relaxed))),
                ("fsyncs".into(), n(m.fsyncs.load(Ordering::Relaxed))),
                (
                    "group_commits".into(),
                    n(m.group_commits.load(Ordering::Relaxed)),
                ),
                ("snapshots".into(), n(m.snapshots.load(Ordering::Relaxed))),
                (
                    "segments_compacted".into(),
                    n(m.segments_compacted.load(Ordering::Relaxed)),
                ),
                (
                    "torn_records".into(),
                    n(m.torn_records.load(Ordering::Relaxed)),
                ),
                (
                    "snapshot_checksum_failures".into(),
                    n(m.snapshot_checksum_failures.load(Ordering::Relaxed)),
                ),
                ("async_lag_ms".into(), n(log.async_lag_ms())),
                (
                    "replay_records".into(),
                    n(m.replay_records.load(Ordering::Relaxed)),
                ),
                ("replay_us".into(), n(m.replay_us.load(Ordering::Relaxed))),
                ("segments".into(), n(log.segment_count() as u64)),
                ("snapshot_lsn".into(), n(log.snapshot_lsn())),
                (
                    "append_p99_us".into(),
                    n(m.append_latency.quantile_us(0.99).unwrap_or(0)),
                ),
            ]),
        ));
    }
    Ok(json_response(200, &Value::Object(body)))
}

fn handle_create_table(state: &ServeState, body: &[u8]) -> Result<Response, ApiError> {
    let parsed = parse_object(body)?;
    let name = required_str(&parsed, "name")?;
    let csv = required_str(&parsed, "csv")?;
    let entry = state.registry.insert_csv(name, csv, state.config.clone())?;
    state.metrics.tables_created.inc();
    Ok(json_response(201, &entry.summary()))
}

fn handle_list_tables(state: &ServeState) -> Result<Response, ApiError> {
    state.metrics.tables_listed.inc();
    Ok(json_response(
        200,
        &Value::Object(vec![(
            "tables".into(),
            Value::Array(state.registry.summaries()),
        )]),
    ))
}

/// Overlays the request's `config` object onto the engine's base
/// configuration. Only known `ZiggyConfig` fields may appear — a typo'd
/// key is a 400, not a silently applied default.
fn merged_config(base: &ZiggyConfig, overrides: &Value) -> Result<ZiggyConfig, ApiError> {
    let Some(fields) = overrides.as_object() else {
        return Err(ApiError::bad_request("`config` must be a JSON object"));
    };
    let mut pairs = match serde_json::to_value(base) {
        Ok(Value::Object(pairs)) => pairs,
        _ => unreachable!("configs serialize as objects"),
    };
    for (key, value) in fields {
        match pairs.iter_mut().find(|(base_key, _)| base_key == key) {
            Some(slot) => slot.1 = value.clone(),
            None => {
                return Err(ApiError::bad_request(format!(
                    "unknown config field `{key}`"
                )))
            }
        }
    }
    serde_json::from_value(&Value::Object(pairs))
        .map_err(|e| ApiError::bad_request(format!("invalid config override: {e}")))
}

/// Whether the request's `If-None-Match` header matches `etag` (a quoted
/// strong validator): comma-separated candidate list, `*` matches any
/// entity, and a weak `W/"…"` prefix is ignored for the comparison
/// (revalidating a byte cache with a weak match is safe — the weak form
/// only loses information).
fn if_none_match_matches(req: &Request, etag: &str) -> bool {
    let Some(value) = req.header("if-none-match") else {
        return false;
    };
    value.split(',').map(str::trim).any(|candidate| {
        candidate == "*" || candidate.strip_prefix("W/").unwrap_or(candidate) == etag
    })
}

fn handle_characterize(
    state: &ServeState,
    name: &str,
    req: &Request,
) -> Result<Response, ApiError> {
    let parsed = parse_object(&req.body)?;
    let query = required_str(&parsed, "query")?;
    let entry = state.registry.get(name)?;
    let mut guard = span::child("serve.characterize");
    if let Some(g) = guard.as_mut() {
        g.attr("table", name);
    }
    let outcome = match parsed.get("config").filter(|v| !v.is_null()) {
        None => entry.engine().characterize_cached(query)?,
        Some(overrides) => {
            let config = merged_config(entry.engine().config(), overrides)?;
            if config == *entry.engine().config() {
                // A no-op override keeps the fully-cached fast path.
                entry.engine().characterize_cached(query)?
            } else {
                // A forked engine shares the whole-table statistics and
                // the report cache, but every report entry is keyed by
                // its configuration fingerprint, so cached artifacts
                // built under other parameters can never leak in (and
                // the override can never poison the default's entry).
                entry
                    .engine()
                    .with_config(config)
                    .characterize_cached(query)?
            }
        }
    };
    if let Some(g) = guard.as_mut() {
        g.attr("reuse", outcome.reuse.as_u8().to_string());
    }
    if outcome.fresh {
        record_stage_spans(&outcome.cached.report.timings);
        state
            .metrics
            .record_characterization(&outcome.cached.report.timings);
    } else {
        state.metrics.record_cached_characterization();
    }
    // The ETag is the report-byte fingerprint: stable across requests,
    // processes, and fleet replicas that built the same report.
    let etag = outcome.cached.etag();
    let timing = server_timing(&outcome.cached.report.timings, outcome.reuse.as_u8());
    if if_none_match_matches(req, &etag) {
        state.metrics.not_modified_total.inc();
        return Ok(Response::new(304, "")
            .with_header("ETag", etag)
            .with_header("Server-Timing", timing));
    }
    // The body is the memoized serialized report with this request's
    // query label spliced in — the cached build (and its ETag) is
    // shared by every spelling of the selection, so only the label
    // costs a copy.
    Ok(Response::new(200, outcome.cached.bytes_with_query(query))
        .with_header("ETag", etag)
        .with_header("Server-Timing", timing))
}

/// Renders the `Server-Timing` value for a characterize response: the
/// original build's stage durations (milliseconds, per the header's
/// spec) plus the cache reuse level that answered this request
/// (1 = plan only, 2 = prepared statistics, 3 = finished report bytes).
fn server_timing(t: &StageTimings, reuse_level: u8) -> String {
    format!(
        "prepare;dur={:.3}, view_search;dur={:.3}, post_process;dur={:.3}, reuse;desc=\"level{}\"",
        t.preparation_us as f64 / 1e3,
        t.view_search_us as f64 / 1e3,
        t.post_processing_us as f64 / 1e3,
        reuse_level
    )
}

/// `POST /tables/{name}/rows` — incremental append. The body's `rows`
/// field carries headerless CSV rows that extend the live table; the
/// registry swaps in a new entry whose engine inherits the warm
/// whole-table statistics and zone maps (only the tail chunk's
/// summaries rebuild) and WAL-logs the rows before acknowledging, so a
/// crash replays to the appended table byte for byte. Sessions pinned
/// to the old entry keep reading their snapshot; subsequent requests
/// see the appended table with all derived caches freshly invalidated.
fn handle_append_rows(state: &ServeState, name: &str, body: &[u8]) -> Result<Response, ApiError> {
    let parsed = parse_object(body)?;
    let rows = required_str(&parsed, "rows")?;
    let (entry, appended) = state
        .registry
        .append_rows(name, rows, state.config.clone())?;
    state.metrics.appends.inc();
    state.metrics.rows_appended.add(appended as u64);
    let mut summary = match entry.summary() {
        Value::Object(pairs) => pairs,
        _ => unreachable!("summaries render as objects"),
    };
    summary.push((
        "appended".into(),
        Value::Number(serde_json::Number::U(appended as u64)),
    ));
    Ok(json_response(200, &Value::Object(summary)))
}

/// Exports a table's source CSV so another process can re-materialize
/// the *identical* table (the fleet repair loop's read side). The
/// response carries the original upload bytes verbatim inside JSON, so
/// `PUT /tables/{name}` of the exported text fingerprints identically
/// to the first ingest. Tables registered in-process (demo preloads)
/// have no CSV provenance and answer 404.
fn handle_export_csv(state: &ServeState, name: &str) -> Result<Response, ApiError> {
    let entry = state.registry.get(name)?;
    let Some(csv) = entry.export_csv() else {
        return Err(ApiError::not_found(format!(
            "table `{name}` has no CSV provenance to export"
        )));
    };
    let fingerprint = entry
        .fingerprint()
        .map(|f| format!("{f:016x}"))
        .unwrap_or_default();
    Ok(json_response(
        200,
        &Value::Object(vec![
            ("name".into(), Value::String(name.to_string())),
            ("csv".into(), Value::String(csv.to_string())),
            ("fingerprint".into(), Value::String(fingerprint)),
        ]),
    ))
}

fn handle_replicate_table(
    state: &ServeState,
    name: &str,
    body: &[u8],
) -> Result<Response, ApiError> {
    let parsed = parse_object(body)?;
    let csv = required_str(&parsed, "csv")?;
    let (entry, created) = state
        .registry
        .replicate_csv(name, csv, state.config.clone())?;
    if created {
        state.metrics.tables_created.inc();
    }
    let mut summary = match entry.summary() {
        Value::Object(pairs) => pairs,
        _ => unreachable!("summaries render as objects"),
    };
    summary.push(("created".into(), Value::Bool(created)));
    Ok(json_response(
        if created { 201 } else { 200 },
        &Value::Object(summary),
    ))
}

/// Drops a table. With `?stray=true` (the fleet garbage collector's
/// variant) the tombstone is stamped at the copy's own ingest timestamp
/// instead of a fresh one, so collecting a stranded replica can never
/// outrank — and therefore never delete — the live copies elsewhere.
fn handle_delete_table(
    state: &ServeState,
    name: &str,
    req: &Request,
) -> Result<Response, ApiError> {
    let entry = if req.query_param("stray") == Some("true") {
        state.registry.remove_stray(name)?
    } else {
        state.registry.remove(name)?
    };
    // Cascade: close the table's sessions so the dropped engine's memory
    // actually frees instead of staying pinned behind abandoned clients.
    let sessions_closed = state.sessions.remove_for_table(&entry);
    // Invalidate the derived-artifact caches eagerly: even while
    // in-flight requests pin the engine Arc, the memoized per-mask
    // PreparedStats and the finished report bytes (the bulk of the
    // engine's mutable footprint) free now.
    entry.engine().prepared_cache().clear();
    entry.engine().report_cache().clear();
    state.metrics.tables_deleted.inc();
    state.metrics.sessions_deleted.add(sessions_closed as u64);
    Ok(json_response(
        200,
        &Value::Object(vec![
            ("deleted".into(), Value::String(name.to_string())),
            (
                "sessions_closed".into(),
                Value::Number(serde_json::Number::U(sessions_closed as u64)),
            ),
        ]),
    ))
}

fn parse_session_id(id: &str) -> Result<u64, ApiError> {
    id.parse()
        .map_err(|_| ApiError::bad_request("session id must be an integer"))
}

fn handle_delete_session(state: &ServeState, id: &str) -> Result<Response, ApiError> {
    let id = parse_session_id(id)?;
    state.sessions.remove(id)?;
    if let Some(log) = state.registry.durable() {
        log.append(&Record::SessionDelete { id })
            .map_err(|e| ApiError::internal(format!("durable log append failed: {e}")))?;
    }
    state.metrics.sessions_deleted.inc();
    Ok(json_response(
        200,
        &Value::Object(vec![(
            "deleted".into(),
            Value::Number(serde_json::Number::U(id)),
        )]),
    ))
}

fn handle_create_session(state: &ServeState, body: &[u8]) -> Result<Response, ApiError> {
    let parsed = parse_object(body)?;
    let table = required_str(&parsed, "table")?;
    let entry = state.registry.get(table)?;
    let id = state.sessions.create(std::sync::Arc::clone(&entry))?;
    // Count the creation before the re-validation below, so a session
    // the delete cascade closes (counted in sessions_deleted) always
    // has a matching creation and created - deleted stays >= 0.
    state.metrics.sessions_created.inc();
    // Re-validate after the insert: a DELETE /tables/{name} racing
    // between the lookup above and the insert runs its session cascade
    // too early to see this session, which would then pin the dropped
    // engine forever. If the entry is no longer registered, undo.
    match state.registry.get(table) {
        Ok(current) if std::sync::Arc::ptr_eq(&current, &entry) => {}
        _ => {
            if state.sessions.remove(id).is_ok() {
                // The cascade missed it, so it wasn't counted there.
                state.metrics.sessions_deleted.inc();
            }
            return Err(ApiError::not_found(format!("no table named `{table}`")));
        }
    }
    // Log after validation so replay never resurrects a session whose
    // creation this handler went on to undo. An append failure unwinds
    // the in-memory session: the creation is not acknowledged.
    if let Some(log) = state.registry.durable() {
        if let Err(e) = log.append(&Record::SessionCreate {
            id,
            table: table.to_string(),
        }) {
            if state.sessions.remove(id).is_ok() {
                state.metrics.sessions_deleted.inc();
            }
            return Err(ApiError::internal(format!(
                "durable log append failed: {e}"
            )));
        }
    }
    Ok(json_response(
        201,
        &Value::Object(vec![
            (
                "session_id".into(),
                Value::Number(serde_json::Number::U(id)),
            ),
            ("table".into(), Value::String(table.to_string())),
        ]),
    ))
}

fn handle_session_step(state: &ServeState, id: &str, body: &[u8]) -> Result<Response, ApiError> {
    let id = parse_session_id(id)?;
    let parsed = parse_object(body)?;
    let query = required_str(&parsed, "query")?;
    let mut guard = span::child("serve.session_step");
    if let Some(g) = guard.as_mut() {
        g.attr("session", id.to_string());
    }
    let outcome = state.sessions.step(id, query)?;
    if let Some(g) = guard.as_mut() {
        g.attr("step", outcome.step.to_string());
    }
    if outcome.fresh {
        record_stage_spans(&outcome.report.timings);
    }
    // WAL the accepted step before acknowledging. On append failure the
    // in-memory step stands but the client sees a 500; replay's
    // seq-idempotency makes a client retry of the same step harmless.
    if let Some(log) = state.registry.durable() {
        log.append(&Record::SessionStep {
            id,
            seq: outcome.step as u64,
            query: query.to_string(),
        })
        .map_err(|e| ApiError::internal(format!("durable log append failed: {e}")))?;
    }
    if outcome.fresh {
        state
            .metrics
            .record_characterization(&outcome.report.timings);
    } else {
        state.metrics.record_cached_characterization();
    }
    state.metrics.session_steps.inc();
    let diff = match &outcome.diff {
        Some(d) => serde_json::to_value(d).expect("diffs always render"),
        None => Value::Null,
    };
    Ok(json_response(
        200,
        &Value::Object(vec![
            (
                "step".into(),
                Value::Number(serde_json::Number::U(outcome.step as u64)),
            ),
            (
                "report".into(),
                serde_json::to_value(&outcome.report).expect("reports always render"),
            ),
            ("diff".into(), diff),
        ]),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &str) -> Request {
        request_with_headers(method, path, &[], body)
    }

    fn request_with_headers(
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &str,
    ) -> Request {
        let (path, query) = match path.split_once('?') {
            Some((p, q)) => (p, q),
            None => (path, ""),
        };
        Request {
            method: method.into(),
            path: path.into(),
            query: query.into(),
            headers: headers
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            body: body.as_bytes().to_vec(),
            peer: None,
        }
    }

    fn demo_csv() -> String {
        let mut csv = String::from("key,hot,cold\n");
        for i in 0..200 {
            csv.push_str(&format!(
                "{},{},{}\n",
                i,
                if i >= 150 { 25 } else { 0 } + (i * 13) % 7,
                (i * 7919) % 31
            ));
        }
        csv
    }

    fn state_with_table(name: &str) -> ServeState {
        let state = ServeState::default();
        state
            .registry
            .insert_csv(name, &demo_csv(), ZiggyConfig::default())
            .unwrap();
        state
    }

    #[test]
    fn healthz_ok() {
        let state = ServeState::default();
        let r = route(&state, &request("GET", "/healthz", ""));
        assert_eq!(r.status, 200);
        let v = serde_json::from_str_value(&r.body).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("ok"));
        assert!(v.get("uptime_s").unwrap().as_u64().is_some(), "{}", r.body);
        assert_eq!(
            v.get("version").unwrap().as_str(),
            Some(env!("CARGO_PKG_VERSION"))
        );
    }

    #[test]
    fn metrics_prometheus_exposition_parses_and_lints_clean() {
        let state = state_with_table("t");
        route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        let r = route(&state, &request("GET", "/metrics?format=prometheus", ""));
        assert_eq!(r.status, 200);
        assert!(
            r.headers
                .iter()
                .any(|(k, v)| k == "Content-Type" && v.starts_with("text/plain")),
            "{:?}",
            r.headers
        );
        let doc = ziggy_obs::PromDoc::parse(&r.body).unwrap();
        assert!(doc.lint().is_empty(), "{:?}", doc.lint());
        assert!(r.body.contains("ziggy_requests_total"), "{}", r.body);
        assert!(r.body.contains("ziggy_build_info{version="), "{}", r.body);
        assert!(r.body.contains("ziggy_uptime_seconds"), "{}", r.body);
        assert!(
            r.body
                .contains("ziggy_stage_duration_seconds_count{stage=\"prepare\"} 1"),
            "{}",
            r.body
        );
        // The JSON body is still the default.
        let r = route(&state, &request("GET", "/metrics", ""));
        assert!(r.body.starts_with('{'), "{}", r.body);
    }

    #[test]
    fn characterize_carries_server_timing_with_reuse_level() {
        let state = state_with_table("t");
        let body = r#"{"query":"key >= 150"}"#;
        let timing_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "Server-Timing")
                .map(|(_, v)| v.clone())
                .expect("characterize responses carry Server-Timing")
        };
        let first = route(&state, &request("POST", "/tables/t/characterize", body));
        assert_eq!(first.status, 200, "{}", first.body);
        let t = timing_of(&first);
        assert!(t.contains("prepare;dur="), "{t}");
        assert!(t.contains("view_search;dur="), "{t}");
        assert!(t.contains("post_process;dur="), "{t}");
        // A cold build reuses at most the prepared level.
        assert!(
            t.ends_with("reuse;desc=\"level1\"") || t.ends_with("reuse;desc=\"level2\""),
            "{t}"
        );
        // A repeat is answered from the report cache: level 3.
        let again = route(&state, &request("POST", "/tables/t/characterize", body));
        let t = timing_of(&again);
        assert!(t.ends_with("reuse;desc=\"level3\""), "{t}");
    }

    #[test]
    fn full_table_flow() {
        let state = ServeState::default();
        let body = serde_json::to_string(&serde_json::Value::Object(vec![
            ("name".into(), Value::String("demo".into())),
            ("csv".into(), Value::String(demo_csv())),
        ]))
        .unwrap();
        let r = route(&state, &request("POST", "/tables", &body));
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"n_rows\":200"), "{}", r.body);

        let r = route(&state, &request("GET", "/tables", ""));
        assert_eq!(r.status, 200);
        assert!(r.body.contains("\"demo\""));

        let r = route(
            &state,
            &request(
                "POST",
                "/tables/demo/characterize",
                r#"{"query": "key >= 150"}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"views\""), "{}", r.body);
        assert_eq!(state.metrics.characterizations.get(), 1);
    }

    #[test]
    fn session_flow_with_diff() {
        let state = state_with_table("t");
        let r = route(&state, &request("POST", "/sessions", r#"{"table":"t"}"#));
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"session_id\":1"), "{}", r.body);

        let r = route(
            &state,
            &request("POST", "/sessions/1/step", r#"{"query":"key >= 150"}"#),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"step\":1"), "{}", r.body);
        assert!(r.body.contains("\"diff\":null"), "{}", r.body);

        let r = route(
            &state,
            &request("POST", "/sessions/1/step", r#"{"query":"key >= 150"}"#),
        );
        assert!(r.body.contains("\"step\":2"), "{}", r.body);
        assert!(r.body.contains("\"persisted\""), "{}", r.body);
    }

    #[test]
    fn errors_map_to_statuses() {
        let state = state_with_table("t");
        for (method, path, body, want) in [
            ("GET", "/nope", "", 404),
            ("DELETE", "/tables", "", 405),
            ("POST", "/tables", "not json", 400),
            ("POST", "/tables", r#"{"name":"t2"}"#, 400),
            (
                "POST",
                "/tables/absent/characterize",
                r#"{"query":"x>1"}"#,
                404,
            ),
            (
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >>> 1"}"#,
                422,
            ),
            (
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key < -5"}"#,
                422,
            ),
            ("POST", "/sessions", r#"{"table":"absent"}"#, 404),
            (
                "POST",
                "/sessions/99/step",
                r#"{"query":"key >= 150"}"#,
                404,
            ),
            (
                "POST",
                "/sessions/zzz/step",
                r#"{"query":"key >= 150"}"#,
                400,
            ),
            ("DELETE", "/tables/absent", "", 404),
            ("PATCH", "/tables/t", "", 405),
            // PUT is the replicate path now, not a 405: bad bodies 400,
            // and replicating different content onto a live name is 409.
            ("PUT", "/tables/t", "", 400),
            ("PUT", "/tables/t", r#"{"csv":"a,b\n1,2\n3,4\n"}"#, 409),
            ("DELETE", "/sessions/99", "", 404),
            ("DELETE", "/sessions/zzz", "", 400),
            ("GET", "/sessions/99", "", 405),
        ] {
            let r = route(&state, &request(method, path, body));
            assert_eq!(r.status, want, "{method} {path}: {}", r.body);
        }
        assert_eq!(state.metrics.errors_total.get(), 17);
    }

    #[test]
    fn delete_table_and_session_lifecycle() {
        let state = state_with_table("t");
        let r = route(&state, &request("POST", "/sessions", r#"{"table":"t"}"#));
        assert_eq!(r.status, 201, "{}", r.body);

        // Drop the table: the name frees immediately and its sessions
        // close with it (the engine's memory must not stay pinned).
        let r = route(&state, &request("DELETE", "/tables/t", ""));
        assert_eq!(r.status, 200);
        assert_eq!(&*r.body, r#"{"deleted":"t","sessions_closed":1}"#);
        assert!(state.registry.is_empty());
        assert!(state.sessions.is_empty());
        let r = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        assert_eq!(r.status, 404, "{}", r.body);
        let r = route(
            &state,
            &request("POST", "/sessions/1/step", r#"{"query":"key >= 150"}"#),
        );
        assert_eq!(r.status, 404, "{}", r.body);

        // The freed name is reusable, and new sessions work on it.
        state
            .registry
            .insert_csv("t", &demo_csv(), ZiggyConfig::default())
            .unwrap();
        let r = route(&state, &request("POST", "/sessions", r#"{"table":"t"}"#));
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"session_id\":2"), "{}", r.body);

        // Deleting a session explicitly frees its slot and forgets the id.
        let r = route(&state, &request("DELETE", "/sessions/2", ""));
        assert_eq!(r.status, 200);
        assert_eq!(&*r.body, r#"{"deleted":2}"#);
        assert!(state.sessions.is_empty());
        let r = route(
            &state,
            &request("POST", "/sessions/2/step", r#"{"query":"key >= 150"}"#),
        );
        assert_eq!(r.status, 404, "{}", r.body);

        assert_eq!(state.metrics.tables_deleted.get(), 1);
        // One cascaded close + one explicit delete.
        assert_eq!(state.metrics.sessions_deleted.get(), 2);
    }

    #[test]
    fn append_rows_route_extends_table_and_matches_full_reingest() {
        let state = state_with_table("t");
        let etag_of = |r: &Response| {
            r.headers
                .iter()
                .find(|(k, _)| k == "ETag")
                .map(|(_, v)| v.clone())
                .unwrap()
        };
        let query_body = r#"{"query":"key >= 150"}"#;
        let before = route(
            &state,
            &request("POST", "/tables/t/characterize", query_body),
        );
        assert_eq!(before.status, 200, "{}", before.body);

        let rows = "200,30,1\n201,31,2\n";
        let body = serde_json::to_string(&Value::Object(vec![(
            "rows".into(),
            Value::String(rows.into()),
        )]))
        .unwrap();
        let r = route(&state, &request("POST", "/tables/t/rows", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"n_rows\":202"), "{}", r.body);
        assert!(r.body.contains("\"appended\":2"), "{}", r.body);
        assert_eq!(state.metrics.appends.get(), 1);
        assert_eq!(state.metrics.rows_appended.get(), 2);

        // The appended rows land in the selection, so the report (and
        // its ETag) must change — stale derived caches would be a bug.
        let after = route(
            &state,
            &request("POST", "/tables/t/characterize", query_body),
        );
        assert_eq!(after.status, 200, "{}", after.body);
        assert_ne!(after.body, before.body);
        assert_ne!(etag_of(&after), etag_of(&before));

        // Rebuild equivalence, end to end: a fresh server ingesting the
        // combined CSV serves byte-identical report bytes and the same
        // ETag (cached bytes carry zeroed timings, so this is full byte
        // equality, not modulo-noise).
        let fresh = ServeState::default();
        fresh
            .registry
            .insert_csv(
                "t",
                &format!("{}{}", demo_csv(), rows),
                ZiggyConfig::default(),
            )
            .unwrap();
        let rebuilt = route(
            &fresh,
            &request("POST", "/tables/t/characterize", query_body),
        );
        assert_eq!(rebuilt.status, 200, "{}", rebuilt.body);
        assert_eq!(after.body, rebuilt.body);
        assert_eq!(etag_of(&after), etag_of(&rebuilt));

        // And the export is the combined bytes.
        let exported = route(&state, &request("GET", "/tables/t/csv", ""));
        let v = serde_json::from_str_value(&exported.body).unwrap();
        assert_eq!(
            v.get("csv").unwrap().as_str().unwrap(),
            format!("{}{}", demo_csv(), rows)
        );

        // Guards: type-flipping rows 422, wrong method 405, absent 404.
        let bad = serde_json::to_string(&Value::Object(vec![(
            "rows".into(),
            Value::String("oops,1,2\n".into()),
        )]))
        .unwrap();
        assert_eq!(
            route(&state, &request("POST", "/tables/t/rows", &bad)).status,
            422
        );
        assert_eq!(
            route(&state, &request("GET", "/tables/t/rows", "")).status,
            405
        );
        assert_eq!(
            route(&state, &request("POST", "/tables/nope/rows", &body)).status,
            404
        );
    }

    #[test]
    fn characterize_honors_per_request_config_override() {
        let state = state_with_table("t");
        let base = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        assert_eq!(base.status, 200, "{}", base.body);
        let base_views = serde_json::from_str_value(&base.body)
            .unwrap()
            .get("views")
            .unwrap()
            .as_array()
            .unwrap()
            .len();
        assert!(base_views > 1, "need >1 base views for the override test");

        let r = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150","config":{"max_views":1}}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
        let overridden_views = serde_json::from_str_value(&r.body)
            .unwrap()
            .get("views")
            .unwrap()
            .as_array()
            .unwrap()
            .len();
        assert_eq!(overridden_views, 1);

        // The override is per-request: the default config still applies.
        let again = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        assert_eq!(
            serde_json::from_str_value(&again.body)
                .unwrap()
                .get("views")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            base_views
        );

        // Unknown fields and invalid values are client errors.
        for (body, want) in [
            (r#"{"query":"key >= 150","config":{"max_wiews":1}}"#, 400),
            (r#"{"query":"key >= 150","config":7}"#, 400),
            (r#"{"query":"key >= 150","config":{"max_views":0}}"#, 422),
        ] {
            let r = route(&state, &request("POST", "/tables/t/characterize", body));
            assert_eq!(r.status, want, "{body}: {}", r.body);
        }
        // A null config is the same as no config.
        let r = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150","config":null}"#,
            ),
        );
        assert_eq!(r.status, 200, "{}", r.body);
    }

    #[test]
    fn characterize_carries_etag_and_honors_if_none_match() {
        let state = state_with_table("t");
        let body = r#"{"query":"key >= 150"}"#;
        let first = route(&state, &request("POST", "/tables/t/characterize", body));
        assert_eq!(first.status, 200, "{}", first.body);
        let etag = first
            .headers
            .iter()
            .find(|(k, _)| k == "ETag")
            .map(|(_, v)| v.clone())
            .expect("characterize responses carry an ETag");
        assert!(etag.starts_with('"') && etag.ends_with('"'), "{etag}");

        // A conditional repeat revalidates without a body.
        let not_modified = route(
            &state,
            &request_with_headers(
                "POST",
                "/tables/t/characterize",
                &[("if-none-match", &etag)],
                body,
            ),
        );
        assert_eq!(not_modified.status, 304, "{}", not_modified.body);
        assert!(not_modified.body.is_empty());
        assert!(
            not_modified
                .headers
                .iter()
                .any(|(k, v)| k == "ETag" && *v == etag),
            "304 must re-state the ETag"
        );
        assert_eq!(state.metrics.not_modified_total.get(), 1);

        // List syntax and weak validators match; a stale tag does not.
        let listed = route(
            &state,
            &request_with_headers(
                "POST",
                "/tables/t/characterize",
                &[("if-none-match", &format!("\"stale\", W/{etag}"))],
                body,
            ),
        );
        assert_eq!(listed.status, 304);
        let stale = route(
            &state,
            &request_with_headers(
                "POST",
                "/tables/t/characterize",
                &[("if-none-match", "\"0000000000000000\"")],
                body,
            ),
        );
        assert_eq!(stale.status, 200);
        assert_eq!(stale.body, first.body, "stale tag gets the full bytes");

        // A different query gets a different ETag.
        let other = route(
            &state,
            &request("POST", "/tables/t/characterize", r#"{"query":"key < 50"}"#),
        );
        let other_etag = other
            .headers
            .iter()
            .find(|(k, _)| k == "ETag")
            .map(|(_, v)| v.clone())
            .unwrap();
        assert_ne!(other_etag, etag);
    }

    #[test]
    fn delete_table_clears_report_and_prepared_caches() {
        let state = state_with_table("t");
        let entry = state.registry.get("t").unwrap();
        route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        assert_eq!(entry.engine().report_cache().len(), 1);
        assert_eq!(entry.engine().prepared_cache().len(), 1);
        let r = route(&state, &request("DELETE", "/tables/t", ""));
        assert_eq!(r.status, 200, "{}", r.body);
        // The caches empty immediately, even though this test still pins
        // the engine through its Arc.
        assert!(entry.engine().report_cache().is_empty());
        assert!(entry.engine().prepared_cache().is_empty());
    }

    #[test]
    fn override_does_not_poison_default_report_cache() {
        // Regression: the report cache is shared by configuration forks,
        // so an override request must neither be served the default
        // configuration's bytes nor overwrite them.
        let state = state_with_table("t");
        let default_body = r#"{"query":"key >= 150"}"#;
        let base = route(
            &state,
            &request("POST", "/tables/t/characterize", default_body),
        );
        assert_eq!(base.status, 200, "{}", base.body);

        let overridden = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150","config":{"max_views":1}}"#,
            ),
        );
        assert_eq!(overridden.status, 200, "{}", overridden.body);
        assert_ne!(overridden.body, base.body);
        assert_eq!(
            serde_json::from_str_value(&overridden.body)
                .unwrap()
                .get("views")
                .unwrap()
                .as_array()
                .unwrap()
                .len(),
            1
        );

        // The default entry is intact: byte-identical (timings included)
        // and served from the cache.
        let again = route(
            &state,
            &request("POST", "/tables/t/characterize", default_body),
        );
        assert_eq!(
            again.body, base.body,
            "default entry must survive the override"
        );
        let entry = state.registry.get("t").unwrap();
        let c = entry.engine().report_cache().counters();
        assert_eq!((c.hits, c.misses), (1, 2), "{c:?}");

        // And a repeated override is itself warm: the fork re-keys into
        // the same shared cache.
        let warm = route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150","config":{"max_views":1}}"#,
            ),
        );
        assert_eq!(warm.body, overridden.body);
        let c = entry.engine().report_cache().counters();
        assert_eq!((c.hits, c.misses), (2, 2), "{c:?}");
    }

    #[test]
    fn csv_export_round_trips_through_replicate() {
        let state = state_with_table("t");
        let r = route(&state, &request("GET", "/tables/t/csv", ""));
        assert_eq!(r.status, 200, "{}", r.body);
        let v = serde_json::from_str_value(&r.body).unwrap();
        let csv = v.get("csv").unwrap().as_str().unwrap().to_string();
        assert_eq!(csv, demo_csv(), "export must be the original bytes");
        let fp = v.get("fingerprint").unwrap().as_str().unwrap();
        assert_eq!(fp, format!("{:016x}", crate::fnv1a_64(csv.as_bytes())));

        // The export replicates onto another server as the *same* table:
        // idempotent against the original ingest's fingerprint.
        let other = ServeState::default();
        let put_body = serde_json::to_string(&Value::Object(vec![(
            "csv".into(),
            Value::String(csv.clone()),
        )]))
        .unwrap();
        let r = route(&other, &request("PUT", "/tables/t", &put_body));
        assert_eq!(r.status, 201, "{}", r.body);
        let r = route(&other, &request("GET", "/tables/t/csv", ""));
        assert_eq!(
            serde_json::from_str_value(&r.body)
                .unwrap()
                .get("csv")
                .unwrap()
                .as_str(),
            Some(csv.as_str()),
            "replicated tables re-export the same bytes"
        );

        // Unknown tables and provenance-free registrations are 404; the
        // path only speaks GET.
        let r = route(&state, &request("GET", "/tables/absent/csv", ""));
        assert_eq!(r.status, 404);
        let table =
            ziggy_store::csv::read_csv_str(&demo_csv(), &ziggy_store::csv::CsvOptions::default())
                .unwrap();
        state
            .registry
            .insert_table("inproc", table, ZiggyConfig::default())
            .unwrap();
        let r = route(&state, &request("GET", "/tables/inproc/csv", ""));
        assert_eq!(r.status, 404, "{}", r.body);
        let r = route(&state, &request("POST", "/tables/t/csv", ""));
        assert_eq!(r.status, 405);
    }

    #[test]
    fn replicate_route_is_idempotent() {
        let state = ServeState::default();
        let body = serde_json::to_string(&Value::Object(vec![(
            "csv".into(),
            Value::String(demo_csv()),
        )]))
        .unwrap();
        let r = route(&state, &request("PUT", "/tables/rep", &body));
        assert_eq!(r.status, 201, "{}", r.body);
        assert!(r.body.contains("\"created\":true"), "{}", r.body);
        let r = route(&state, &request("PUT", "/tables/rep", &body));
        assert_eq!(r.status, 200, "{}", r.body);
        assert!(r.body.contains("\"created\":false"), "{}", r.body);
        assert_eq!(state.metrics.tables_created.get(), 1);
        assert_eq!(state.registry.len(), 1);
    }

    #[test]
    fn metrics_report_expired_sessions() {
        let state = state_with_table("t");
        state
            .sessions
            .set_ttl(Some(std::time::Duration::from_millis(20)));
        let r = route(&state, &request("POST", "/sessions", r#"{"table":"t"}"#));
        assert_eq!(r.status, 201, "{}", r.body);
        std::thread::sleep(std::time::Duration::from_millis(40));
        let r = route(&state, &request("GET", "/metrics", ""));
        let v = serde_json::from_str_value(&r.body).unwrap();
        let requests = v.get("requests").unwrap();
        assert_eq!(requests.get("sessions_expired").unwrap().as_u64(), Some(1));
        assert!(state.sessions.is_empty());
    }

    #[test]
    fn metrics_include_cache_counters() {
        let state = state_with_table("t");
        route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        let r = route(&state, &request("GET", "/metrics", ""));
        assert_eq!(r.status, 200);
        let v = serde_json::from_str_value(&r.body).unwrap();
        let tables = v.get("tables").unwrap().as_array().unwrap();
        assert_eq!(tables.len(), 1);
        let cache = tables[0].get("cache").unwrap();
        assert!(cache.get("misses").unwrap().as_u64().unwrap() > 0);
        // The per-query PreparedStats cache reports alongside: one
        // characterization so far = one build, no hits yet.
        let prepared = tables[0].get("prepared").unwrap();
        assert_eq!(prepared.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(prepared.get("hits").unwrap().as_u64(), Some(0));
        assert_eq!(prepared.get("entries").unwrap().as_u64(), Some(1));
        // One characterization so far: one report build, no hits yet.
        let reports = tables[0].get("reports").unwrap();
        assert_eq!(reports.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(reports.get("hits").unwrap().as_u64(), Some(0));
        assert_eq!(reports.get("entries").unwrap().as_u64(), Some(1));
        // A repeat of the same predicate is absorbed at the *report*
        // level: the prepared cache (and everything below it) is never
        // consulted again.
        route(
            &state,
            &request(
                "POST",
                "/tables/t/characterize",
                r#"{"query":"key >= 150"}"#,
            ),
        );
        let r = route(&state, &request("GET", "/metrics", ""));
        let v = serde_json::from_str_value(&r.body).unwrap();
        let table = &v.get("tables").unwrap().as_array().unwrap()[0];
        let prepared = table.get("prepared").unwrap();
        assert_eq!(prepared.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(prepared.get("hits").unwrap().as_u64(), Some(0));
        let reports = table.get("reports").unwrap();
        assert_eq!(reports.get("misses").unwrap().as_u64(), Some(1));
        assert_eq!(reports.get("hits").unwrap().as_u64(), Some(1));
        let requests = v.get("requests").unwrap();
        assert_eq!(requests.get("characterizations").unwrap().as_u64(), Some(2));
        assert_eq!(requests.get("report_cache_hits").unwrap().as_u64(), Some(1));
        assert!(v
            .get("stage_timings_us")
            .unwrap()
            .get("preparation")
            .unwrap()
            .as_u64()
            .is_some());
    }
}
