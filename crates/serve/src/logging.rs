//! Structured access logging: one JSON line per served request.
//!
//! Both the single-node server (`ziggy serve --access-log`) and the
//! fleet router share this sink; the router additionally records which
//! backend a proxied request landed on. The format is one JSON object
//! per line so the log is greppable *and* machine-parseable:
//!
//! ```text
//! {"ts_ms":1721930000123,"method":"POST","path":"/tables/crime/characterize","status":200,"latency_ms":11.42,"trace_id":"9f86d081884c7d65","backend":"shard-1"}
//! ```
//!
//! `trace_id` is the request's `X-Request-Id` (caller-supplied or
//! minted at the first hop), so one id greps the router line and every
//! backend line it fanned out to.

use std::io::Write;
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde_json::Value;

/// A line-oriented access log. Disabled by default (zero cost beyond a
/// branch); enable with [`AccessLog::stderr`], point it at a file with
/// [`AccessLog::to_file`], or at any writer with
/// [`AccessLog::to_writer`] (tests capture a buffer this way).
pub struct AccessLog {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for AccessLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl AccessLog {
    /// A log that drops everything.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A log writing to stderr (stdout stays clean for the REPL and the
    /// fleet supervisor's own status lines).
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// A log appending to a file (created if absent). The fleet
    /// integration tests point spawned backends here to assert on
    /// trace-id propagation across processes.
    pub fn to_file(path: &Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::to_writer(Box::new(file)))
    }

    /// A log writing to an arbitrary sink.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            sink: Some(Mutex::new(writer)),
        }
    }

    /// Whether lines are being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one request. `trace_id` is the request's `X-Request-Id`;
    /// `backend` is the shard id a proxied request was forwarded to
    /// (`None` for requests served locally).
    pub fn log(
        &self,
        method: &str,
        path: &str,
        status: u16,
        latency_ms: f64,
        trace_id: Option<&str>,
        backend: Option<&str>,
    ) {
        let Some(sink) = &self.sink else { return };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        // Two-decimal latency keeps lines stable for tests and diffs.
        let latency_ms = (latency_ms * 100.0).round() / 100.0;
        let mut pairs = vec![
            (
                "ts_ms".to_string(),
                Value::Number(serde_json::Number::U(ts_ms)),
            ),
            ("method".to_string(), Value::String(method.to_string())),
            ("path".to_string(), Value::String(path.to_string())),
            (
                "status".to_string(),
                Value::Number(serde_json::Number::U(status as u64)),
            ),
            (
                "latency_ms".to_string(),
                Value::Number(serde_json::Number::F(latency_ms)),
            ),
        ];
        if let Some(t) = trace_id {
            pairs.push(("trace_id".to_string(), Value::String(t.to_string())));
        }
        if let Some(b) = backend {
            pairs.push(("backend".to_string(), Value::String(b.to_string())));
        }
        let line = serde_json::to_string(&Value::Object(pairs)).expect("log lines always render");
        // A poisoned or failing sink must never take the server down;
        // logging is best-effort by design. The single `writeln!` under
        // the lock is what keeps concurrent lines atomic.
        if let Ok(mut w) = sink.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

/// Renders one slow-query log line: the trace's summary plus its span
/// breakdown, as a single JSON object (the same one-line discipline as
/// access-log lines, so both grep by `trace_id`).
///
/// ```text
/// {"slow_query":true,"trace_id":"9f86…","route":"characterize","duration_ms":312.5,"error":false,"spans":[{"name":"serve.request","duration_us":312500,"error":false},…]}
/// ```
pub fn slow_query_line(entry: &ziggy_obs::TraceEntry) -> String {
    let spans = entry
        .spans
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("name".to_string(), Value::String(s.name.clone())),
                (
                    "duration_us".to_string(),
                    Value::Number(serde_json::Number::U(s.duration_us)),
                ),
                ("error".to_string(), Value::Bool(s.error)),
            ])
        })
        .collect();
    let duration_ms = (entry.duration_us as f64 / 10.0).round() / 100.0;
    let mut pairs = vec![
        ("slow_query".to_string(), Value::Bool(true)),
        (
            "trace_id".to_string(),
            Value::String(entry.trace_id.clone()),
        ),
    ];
    if let Some(route) = &entry.route {
        pairs.push(("route".to_string(), Value::String(route.clone())));
    }
    pairs.push((
        "duration_ms".to_string(),
        Value::Number(serde_json::Number::F(duration_ms)),
    ));
    pairs.push(("error".to_string(), Value::Bool(entry.error)));
    pairs.push(("spans".to_string(), Value::Array(spans)));
    serde_json::to_string(&Value::Object(pairs)).expect("slow-query lines always render")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer whose buffer the test can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_json_with_expected_fields() {
        let buf = SharedBuf::default();
        let log = AccessLog::to_writer(Box::new(buf.clone()));
        assert!(log.enabled());
        log.log("GET", "/healthz", 200, 0.1234, None, None);
        log.log(
            "POST",
            "/tables/crime/characterize",
            200,
            12.5,
            Some("9f86d081884c7d65"),
            Some("shard-1"),
        );
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str_value(lines[0]).unwrap();
        assert_eq!(first.get("method").unwrap().as_str(), Some("GET"));
        assert_eq!(first.get("status").unwrap().as_u64(), Some(200));
        assert!(first.get("ts_ms").unwrap().as_u64().is_some());
        assert!(first.get("backend").is_none());
        assert!(first.get("trace_id").is_none());
        let second = serde_json::from_str_value(lines[1]).unwrap();
        assert_eq!(second.get("backend").unwrap().as_str(), Some("shard-1"));
        assert_eq!(second.get("latency_ms").unwrap().as_f64(), Some(12.5));
        assert_eq!(
            second.get("trace_id").unwrap().as_str(),
            Some("9f86d081884c7d65")
        );
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = AccessLog::disabled();
        assert!(!log.enabled());
        log.log("GET", "/x", 200, 1.0, None, None); // Must not panic.
    }

    #[test]
    fn concurrent_writers_produce_atomic_valid_json_lines() {
        let buf = SharedBuf::default();
        let log = Arc::new(AccessLog::to_writer(Box::new(buf.clone())));
        const WRITERS: usize = 8;
        const LINES_EACH: usize = 200;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    let trace = format!("writer-{w}");
                    for i in 0..LINES_EACH {
                        log.log(
                            "POST",
                            &format!("/tables/t{i}/characterize"),
                            200,
                            i as f64 / 7.0,
                            Some(&trace),
                            Some("shard-0"),
                        );
                    }
                });
            }
        });
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), WRITERS * LINES_EACH);
        let mut per_writer = vec![0usize; WRITERS];
        for line in lines {
            // Every line parses on its own: no interleaved fragments.
            let v = serde_json::from_str_value(line)
                .unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
            let trace = v.get("trace_id").unwrap().as_str().unwrap();
            let w: usize = trace.strip_prefix("writer-").unwrap().parse().unwrap();
            per_writer[w] += 1;
            assert_eq!(v.get("status").unwrap().as_u64(), Some(200));
        }
        assert!(
            per_writer.iter().all(|&n| n == LINES_EACH),
            "{per_writer:?}"
        );
    }

    #[test]
    fn file_sink_appends_lines() {
        let dir = std::env::temp_dir().join(format!(
            "ziggy-log-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.log");
        {
            let log = AccessLog::to_file(&path).unwrap();
            log.log("GET", "/healthz", 200, 0.5, Some("abc123"), None);
        }
        {
            let log = AccessLog::to_file(&path).unwrap();
            log.log("GET", "/metrics", 200, 0.7, Some("def456"), None);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text}");
        assert!(lines[0].contains("abc123"));
        assert!(
            lines[1].contains("def456"),
            "reopen must append, not truncate"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
