//! Structured access logging: one JSON line per served request.
//!
//! Both the single-node server (`ziggy serve --access-log`) and the
//! fleet router share this sink; the router additionally records which
//! backend a proxied request landed on. The format is one JSON object
//! per line so the log is greppable *and* machine-parseable:
//!
//! ```text
//! {"ts_ms":1721930000123,"method":"POST","path":"/tables/crime/characterize","status":200,"latency_ms":11.42,"backend":"shard-1"}
//! ```

use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use serde_json::Value;

/// A line-oriented access log. Disabled by default (zero cost beyond a
/// branch); enable with [`AccessLog::stderr`] or point it at any writer
/// with [`AccessLog::to_writer`] (tests capture a buffer this way).
pub struct AccessLog {
    sink: Option<Mutex<Box<dyn Write + Send>>>,
}

impl std::fmt::Debug for AccessLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AccessLog")
            .field("enabled", &self.enabled())
            .finish()
    }
}

impl Default for AccessLog {
    fn default() -> Self {
        Self::disabled()
    }
}

impl AccessLog {
    /// A log that drops everything.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A log writing to stderr (stdout stays clean for the REPL and the
    /// fleet supervisor's own status lines).
    pub fn stderr() -> Self {
        Self::to_writer(Box::new(std::io::stderr()))
    }

    /// A log writing to an arbitrary sink.
    pub fn to_writer(writer: Box<dyn Write + Send>) -> Self {
        Self {
            sink: Some(Mutex::new(writer)),
        }
    }

    /// Whether lines are being recorded.
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records one request. `backend` is the shard id a proxied request
    /// was forwarded to (`None` for requests served locally).
    pub fn log(
        &self,
        method: &str,
        path: &str,
        status: u16,
        latency_ms: f64,
        backend: Option<&str>,
    ) {
        let Some(sink) = &self.sink else { return };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        // Two-decimal latency keeps lines stable for tests and diffs.
        let latency_ms = (latency_ms * 100.0).round() / 100.0;
        let mut pairs = vec![
            (
                "ts_ms".to_string(),
                Value::Number(serde_json::Number::U(ts_ms)),
            ),
            ("method".to_string(), Value::String(method.to_string())),
            ("path".to_string(), Value::String(path.to_string())),
            (
                "status".to_string(),
                Value::Number(serde_json::Number::U(status as u64)),
            ),
            (
                "latency_ms".to_string(),
                Value::Number(serde_json::Number::F(latency_ms)),
            ),
        ];
        if let Some(b) = backend {
            pairs.push(("backend".to_string(), Value::String(b.to_string())));
        }
        let line = serde_json::to_string(&Value::Object(pairs)).expect("log lines always render");
        // A poisoned or failing sink must never take the server down;
        // logging is best-effort by design.
        if let Ok(mut w) = sink.lock() {
            let _ = writeln!(w, "{line}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A writer whose buffer the test can read back.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn lines_are_json_with_expected_fields() {
        let buf = SharedBuf::default();
        let log = AccessLog::to_writer(Box::new(buf.clone()));
        assert!(log.enabled());
        log.log("GET", "/healthz", 200, 0.1234, None);
        log.log(
            "POST",
            "/tables/crime/characterize",
            200,
            12.5,
            Some("shard-1"),
        );
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = serde_json::from_str_value(lines[0]).unwrap();
        assert_eq!(first.get("method").unwrap().as_str(), Some("GET"));
        assert_eq!(first.get("status").unwrap().as_u64(), Some(200));
        assert!(first.get("ts_ms").unwrap().as_u64().is_some());
        assert!(first.get("backend").is_none());
        let second = serde_json::from_str_value(lines[1]).unwrap();
        assert_eq!(second.get("backend").unwrap().as_str(), Some("shard-1"));
        assert_eq!(second.get("latency_ms").unwrap().as_f64(), Some(12.5));
    }

    #[test]
    fn disabled_log_is_inert() {
        let log = AccessLog::disabled();
        assert!(!log.enabled());
        log.log("GET", "/x", 200, 1.0, None); // Must not panic.
    }
}
