//! A dependency-light threaded HTTP/1.1 server (and matching client)
//! over `std::net`.
//!
//! Scope: exactly what a JSON API needs — request line, headers,
//! `Content-Length` bodies, keep-alive, bounded header/body sizes, a
//! fixed worker pool, and clean shutdown. No TLS, chunked encoding, or
//! HTTP/2; the service sits behind whatever terminates those.

use std::collections::HashMap;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Largest accepted request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Largest accepted request body (CSV ingest needs room).
pub const MAX_BODY_BYTES: usize = 64 * 1024 * 1024;
/// Socket timeout while actively reading or writing a request.
const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// Wall-clock ceiling on reading one complete request (head + body).
/// `IO_TIMEOUT` alone is per-read: a peer trickling one byte per
/// ~29s would pin a worker forever. Generous enough for a
/// [`MAX_BODY_BYTES`] upload on a slow link.
const REQUEST_DEADLINE: Duration = Duration::from_secs(120);
/// How long a keep-alive connection may sit idle between requests
/// before it is dropped. Half-open peers that vanished without a FIN
/// probe as `Idle` forever; without this deadline they would pin
/// tracker slots (and [`MAX_CONNS`] capacity) indefinitely.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(60);
/// How long a worker waits on the dispatch queue before rechecking the
/// stop flag.
const DISPATCH_TIMEOUT: Duration = Duration::from_millis(50);
/// Consecutive idle probes after which a worker naps, so cycling a
/// queue of quiet connections doesn't spin a core.
const IDLE_STREAK_NAP: u32 = 16;
/// Length of that nap; also the latency ceiling it adds to a request
/// arriving on a quiet server.
const IDLE_NAP: Duration = Duration::from_millis(2);
/// Maximum connections resident in the dispatch queue.
const MAX_CONNS: usize = 1024;

/// A parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Path component, query string stripped.
    pub path: String,
    /// Raw query string (text after `?`, empty when absent).
    pub query: String,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
    /// Peer address, when served over a socket (`None` for requests
    /// built in-process, e.g. unit tests). Rate limiting keys on it.
    pub peer: Option<SocketAddr>,
}

impl Request {
    /// First value of a (case-insensitive) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The value of query parameter `key` (`?key=value&…`); no
    /// percent-decoding (the API's parameters are plain tokens).
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == key).then_some(v)
        })
    }
}

/// An HTTP response (`application/json` unless a handler overrides the
/// content type — the Prometheus exposition route serves plain text).
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// Body text. Shared, not owned: handlers serving memoized bytes
    /// (the report cache's warm path) hand over an `Arc` clone instead
    /// of copying the whole body per request.
    pub body: Arc<str>,
    /// Extra response headers (e.g. `Retry-After` on 429). The framing
    /// headers (`Content-Length`, `Connection`) are always emitted by
    /// the server and must not appear here; a `Content-Type` here
    /// replaces the JSON default.
    pub headers: Vec<(String, String)>,
}

impl Response {
    /// A response with the given status and JSON body text (`String`,
    /// `&str`, or a shared `Arc<str>` — cached bodies pass the latter
    /// for a zero-copy send).
    pub fn new(status: u16, body: impl Into<Arc<str>>) -> Self {
        Self {
            status,
            body: body.into(),
            headers: Vec::new(),
        }
    }

    /// Adds an extra response header.
    pub fn with_header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }
}

/// The standard reason phrase for a status code (used by both the
/// threaded writer and the router's event-loop data plane).
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        304 => "Not Modified",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// The application callback invoked per request.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Observer for responses written *below* the handler — the
/// over-capacity 503 and the malformed-request 400, which never reach
/// the router. Called with `(status, trace_id)` so those edge
/// rejections still make it into the access log with a trace id
/// instead of silently bypassing it.
pub type EdgeObserver = Arc<dyn Fn(u16, &str) + Send + Sync>;

/// Handles to every live connection, so shutdown can interrupt workers
/// blocked reading idle keep-alive sockets.
#[derive(Default)]
struct ConnTracker {
    next_id: AtomicU64,
    conns: Mutex<HashMap<u64, TcpStream>>,
}

impl ConnTracker {
    fn register(&self, stream: &TcpStream) -> Option<u64> {
        let handle = stream.try_clone().ok()?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.conns.lock().expect("conn tracker").insert(id, handle);
        Some(id)
    }

    fn unregister(&self, id: u64) {
        self.conns.lock().expect("conn tracker").remove(&id);
    }

    fn shutdown_all(&self) {
        for stream in self.conns.lock().expect("conn tracker").values() {
            let _ = stream.shutdown(Shutdown::Both);
        }
    }
}

/// A `TcpStream` whose reads respect a resettable wall-clock deadline:
/// every read clamps the socket timeout to the time remaining, so many
/// small reads cannot stretch past the deadline the way a fixed
/// per-read timeout can.
struct DeadlineStream {
    stream: TcpStream,
    deadline: Instant,
    /// Whether the socket timeout currently equals [`IO_TIMEOUT`], so
    /// the hot path skips the per-read `setsockopt` until the deadline
    /// draws within one timeout of expiring.
    timeout_at_max: bool,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "request deadline exceeded",
            ));
        }
        if remaining >= IO_TIMEOUT {
            if !self.timeout_at_max {
                self.stream.set_read_timeout(Some(IO_TIMEOUT))?;
                self.timeout_at_max = true;
            }
        } else {
            self.stream.set_read_timeout(Some(remaining))?;
            self.timeout_at_max = false;
        }
        self.stream.read(buf)
    }
}

/// One accepted connection with its buffered read state.
///
/// Connections cycle through the dispatch queue between requests, so a
/// small worker pool multiplexes arbitrarily many keep-alive clients: a
/// worker holds a connection for the length of an in-flight request or
/// a non-blocking readiness probe (one `peek` syscall), never while it
/// sits idle.
struct Conn {
    reader: BufReader<DeadlineStream>,
    writer: TcpStream,
    tracker_id: Option<u64>,
    tracker: Arc<ConnTracker>,
    /// When the connection last finished a request (or was accepted);
    /// idle longer than [`KEEP_ALIVE_TIMEOUT`] means drop on probe.
    last_activity: Instant,
}

impl Conn {
    fn idle_expired(&self) -> bool {
        self.last_activity.elapsed() >= KEEP_ALIVE_TIMEOUT
    }
}

impl Drop for Conn {
    fn drop(&mut self) {
        if let Some(id) = self.tracker_id {
            self.tracker.unregister(id);
        }
    }
}

/// What a worker decides after probing a connection.
enum Probe {
    /// Bytes are waiting (or already buffered): serve a request now.
    Ready,
    /// No bytes yet; put the connection back in the queue.
    Idle,
    /// Peer closed or the socket failed: drop the connection.
    Dead,
}

fn probe(conn: &mut Conn) -> Probe {
    // Pipelined bytes may already sit in the BufReader; the socket peek
    // would miss them.
    if !conn.reader.buffer().is_empty() {
        return Probe::Ready;
    }
    if conn.writer.set_nonblocking(true).is_err() {
        return Probe::Dead;
    }
    let mut byte = [0u8; 1];
    let verdict = match conn.writer.peek(&mut byte) {
        Ok(0) => Probe::Dead, // Orderly shutdown by the peer.
        Ok(_) => Probe::Ready,
        Err(e)
            if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            ) =>
        {
            Probe::Idle
        }
        Err(_) => Probe::Dead,
    };
    if conn.writer.set_nonblocking(false).is_err() {
        return Probe::Dead;
    }
    verdict
}

/// A running server; shuts down when dropped (or via
/// [`Server::shutdown`]).
pub struct Server {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tracker: Arc<ConnTracker>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the accept loop plus `threads` workers.
    pub fn start(addr: impl ToSocketAddrs, threads: usize, handler: Handler) -> io::Result<Self> {
        Self::start_observed(addr, threads, handler, None)
    }

    /// Like [`Server::start`], with an [`EdgeObserver`] notified of the
    /// rejections written below the handler (503 over-capacity, 400
    /// malformed) so the caller's access log sees every response.
    pub fn start_observed(
        addr: impl ToSocketAddrs,
        threads: usize,
        handler: Handler,
        observer: Option<EdgeObserver>,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let threads = threads.max(1);

        let (tx, rx): (Sender<Conn>, Receiver<Conn>) = channel();
        let rx = Arc::new(Mutex::new(rx));
        let tracker = Arc::new(ConnTracker::default());

        let workers = (0..threads)
            .map(|i| {
                let rx = Arc::clone(&rx);
                let tx = tx.clone();
                let handler = Arc::clone(&handler);
                let stop = Arc::clone(&stop);
                let observer = observer.clone();
                std::thread::Builder::new()
                    .name(format!("ziggy-serve-worker-{i}"))
                    .spawn(move || {
                        // Consecutive idle probes; cycling only quiet
                        // connections earns a nap instead of a spin.
                        let mut idle_streak: u32 = 0;
                        loop {
                            let recv = rx
                                .lock()
                                .expect("worker queue")
                                .recv_timeout(DISPATCH_TIMEOUT);
                            let mut conn = match recv {
                                Ok(c) => c,
                                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                                    if stop.load(Ordering::SeqCst) {
                                        return;
                                    }
                                    idle_streak = 0;
                                    continue;
                                }
                                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return,
                            };
                            if stop.load(Ordering::SeqCst) {
                                continue; // Drop the connection; drain the queue.
                            }
                            match probe(&mut conn) {
                                Probe::Dead => {
                                    idle_streak = 0;
                                }
                                Probe::Idle => {
                                    if conn.idle_expired() {
                                        // Keep-alive deadline passed:
                                        // drop instead of requeueing, so
                                        // half-open peers cannot occupy
                                        // tracker slots forever.
                                        idle_streak = 0;
                                        continue;
                                    }
                                    let _ = tx.send(conn);
                                    idle_streak += 1;
                                    if idle_streak >= IDLE_STREAK_NAP {
                                        std::thread::sleep(IDLE_NAP);
                                        idle_streak = 0;
                                    }
                                }
                                Probe::Ready => {
                                    idle_streak = 0;
                                    if serve_one(&mut conn, &handler, observer.as_ref()) {
                                        conn.last_activity = Instant::now();
                                        let _ = tx.send(conn);
                                    }
                                }
                            }
                        }
                    })
                    .expect("spawn worker")
            })
            .collect();

        let acceptor = {
            let stop = Arc::clone(&stop);
            let tracker = Arc::clone(&tracker);
            let observer = observer.clone();
            std::thread::Builder::new()
                .name("ziggy-serve-acceptor".into())
                .spawn(move || {
                    for stream in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break; // Workers exit via the stop flag.
                        }
                        if let Ok(stream) = stream {
                            if tracker.conns.lock().expect("conn tracker").len() >= MAX_CONNS {
                                refuse_overloaded(
                                    stream,
                                    "server at connection capacity",
                                    observer.clone(),
                                );
                                continue;
                            }
                            let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
                            let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
                            let _ = stream.set_nodelay(true);
                            let Ok(reader_half) = stream.try_clone() else {
                                refuse_overloaded(
                                    stream,
                                    "connection setup failed",
                                    observer.clone(),
                                );
                                continue;
                            };
                            let conn = Conn {
                                reader: BufReader::new(DeadlineStream {
                                    stream: reader_half,
                                    // Per-request; serve_one resets it.
                                    deadline: Instant::now() + REQUEST_DEADLINE,
                                    timeout_at_max: false,
                                }),
                                tracker_id: tracker.register(&stream),
                                writer: stream,
                                tracker: Arc::clone(&tracker),
                                last_activity: Instant::now(),
                            };
                            if tx.send(conn).is_err() {
                                break;
                            }
                        }
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Self {
            local_addr,
            stop,
            tracker,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, and joins all threads.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking `accept`.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        // Interrupt workers parked on idle keep-alive connections.
        self.tracker.shutdown_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
    }
}

/// Concurrent refusal threads; beyond this, over-capacity connections
/// are dropped silently so a refusal flood cannot itself exhaust the
/// process.
const MAX_REFUSAL_THREADS: usize = 32;
/// Hard wall-clock bound on the pre-close drain, so a peer trickling
/// bytes cannot keep the draining thread alive indefinitely.
const DRAIN_DEADLINE: Duration = Duration::from_secs(2);

static ACTIVE_REFUSALS: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

/// Tells a client the server cannot take its connection (over
/// [`MAX_CONNS`], or the stream could not be set up) before hanging up,
/// instead of an unexplained reset. Runs on a short-lived, capped,
/// deadline-bounded thread so neither a slow peer nor a refusal flood
/// can stall the acceptor or pile up resources.
fn refuse_overloaded(stream: TcpStream, reason: &'static str, observer: Option<EdgeObserver>) {
    if ACTIVE_REFUSALS.fetch_add(1, Ordering::Relaxed) >= MAX_REFUSAL_THREADS {
        ACTIVE_REFUSALS.fetch_sub(1, Ordering::Relaxed);
        return; // Refusal flood: fall back to dropping silently.
    }
    let spawned = std::thread::Builder::new()
        .name("ziggy-serve-refuse".into())
        .spawn(move || {
            refuse_overloaded_blocking(stream, reason, observer);
            ACTIVE_REFUSALS.fetch_sub(1, Ordering::Relaxed);
        });
    if spawned.is_err() {
        ACTIVE_REFUSALS.fetch_sub(1, Ordering::Relaxed);
    }
}

fn refuse_overloaded_blocking(
    mut stream: TcpStream,
    reason: &'static str,
    observer: Option<EdgeObserver>,
) {
    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let trace = ziggy_obs::trace::mint_trace_id();
    let resp = Response::new(503, format!("{{\"error\":\"{reason}\"}}"))
        .with_header(ziggy_obs::trace::TRACE_HEADER, trace.clone());
    let _ = write_response(&mut stream, &resp, true);
    if let Some(observe) = observer {
        observe(503, &trace);
    }
    let _ = stream.shutdown(Shutdown::Write);
    drain_briefly(&mut stream);
}

/// Consumes whatever the peer already sent — bounded in bytes AND
/// wall-clock — before a connection carrying a just-written error
/// response is dropped. Closing with unread bytes queued makes the
/// kernel RST, which can discard that response from the peer's receive
/// buffer; draining first keeps the close orderly. The caller must have
/// bounded the read timeout (short socket timeout or deadline).
fn drain_briefly<R: Read>(reader: &mut R) {
    let deadline = Instant::now() + DRAIN_DEADLINE;
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while Instant::now() < deadline {
        match reader.read(&mut sink) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                drained += n;
                // A rejected upload can have a whole body in flight; the
                // wall-clock deadline is the real bound, the byte cap
                // only guards against a pathological firehose.
                if drained > MAX_BODY_BYTES {
                    break;
                }
            }
        }
    }
}

/// Serves exactly one request on a ready connection. Returns `true` when
/// the connection should be requeued for more requests.
fn serve_one(conn: &mut Conn, handler: &Handler, observer: Option<&EdgeObserver>) -> bool {
    conn.reader.get_mut().deadline = Instant::now() + REQUEST_DEADLINE;
    let request = match read_request(&mut conn.reader) {
        Ok(Some(mut r)) => {
            r.peer = conn.writer.peer_addr().ok();
            r
        }
        Ok(None) => return false, // EOF raced the readiness probe.
        Err(e) => {
            // Malformed request: answer 400 once, then drop — draining
            // the unread remainder first so the close does not RST the
            // 400 away (same hazard as the over-capacity 503). The
            // deadline reset bounds each drain read.
            let trace = ziggy_obs::trace::mint_trace_id();
            let resp = Response::new(400, format!("{{\"error\":\"{e}\"}}"))
                .with_header(ziggy_obs::trace::TRACE_HEADER, trace.clone());
            let _ = write_response(&mut conn.writer, &resp, true);
            if let Some(observe) = observer {
                observe(400, &trace);
            }
            let _ = conn.writer.shutdown(Shutdown::Write);
            conn.reader.get_mut().deadline = Instant::now() + DRAIN_DEADLINE;
            drain_briefly(&mut conn.reader);
            return false;
        }
    };
    let close = request
        .header("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
    let response = catch_unwind(AssertUnwindSafe(|| handler(&request))).unwrap_or_else(|_| {
        Response::new(500, "{\"error\":\"internal server error\"}".to_string())
    });
    if write_response(&mut conn.writer, &response, close).is_err() {
        return false;
    }
    !close
}

/// Reads one line with a hard byte cap, so a peer streaming an endless
/// newline-free head cannot grow memory (`read_line` alone buffers the
/// whole "line" before any caller-side length check could run).
/// Returns the line without its terminator; `Ok(None)` on clean EOF.
fn read_line_bounded<R: BufRead>(reader: &mut R, max_bytes: usize) -> io::Result<Option<String>> {
    let mut line = String::new();
    let n = reader
        .by_ref()
        .take(max_bytes as u64 + 1)
        .read_line(&mut line)?;
    if n == 0 {
        return Ok(None);
    }
    if !line.ends_with('\n') && n > max_bytes {
        return Err(bad("request head too large"));
    }
    while line.ends_with(['\n', '\r']) {
        line.pop();
    }
    Ok(Some(line))
}

/// Reads one request; `Ok(None)` on immediate EOF (client closed a
/// keep-alive connection).
fn read_request<R: BufRead>(reader: &mut R) -> io::Result<Option<Request>> {
    let Some(line) = read_line_bounded(reader, MAX_HEAD_BYTES)? else {
        return Ok(None);
    };
    let mut head_budget = MAX_HEAD_BYTES.saturating_sub(line.len());
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m.to_ascii_uppercase(), t),
        _ => return Err(bad("malformed request line")),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };

    let mut headers = Vec::new();
    loop {
        let Some(h) = read_line_bounded(reader, head_budget)? else {
            return Err(bad("eof in headers"));
        };
        head_budget = head_budget
            .checked_sub(h.len() + 1)
            .ok_or_else(|| bad("request head too large"))?;
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }

    // Only Content-Length framing is supported. Silently ignoring a
    // chunked body would desync the connection: the chunk stream would
    // parse as the next request line. Reject instead.
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err(bad("transfer-encoding is not supported"));
    }
    let mut content_length: Option<usize> = None;
    for (k, v) in &headers {
        if k == "content-length" {
            // RFC 9110: DIGITs only. usize::parse alone would also
            // accept "+5", which intermediaries may frame differently.
            if !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad("bad content-length"));
            }
            let n = v.parse::<usize>().map_err(|_| bad("bad content-length"))?;
            if content_length.is_some_and(|prev| prev != n) {
                return Err(bad("conflicting content-length headers"));
            }
            content_length = Some(n);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(bad("request body too large"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
        peer: None,
    }))
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

/// Renders the response head (status line + framing + extra headers +
/// blank line) exactly as [`write_response`] would send it.
fn response_head(response: &Response, close: bool) -> String {
    // Default to JSON, but let a handler override the content type (the
    // Prometheus exposition route serves text/plain).
    let has_content_type = response
        .headers
        .iter()
        .any(|(k, _)| k.eq_ignore_ascii_case("content-type"));
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        reason(response.status),
        response.body.len(),
        if close { "close" } else { "keep-alive" },
    );
    if !has_content_type {
        head.push_str("Content-Type: application/json\r\n");
    }
    for (name, value) in &response.headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    head
}

fn write_response<W: Write>(writer: &mut W, response: &Response, close: bool) -> io::Result<()> {
    writer.write_all(response_head(response, close).as_bytes())?;
    writer.write_all(response.body.as_bytes())?;
    writer.flush()
}

/// Serializes a full response into one byte buffer — the form the
/// router's event loop queues on a connection's write buffer (the
/// threaded path streams via [`write_response`] instead).
pub fn encode_response(response: &Response, close: bool) -> Vec<u8> {
    let head = response_head(response, close);
    let mut out = Vec::with_capacity(head.len() + response.body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(response.body.as_bytes());
    out
}

// --------------------------------------------------------------------
// Incremental (buffer-at-a-time) parsing for the event-loop data plane
// --------------------------------------------------------------------

/// Locates the end of an HTTP head in `buf`: the index one past the
/// blank line. Accepts CRLF and bare-LF line endings like the blocking
/// parser does.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    let mut i = 0;
    while i < buf.len() {
        if buf[i] == b'\n' {
            // "\n\r\n" (CRLF blank line) or "\n\n" (bare-LF blank line).
            if buf[i + 1..].starts_with(b"\r\n") {
                return Some(i + 3);
            }
            if buf[i + 1..].starts_with(b"\n") {
                return Some(i + 2);
            }
        }
        i += 1;
    }
    None
}

/// Parses one complete request out of the front of `buf` without
/// consuming from a stream: returns `Ok(Some((request, consumed)))`
/// when `buf` holds a full head **and** body (the caller drains
/// `consumed` bytes), `Ok(None)` when more bytes are needed, and
/// `Err` on a malformed head — same validation rules as the blocking
/// [`read_request`] path (head/body caps, `Content-Length`-only
/// framing, digit-only agreeing lengths).
pub fn try_parse_request(buf: &[u8]) -> Result<Option<(Request, usize)>, String> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err("request head too large".into());
        }
        return Ok(None);
    };
    if head_end > MAX_HEAD_BYTES {
        return Err("request head too large".into());
    }
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 request head")?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let line = lines.next().unwrap_or("");
    let mut parts = line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if v.starts_with("HTTP/1") => (m.to_ascii_uppercase(), t),
        _ => return Err("malformed request line".into()),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    let mut headers = Vec::new();
    for h in lines {
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    if headers.iter().any(|(k, _)| k == "transfer-encoding") {
        return Err("transfer-encoding is not supported".into());
    }
    let mut content_length: Option<usize> = None;
    for (k, v) in &headers {
        if k == "content-length" {
            if !v.bytes().all(|b| b.is_ascii_digit()) {
                return Err("bad content-length".into());
            }
            let n = v.parse::<usize>().map_err(|_| "bad content-length")?;
            if content_length.is_some_and(|prev| prev != n) {
                return Err("conflicting content-length headers".into());
            }
            content_length = Some(n);
        }
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err("request body too large".into());
    }
    let total = head_end + content_length;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((
        Request {
            method,
            path,
            query,
            headers,
            body: buf[head_end..total].to_vec(),
            peer: None,
        },
        total,
    )))
}

/// A parsed response head (the body follows at `head_len` and runs for
/// `content_length` bytes).
#[derive(Debug)]
pub struct ResponseHead {
    /// Status code from the status line.
    pub status: u16,
    /// Lower-cased header name/value pairs.
    pub headers: Vec<(String, String)>,
    /// Body length (Content-Length framing only; absent means 0).
    pub content_length: usize,
    /// Bytes consumed by the head, including the blank line.
    pub head_len: usize,
    /// Whether the peer signalled `Connection: close`.
    pub close: bool,
}

impl ResponseHead {
    /// First value of a (case-insensitive, stored lower-cased) header.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses one response head from the front of `buf`: `Ok(Some(head))`
/// when the head is complete (the body may still be in flight),
/// `Ok(None)` when more bytes are needed, `Err` on garbage.
pub fn try_parse_response_head(buf: &[u8]) -> Result<Option<ResponseHead>, String> {
    let Some(head_end) = find_head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err("response head too large".into());
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| "non-UTF-8 response head")?;
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let status_line = lines.next().unwrap_or("");
    if !status_line.starts_with("HTTP/1") {
        return Err("malformed status line".into());
    }
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or("malformed status line")?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    let mut close = false;
    for h in lines {
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            let k = k.trim().to_ascii_lowercase();
            let v = v.trim().to_string();
            if k == "content-length" {
                content_length = v.parse().map_err(|_| "bad content-length")?;
            }
            if k == "connection" && v.eq_ignore_ascii_case("close") {
                close = true;
            }
            headers.push((k, v));
        }
    }
    Ok(Some(ResponseHead {
        status,
        headers,
        content_length,
        head_len: head_end,
        close,
    }))
}

// --------------------------------------------------------------------
// Client
// --------------------------------------------------------------------

/// A full client-side response: status, headers (lower-cased names),
/// body.
pub type FullResponse = (u16, Vec<(String, String)>, String);

/// A keep-alive HTTP/1.1 client for one server, used by integration
/// tests, benchmarks and the `ziggy` CLI's smoke checks.
pub struct Client {
    stream: BufReader<TcpStream>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: BufReader::new(stream),
        })
    }

    /// Connects with a bounded connect timeout (health probes and proxy
    /// hops must fail fast when a backend is down, not after the OS
    /// connect timeout).
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Self> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream: BufReader::new(stream),
        })
    }

    /// Overrides the read timeout (default [`IO_TIMEOUT`]).
    pub fn set_read_timeout(&mut self, timeout: Duration) -> io::Result<()> {
        self.stream.get_ref().set_read_timeout(Some(timeout))
    }

    /// (Re)asserts `TCP_NODELAY` on the underlying socket. `connect`
    /// already sets it; pool owners call this so the no-Nagle contract
    /// on upstream hops is explicit at the call site.
    pub fn set_nodelay(&self, nodelay: bool) -> io::Result<()> {
        self.stream.get_ref().set_nodelay(nodelay)
    }

    /// Sends one request and reads the `(status, body)` response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> io::Result<(u16, String)> {
        let (status, _, body) = self.request_with_headers(method, path, &[], body)?;
        Ok((status, body))
    }

    /// Sends one request carrying `extra_headers` (e.g. `If-None-Match`)
    /// and reads the full `(status, headers, body)` response — header
    /// names come back lower-cased. This is the proxy's entry point: the
    /// fleet router forwards conditional headers to backends and relays
    /// `ETag`s (and `304`s) to the client. Header values must be single
    /// CRLF-free lines; the caller only forwards values that were parsed
    /// out of a request head, which cannot contain line breaks.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra_headers: &[(&str, &str)],
        body: Option<&str>,
    ) -> io::Result<FullResponse> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: ziggy\r\nContent-Length: {}\r\n",
            body.len(),
        );
        for (name, value) in extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let stream = self.stream.get_mut();
        stream.write_all(head.as_bytes())?;
        stream.write_all(body.as_bytes())?;
        stream.flush()?;
        self.read_response()
    }

    fn read_response(&mut self) -> io::Result<FullResponse> {
        let mut line = String::new();
        if self.stream.read_line(&mut line)? == 0 {
            return Err(bad("server closed connection"));
        }
        let status: u16 = line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad("malformed status line"))?;
        let mut content_length = 0usize;
        let mut headers = Vec::new();
        loop {
            let mut h = String::new();
            if self.stream.read_line(&mut h)? == 0 {
                return Err(bad("eof in response headers"));
            }
            let h = h.trim_end();
            if h.is_empty() {
                break;
            }
            if let Some((k, v)) = h.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().map_err(|_| bad("bad content-length"))?;
                }
                headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
            }
        }
        let mut body = vec![0u8; content_length];
        self.stream.read_exact(&mut body)?;
        String::from_utf8(body)
            .map(|b| (status, headers, b))
            .map_err(|_| bad("non-UTF-8 response body"))
    }
}

/// One-shot convenience: connect, send, read, close.
pub fn request_once(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> io::Result<(u16, String)> {
    Client::connect(addr)?.request(method, path, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_server() -> Server {
        let handler: Handler = Arc::new(|req: &Request| {
            Response::new(
                200,
                format!(
                    "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                    req.method,
                    req.path,
                    req.body.len()
                ),
            )
        });
        Server::start("127.0.0.1:0", 2, handler).unwrap()
    }

    #[test]
    fn round_trip_and_keep_alive() {
        let server = echo_server();
        let mut client = Client::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            let (status, body) = client
                .request("POST", "/echo", Some(&"x".repeat(i * 10)))
                .unwrap();
            assert_eq!(status, 200);
            assert!(body.contains(&format!("\"len\":{}", i * 10)), "{body}");
        }
        server.shutdown();
    }

    #[test]
    fn query_strings_are_stripped() {
        let server = echo_server();
        let (_, body) = request_once(server.local_addr(), "GET", "/a/b?x=1", None).unwrap();
        assert!(body.contains("\"path\":\"/a/b\""), "{body}");
    }

    #[test]
    fn malformed_requests_get_400() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"NOT A REQUEST\r\n\r\n").unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 400"), "{out}");
    }

    #[test]
    fn deadline_stream_cuts_off_expired_reads() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut ds = DeadlineStream {
            stream: server_side,
            deadline: Instant::now(), // Already expired.
            timeout_at_max: false,
        };
        let mut buf = [0u8; 8];
        let err = ds.read(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
    }

    #[test]
    fn unsupported_framing_is_rejected() {
        let server = echo_server();
        for head in [
            // Chunked framing: the body would desync the connection.
            "POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
            // Smuggling-style conflicting lengths.
            "POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\nabc",
            // Non-canonical length (sign accepted by usize::parse).
            "POST /x HTTP/1.1\r\nContent-Length: +2\r\n\r\nhi",
        ] {
            let mut stream = TcpStream::connect(server.local_addr()).unwrap();
            stream.write_all(head.as_bytes()).unwrap();
            let mut out = String::new();
            let _ = stream.read_to_string(&mut out);
            assert!(out.starts_with("HTTP/1.1 400"), "{head:?} -> {out}");
        }
        // Duplicate but *agreeing* lengths are fine.
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream
            .write_all(
                b"POST /x HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\
                  Connection: close\r\n\r\nhi",
            )
            .unwrap();
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(out.starts_with("HTTP/1.1 200"), "{out}");
        server.shutdown();
    }

    #[test]
    fn endless_header_line_is_cut_off() {
        let server = echo_server();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        stream.write_all(b"GET / HTTP/1.1\r\n").unwrap();
        // A single header "line" growing far past the head cap, never
        // terminated: the server must reject it instead of buffering.
        let chunk = [b'A'; 4096];
        let mut sent = 0usize;
        while sent < MAX_HEAD_BYTES * 4 {
            if stream.write_all(&chunk).is_err() {
                break; // Server already hung up: that's the point.
            }
            sent += chunk.len();
        }
        let mut out = String::new();
        let _ = stream.read_to_string(&mut out);
        assert!(
            out.starts_with("HTTP/1.1 400") || out.is_empty(),
            "expected rejection, got: {}",
            &out[..out.len().min(80)]
        );
        server.shutdown();
    }

    #[test]
    fn handler_panic_becomes_500() {
        let handler: Handler = Arc::new(|req: &Request| {
            if req.path == "/boom" {
                panic!("handler exploded");
            }
            Response::new(200, "{}")
        });
        let server = Server::start("127.0.0.1:0", 2, handler).unwrap();
        let (status, body) = request_once(server.local_addr(), "GET", "/boom", None).unwrap();
        assert_eq!(status, 500);
        assert!(body.contains("internal server error"));
        // The worker survives for the next request.
        let (status, _) = request_once(server.local_addr(), "GET", "/fine", None).unwrap();
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn try_parse_request_is_incremental_and_strict() {
        let full = b"POST /tables/t/characterize?k=1 HTTP/1.1\r\nHost: z\r\nContent-Length: 5\r\n\r\nhello";
        // Every prefix short of the full message asks for more bytes.
        for cut in 0..full.len() {
            assert!(
                try_parse_request(&full[..cut]).unwrap().is_none(),
                "cut at {cut} should be incomplete"
            );
        }
        let (req, consumed) = try_parse_request(full).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/tables/t/characterize");
        assert_eq!(req.query, "k=1");
        assert_eq!(req.header("host"), Some("z"));
        assert_eq!(req.body, b"hello");

        // Pipelined second request: only the first is consumed.
        let mut two = full.to_vec();
        two.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
        let (_, consumed) = try_parse_request(&two).unwrap().unwrap();
        assert_eq!(consumed, full.len());
        let (second, c2) = try_parse_request(&two[consumed..]).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert_eq!(consumed + c2, two.len());

        // Same rejection rules as the blocking parser.
        for bad_head in [
            &b"NOT A REQUEST\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 7\r\n\r\nabc"[..],
            &b"POST /x HTTP/1.1\r\nContent-Length: +2\r\n\r\nhi"[..],
        ] {
            assert!(try_parse_request(bad_head).is_err(), "{bad_head:?}");
        }
        // An endless head is rejected rather than buffered forever.
        let endless = vec![b'A'; MAX_HEAD_BYTES + 1];
        assert!(try_parse_request(&endless).is_err());
        // Bare-LF line endings are tolerated, like read_request.
        let lf = b"GET /x HTTP/1.1\nHost: z\n\n";
        let (req, consumed) = try_parse_request(lf).unwrap().unwrap();
        assert_eq!(req.path, "/x");
        assert_eq!(consumed, lf.len());
    }

    #[test]
    fn try_parse_response_head_reads_framing() {
        let raw = b"HTTP/1.1 304 Not Modified\r\nContent-Length: 0\r\nETag: \"abc\"\r\nConnection: keep-alive\r\n\r\n";
        for cut in 0..raw.len() {
            assert!(try_parse_response_head(&raw[..cut]).unwrap().is_none());
        }
        let head = try_parse_response_head(raw).unwrap().unwrap();
        assert_eq!(head.status, 304);
        assert_eq!(head.content_length, 0);
        assert_eq!(head.head_len, raw.len());
        assert_eq!(head.header("etag"), Some("\"abc\""));
        assert!(!head.close);

        let closing = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok";
        let head = try_parse_response_head(closing).unwrap().unwrap();
        assert!(head.close);
        assert_eq!(head.content_length, 2);
        assert_eq!(&closing[head.head_len..], b"ok");

        assert!(try_parse_response_head(b"garbage\r\n\r\n").is_err());
    }

    #[test]
    fn encode_response_matches_streamed_framing() {
        let resp = Response::new(200, "{\"ok\":true}").with_header("ETag", "\"e1\"");
        let encoded = encode_response(&resp, false);
        let mut streamed = Vec::new();
        write_response(&mut streamed, &resp, false).unwrap();
        assert_eq!(encoded, streamed);
        let head = try_parse_response_head(&encoded).unwrap().unwrap();
        assert_eq!(head.status, 200);
        assert_eq!(head.content_length, 11);
        assert_eq!(head.header("etag"), Some("\"e1\""));
        assert_eq!(head.header("content-type"), Some("application/json"));
    }

    #[test]
    fn shutdown_joins_cleanly() {
        let server = echo_server();
        let addr = server.local_addr();
        request_once(addr, "GET", "/x", None).unwrap();
        server.shutdown();
        // New connections are no longer served.
        let refused = request_once(addr, "GET", "/x", None).is_err();
        assert!(refused);
    }
}
