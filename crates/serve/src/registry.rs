//! The table registry: one shared engine per ingested table.
//!
//! Each [`TableEntry`] owns a [`Ziggy`] engine built over an
//! `Arc<Table>`. Because the engine (and its [`StatsCache`]) is shared by
//! every worker thread and every client, whole-table statistics and the
//! dependency graph are computed once per *table*, not once per request —
//! the paper's between-query sharing promoted to between-client sharing.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde_json::Value;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_durable::{combine_csv, wall_ms, DurableLog, Record};
use ziggy_store::csv::{read_csv_str, CsvOptions};
use ziggy_store::{append_rows_csv, StatsCache, Table};

use crate::json::ApiError;

/// Upper bound on resident tables; ingest beyond it is refused (409).
/// The cap bounds *live* state: dropping a table (`DELETE
/// /tables/{name}`) frees its slot and its name.
pub const MAX_TABLES: usize = 256;

/// Upper bound on retained delete tombstones; past it the oldest (by
/// HLC timestamp) are evicted. Tombstones are tiny (name + u64), so the
/// cap exists only to bound hostile churn, not memory pressure.
pub const MAX_TOMBSTONES: usize = 4096;

/// FNV-1a 64-bit hash — the stable, dependency-free hash shared by the
/// registry's ingest fingerprints and the fleet's consistent-hash ring
/// (both need determinism across processes, which `DefaultHasher` does
/// not promise). Now lives in `ziggy-store` (the engine's report cache
/// and ETag fingerprints use it too); re-exported here so existing
/// `ziggy_serve::fnv1a_64` callers keep working.
pub use ziggy_store::fnv1a_64;

/// Where a table's source CSV bytes live for export
/// (`GET /tables/{name}/csv`). The fleet's repair loop depends on the
/// export fingerprinting identically to the original upload, which a
/// re-serialization of the parsed table could not promise — so the
/// *original bytes* must stay reachable somewhere.
enum CsvSource {
    /// No CSV provenance (in-process registration via
    /// [`TableRegistry::insert_table`]); export answers 404.
    None,
    /// Retained in memory (durability disabled). Roughly doubles the
    /// table's resident footprint.
    Memory(Arc<str>),
    /// Served from the durable log's ingest record (or snapshot) — the
    /// bytes already on disk for crash recovery do double duty, and the
    /// in-memory copy is dropped.
    Durable(Arc<DurableLog>),
}

/// A registered table with its shared engine.
pub struct TableEntry {
    name: String,
    engine: Ziggy,
    /// FNV-1a of the source CSV bytes, when the table was ingested from
    /// CSV. The fleet's replicate path compares fingerprints so a retried
    /// or replicated upload of the *same* table is idempotent while a
    /// name collision with *different* content stays a conflict.
    fingerprint: Option<u64>,
    /// Hybrid-logical-clock timestamp of the winning ingest (0 for
    /// provenance-free registrations). Repair compares it against
    /// tombstone timestamps to tell a deleted table from a recreated
    /// one.
    ts: u64,
    csv: CsvSource,
}

impl std::fmt::Debug for TableEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEntry")
            .field("name", &self.name)
            .field("n_rows", &self.table().n_rows())
            .field("n_cols", &self.table().n_cols())
            .finish()
    }
}

impl TableEntry {
    /// The table's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared engine (thread-safe; characterize directly on it).
    pub fn engine(&self) -> &Ziggy {
        &self.engine
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        self.engine.table()
    }

    /// The engine's statistics cache (for `/metrics`).
    pub fn cache(&self) -> &StatsCache {
        self.engine.cache()
    }

    /// FNV-1a fingerprint of the source CSV (None for tables registered
    /// in-process via [`TableRegistry::insert_table`]).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// HLC timestamp of the winning ingest (0 for provenance-free
    /// registrations).
    pub fn ts(&self) -> u64 {
        self.ts
    }

    /// The source CSV text — from memory when durability is off, read
    /// back out of the durable log when it is on, `None` for tables
    /// registered in-process via [`TableRegistry::insert_table`] (no
    /// CSV provenance).
    pub fn export_csv(&self) -> Option<String> {
        match &self.csv {
            CsvSource::None => None,
            CsvSource::Memory(csv) => Some(csv.to_string()),
            CsvSource::Durable(log) => log.table_csv(&self.name),
        }
    }

    /// The `{name, n_rows, n_cols, ts}` summary object.
    pub fn summary(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            (
                "n_rows".into(),
                Value::Number(serde_json::Number::U(self.table().n_rows() as u64)),
            ),
            (
                "n_cols".into(),
                Value::Number(serde_json::Number::U(self.table().n_cols() as u64)),
            ),
            ("ts".into(), Value::Number(serde_json::Number::U(self.ts))),
        ])
    }
}

/// Thread-safe name → [`TableEntry`] map, plus the delete-tombstone set
/// and the hybrid logical clock that orders deletes against ingests.
#[derive(Default)]
pub struct TableRegistry {
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
    /// Deleted table name → `(HLC timestamp, stray)`. Consulted by the
    /// fleet's repair loop (via `GET /tombstones`) so a backend that
    /// was absent at delete time cannot resurrect the table on rejoin.
    /// An ingest of the same name clears the local tombstone. Stray
    /// tombstones (garbage-collected surplus replicas) stay local:
    /// they keep the copy dead across replay but are excluded from the
    /// exported set, so a clean-up is never mistaken for a fleet-wide
    /// delete.
    tombstones: Mutex<HashMap<String, (u64, bool)>>,
    /// Hybrid logical clock: `max(wall_ms, last + 1)`, so timestamps
    /// are strictly increasing per backend even when the wall clock
    /// stalls or steps backwards.
    clock: AtomicU64,
    /// The durable log, when this registry persists its mutations.
    durable: RwLock<Option<Arc<DurableLog>>>,
}

fn err_duplicate(name: &str) -> ApiError {
    ApiError::conflict(format!("table `{name}` already exists"))
}

fn err_full() -> ApiError {
    ApiError::conflict(format!("registry full ({MAX_TABLES} tables)"))
}

/// Whether `name` is a legal table name (1-64 chars of
/// `[A-Za-z0-9_-]`). Public because the fleet router must validate
/// names *before* interpolating them into proxied request lines — a
/// body-supplied name containing CRLF or whitespace would otherwise
/// corrupt (or smuggle a second request onto) a pooled backend
/// connection.
pub fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl TableRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests CSV text as a new named table, building its shared engine.
    pub fn insert_csv(
        &self,
        name: &str,
        csv: &str,
        config: ZiggyConfig,
    ) -> Result<Arc<TableEntry>, ApiError> {
        if !valid_table_name(name) {
            return Err(ApiError::bad_request(
                "table name must be 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        // Cheap pre-check so a duplicate name or a full registry fails
        // before the CSV parse and engine build, not after. The
        // authoritative re-check stays in `insert_table` under the write
        // lock (a racing ingest may take the slot in between).
        {
            let tables = self.tables.read();
            if tables.contains_key(name) {
                return Err(err_duplicate(name));
            }
            if tables.len() >= MAX_TABLES {
                return Err(err_full());
            }
        }
        let table = read_csv_str(csv, &CsvOptions::default())
            .map_err(|e| ApiError::unprocessable(format!("CSV rejected: {e}")))?;
        self.register(name, table, config, Some((fnv1a_64(csv.as_bytes()), csv)))
    }

    /// Idempotent CSV ingest — the fleet's replicate path. Returns the
    /// entry plus whether it was created by this call: re-uploading a CSV
    /// that fingerprints identically to the resident table succeeds
    /// without rebuilding anything (so the router can retry a replica
    /// materialization safely), while a name collision with different
    /// content is still a 409.
    pub fn replicate_csv(
        &self,
        name: &str,
        csv: &str,
        config: ZiggyConfig,
    ) -> Result<(Arc<TableEntry>, bool), ApiError> {
        let fingerprint = fnv1a_64(csv.as_bytes());
        let same_table = |entry: &Arc<TableEntry>| entry.fingerprint == Some(fingerprint);
        if let Ok(existing) = self.get(name) {
            return if same_table(&existing) {
                Ok((existing, false))
            } else {
                Err(err_duplicate(name))
            };
        }
        match self.insert_csv(name, csv, config) {
            Ok(entry) => Ok((entry, true)),
            // A racing replicate of the same upload may have taken the
            // slot between the lookup and the insert; that's idempotent
            // success, not a conflict.
            Err(e) if e.status == 409 => match self.get(name) {
                Ok(existing) if same_table(&existing) => Ok((existing, false)),
                _ => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Registers an already-built table (used by `ziggy serve --demo` and
    /// in-process benchmarks).
    pub fn insert_table(
        &self,
        name: &str,
        table: Table,
        config: ZiggyConfig,
    ) -> Result<Arc<TableEntry>, ApiError> {
        self.register(name, table, config, None)
    }

    fn register(
        &self,
        name: &str,
        table: Table,
        config: ZiggyConfig,
        provenance: Option<(u64, &str)>,
    ) -> Result<Arc<TableEntry>, ApiError> {
        if !valid_table_name(name) {
            return Err(ApiError::bad_request(
                "table name must be 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        let durable = self.durable.read().clone();
        let ts = if provenance.is_some() {
            self.hlc_now()
        } else {
            0
        };
        let csv_source = match (&provenance, &durable) {
            (None, _) => CsvSource::None,
            (Some((_, csv)), None) => CsvSource::Memory(Arc::from(*csv)),
            (Some(_), Some(log)) => CsvSource::Durable(Arc::clone(log)),
        };
        let entry = Arc::new(TableEntry {
            name: name.to_string(),
            engine: Ziggy::shared(Arc::new(table), config),
            fingerprint: provenance.map(|(fp, _)| fp),
            ts,
            csv: csv_source,
        });
        let mut tables = self.tables.write();
        if tables.len() >= MAX_TABLES {
            return Err(err_full());
        }
        if tables.contains_key(name) {
            return Err(err_duplicate(name));
        }
        // Log before acknowledging (WAL discipline): if the ingest
        // record cannot be made durable the request fails and the
        // table is not registered. Holding the write lock across the
        // append serializes ingests, which is fine — ingest is rare
        // and the ordering guarantees the log and the map agree.
        if let (Some((fingerprint, csv)), Some(log)) = (&provenance, &durable) {
            log.append(&Record::Ingest {
                table: name.to_string(),
                fingerprint: *fingerprint,
                ts,
                csv: (*csv).to_string(),
            })
            .map_err(|e| ApiError::internal(format!("durable log append failed: {e}")))?;
        }
        tables.insert(name.to_string(), Arc::clone(&entry));
        if provenance.is_some() {
            // A (re)ingest supersedes any local tombstone for the name.
            self.tombstones.lock().remove(name);
        }
        Ok(entry)
    }

    /// Appends headerless CSV rows to a live CSV-ingested table.
    ///
    /// The append is *incremental* end to end: the new immutable table
    /// extends the old columns ([`append_rows_csv`] guarantees rebuild
    /// equivalence), the new engine inherits the warm whole-table
    /// statistics and zone maps through [`StatsCache::for_appended`]
    /// (only the tail chunk's summaries rebuild), and every derived
    /// cache above them starts empty — exactly the artifacts the new
    /// rows dirty. The append record is WAL-logged **before** the entry
    /// swap, so replay reproduces the appended table byte-identically
    /// (fingerprint taken over the combined `old CSV ++ rows` bytes).
    ///
    /// Returns the new entry plus the number of rows appended. Sessions
    /// pinned to the old entry keep reading their snapshot; new
    /// requests see the appended table.
    pub fn append_rows(
        &self,
        name: &str,
        rows: &str,
        config: ZiggyConfig,
    ) -> Result<(Arc<TableEntry>, usize), ApiError> {
        let entry = self.get(name)?;
        if entry.fingerprint.is_none() {
            return Err(ApiError::conflict(format!(
                "table `{name}` has no CSV provenance; only CSV-ingested tables accept appends"
            )));
        }
        // Normalize to newline-terminated rows so the logged record,
        // the fingerprint, and every future combine agree byte for byte.
        let rows: String = if rows.ends_with('\n') {
            rows.to_string()
        } else {
            format!("{rows}\n")
        };
        let new_table = append_rows_csv(entry.table(), &rows, &CsvOptions::default())
            .map_err(|e| ApiError::unprocessable(format!("append rejected: {e}")))?;
        let appended = new_table.n_rows() - entry.table().n_rows();
        let old_csv = entry
            .export_csv()
            .ok_or_else(|| ApiError::internal(format!("table `{name}` lost its CSV bytes")))?;
        let combined = combine_csv(&old_csv, &rows);
        let fingerprint = fnv1a_64(combined.as_bytes());
        let ts = self.hlc_now();
        let cache = Arc::new(entry.cache().for_appended(Arc::new(new_table)));
        let new_entry = Arc::new(TableEntry {
            name: name.to_string(),
            engine: Ziggy::from_stats(cache, config),
            fingerprint: Some(fingerprint),
            ts,
            csv: match &entry.csv {
                CsvSource::Durable(log) => CsvSource::Durable(Arc::clone(log)),
                CsvSource::Memory(_) => CsvSource::Memory(Arc::from(combined.as_str())),
                CsvSource::None => unreachable!("provenance checked above"),
            },
        });
        let mut tables = self.tables.write();
        // Re-validate under the write lock: a racing delete, re-ingest,
        // or concurrent append swapped the entry out from under us — the
        // table this append was computed against is stale.
        match tables.get(name) {
            Some(current) if Arc::ptr_eq(current, &entry) => {}
            _ => {
                return Err(ApiError::conflict(format!(
                    "table `{name}` changed during the append; retry"
                )))
            }
        }
        // WAL before the swap (same discipline as ingest): if the
        // append record cannot be made durable, the request fails and
        // the registry still serves the old table.
        if let CsvSource::Durable(log) = &entry.csv {
            log.append(&Record::Append {
                table: name.to_string(),
                fingerprint,
                ts,
                rows,
            })
            .map_err(|e| ApiError::internal(format!("durable log append failed: {e}")))?;
        }
        tables.insert(name.to_string(), Arc::clone(&new_entry));
        Ok((new_entry, appended))
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<TableEntry>, ApiError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no table named `{name}`")))
    }

    /// Drops a table, freeing its slot under [`MAX_TABLES`] and its name
    /// for reuse, and returns the removed entry so the caller can release
    /// whatever else pins it (the router closes the table's sessions).
    /// In-flight requests holding the `Arc` finish normally; the memory
    /// frees when the last holder drops.
    ///
    /// The delete leaves a tombstone (HLC-stamped, durably logged when a
    /// log is attached) so repair can distinguish "deleted" from "never
    /// saw it" when a stale holder rejoins the fleet.
    pub fn remove(&self, name: &str) -> Result<Arc<TableEntry>, ApiError> {
        self.remove_at(name, None)
    }

    /// Drops a **stray replica** of a table: same removal as
    /// [`TableRegistry::remove`], but the tombstone is stamped with the
    /// *entry's own* ingest timestamp instead of a fresh HLC tick, and
    /// marked stray so it is withheld from the exported tombstone set.
    /// The fleet's garbage collector deletes copies the ring walked
    /// away from; a fresh, exported tombstone could outrank the live
    /// replicas' ingest timestamps and read, fleet-wide, as "this table
    /// was deleted" — turning a local clean-up into a data-losing
    /// cascade. The entry-timestamped, local-only tombstone still kills
    /// the copy across replay (applied after its ingest in log order)
    /// while never influencing a last-writer comparison elsewhere.
    pub fn remove_stray(&self, name: &str) -> Result<Arc<TableEntry>, ApiError> {
        let ts = self.get(name)?.ts();
        self.remove_at(name, Some(ts))
    }

    fn remove_at(&self, name: &str, ts: Option<u64>) -> Result<Arc<TableEntry>, ApiError> {
        let mut tables = self.tables.write();
        if !tables.contains_key(name) {
            return Err(ApiError::not_found(format!("no table named `{name}`")));
        }
        // Re-read under the lock on the stray path: a racing re-ingest
        // may have bumped the entry between the caller's peek and here.
        let stray = ts.is_some();
        let ts = match ts {
            Some(_) => tables.get(name).expect("checked above").ts(),
            None => self.hlc_now(),
        };
        if let Some(log) = self.durable.read().clone() {
            log.append(&Record::Tombstone {
                table: name.to_string(),
                ts,
                stray,
            })
            .map_err(|e| ApiError::internal(format!("durable log append failed: {e}")))?;
        }
        let entry = tables.remove(name).expect("checked above");
        let mut tombstones = self.tombstones.lock();
        tombstones.insert(name.to_string(), (ts, stray));
        if tombstones.len() > MAX_TOMBSTONES {
            if let Some(oldest) = tombstones
                .iter()
                .min_by_key(|(_, (ts, _))| *ts)
                .map(|(name, _)| name.clone())
            {
                tombstones.remove(&oldest);
            }
        }
        Ok(entry)
    }

    /// Attaches the durable log. Call before serving traffic (the boot
    /// sequence replays first, then attaches, then opens the listener);
    /// tables ingested afterwards log their mutations and serve CSV
    /// exports from the log instead of retaining the text in memory.
    pub fn attach_durable(&self, log: Arc<DurableLog>) {
        *self.durable.write() = Some(log);
    }

    /// The attached durable log, if any.
    pub fn durable(&self) -> Option<Arc<DurableLog>> {
        self.durable.read().clone()
    }

    /// Next hybrid-logical-clock timestamp: `max(wall_ms, last + 1)`.
    pub fn hlc_now(&self) -> u64 {
        loop {
            let last = self.clock.load(Ordering::Relaxed);
            let next = wall_ms().max(last + 1);
            if self
                .clock
                .compare_exchange_weak(last, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                return next;
            }
        }
    }

    /// Advances the clock to at least `ts` (replay and fleet hygiene:
    /// restored or remote timestamps must not outrun new local ones).
    pub fn observe_ts(&self, ts: u64) {
        self.clock.fetch_max(ts, Ordering::Relaxed);
    }

    /// Restores a replayed table: registers it with `Durable` CSV
    /// provenance using the logged timestamp, **without** re-appending
    /// to the log. The durable log must already be attached.
    pub fn restore_table(
        &self,
        name: &str,
        csv: &str,
        fingerprint: u64,
        ts: u64,
        config: ZiggyConfig,
    ) -> Result<Arc<TableEntry>, ApiError> {
        let log = self
            .durable()
            .ok_or_else(|| ApiError::internal("restore_table requires an attached durable log"))?;
        self.observe_ts(ts);
        let table = read_csv_str(csv, &CsvOptions::default())
            .map_err(|e| ApiError::unprocessable(format!("replayed CSV rejected: {e}")))?;
        let entry = Arc::new(TableEntry {
            name: name.to_string(),
            engine: Ziggy::shared(Arc::new(table), config),
            fingerprint: Some(fingerprint),
            ts,
            csv: CsvSource::Durable(log),
        });
        let mut tables = self.tables.write();
        if tables.len() >= MAX_TABLES {
            return Err(err_full());
        }
        if tables.contains_key(name) {
            return Err(err_duplicate(name));
        }
        tables.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Restores a replayed tombstone (no log append).
    pub fn restore_tombstone(&self, name: &str, ts: u64, stray: bool) {
        self.observe_ts(ts);
        self.tombstones.lock().insert(name.to_string(), (ts, stray));
    }

    /// The full tombstone set — stray clean-ups included — as
    /// `(table, ts, stray)` triples, sorted by name. This is the
    /// snapshot-building view; the fleet-facing `GET /tombstones`
    /// serves [`TableRegistry::exported_tombstones`] instead.
    pub fn tombstones(&self) -> Vec<(String, u64, bool)> {
        let mut all: Vec<(String, u64, bool)> = self
            .tombstones
            .lock()
            .iter()
            .map(|(name, (ts, stray))| (name.clone(), *ts, *stray))
            .collect();
        all.sort();
        all
    }

    /// The tombstones the fleet may act on: user deletes only. Stray
    /// garbage-collection tombstones are withheld — a surplus replica's
    /// clean-up record could carry a timestamp above the live copies'
    /// and would otherwise read, fleet-wide, as "delete this table".
    pub fn exported_tombstones(&self) -> Vec<(String, u64)> {
        let mut all: Vec<(String, u64)> = self
            .tombstones
            .lock()
            .iter()
            .filter(|(_, (_, stray))| !stray)
            .map(|(name, (ts, _))| (name.clone(), *ts))
            .collect();
        all.sort();
        all
    }

    /// Live tables with their CSV bytes, for snapshotting. Tables
    /// without CSV provenance (in-process registrations) are skipped —
    /// they were never logged and are by design ephemeral.
    pub fn snapshot_tables(&self) -> Vec<ziggy_durable::TableState> {
        let entries: Vec<Arc<TableEntry>> = self.tables.read().values().cloned().collect();
        let mut out: Vec<ziggy_durable::TableState> = entries
            .iter()
            .filter_map(|e| {
                let fingerprint = e.fingerprint?;
                let csv = e.export_csv()?;
                Some(ziggy_durable::TableState {
                    name: e.name.clone(),
                    fingerprint,
                    ts: e.ts,
                    csv,
                })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    /// Summaries of all tables, sorted by name for stable output.
    pub fn summaries(&self) -> Vec<Value> {
        let mut entries: Vec<Arc<TableEntry>> = self.tables.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries.iter().map(|e| e.summary()).collect()
    }

    /// Per-table cache counters for `/metrics`, sorted by name. Each
    /// table reports all three reuse levels: `cache` is the whole-table
    /// moment/frequency cache, `prepared` the per-query `PreparedStats`
    /// cache (its `misses` count exactly how many times the preparation
    /// stage actually ran on this engine), and `reports` the
    /// finished-report/byte cache (its `hits` count characterizations
    /// that skipped view search, post-processing, and serialization
    /// entirely).
    pub fn cache_stats(&self) -> Vec<Value> {
        let mut entries: Vec<Arc<TableEntry>> = self.tables.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
            .iter()
            .map(|e| {
                let c = e.cache().counters();
                let (uni, pair, freq) = e.cache().sizes();
                let p = e.engine().prepared_cache().counters();
                let r = e.engine().report_cache().counters();
                let (z_skip, z_fill, z_scan) = e.cache().zone_maps().counters();
                Value::Object(vec![
                    ("name".into(), Value::String(e.name.clone())),
                    (
                        "zone_maps".into(),
                        Value::Object(vec![
                            (
                                "chunks_skipped".into(),
                                Value::Number(serde_json::Number::U(z_skip)),
                            ),
                            (
                                "chunks_filled".into(),
                                Value::Number(serde_json::Number::U(z_fill)),
                            ),
                            (
                                "chunks_scanned".into(),
                                Value::Number(serde_json::Number::U(z_scan)),
                            ),
                        ]),
                    ),
                    (
                        "cache".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(c.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(c.misses)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U((uni + pair + freq) as u64)),
                            ),
                        ]),
                    ),
                    (
                        "prepared".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(p.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(p.misses)),
                            ),
                            (
                                "evictions".into(),
                                Value::Number(serde_json::Number::U(p.evictions)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U(
                                    e.engine().prepared_cache().len() as u64,
                                )),
                            ),
                        ]),
                    ),
                    (
                        "reports".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(r.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(r.misses)),
                            ),
                            (
                                "evictions".into(),
                                Value::Number(serde_json::Number::U(r.evictions)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U(
                                    e.engine().report_cache().len() as u64,
                                )),
                            ),
                        ]),
                    ),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "x,y\n1,2\n3,4\n5,6\n";

    #[test]
    fn ingest_and_lookup() {
        let r = TableRegistry::new();
        let e = r.insert_csv("t1", CSV, ZiggyConfig::default()).unwrap();
        assert_eq!(e.table().n_rows(), 3);
        assert_eq!(r.get("t1").unwrap().name(), "t1");
        assert_eq!(r.len(), 1);
        assert!(r.get("nope").is_err());
    }

    #[test]
    fn duplicate_names_conflict() {
        let r = TableRegistry::new();
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        let err = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap_err();
        assert_eq!(err.status, 409);
    }

    #[test]
    fn names_validated() {
        let r = TableRegistry::new();
        for bad in ["", "has space", "a/b", "x".repeat(65).as_str()] {
            assert_eq!(
                r.insert_csv(bad, CSV, ZiggyConfig::default())
                    .unwrap_err()
                    .status,
                400,
                "{bad:?}"
            );
        }
    }

    #[test]
    fn remove_frees_name_and_slot() {
        let r = TableRegistry::new();
        let pinned = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        r.remove("t").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.remove("t").unwrap_err().status, 404);
        // The name is reusable, and the old pinned entry stays usable for
        // whoever still holds its Arc.
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(pinned.table().n_rows(), 3);
        pinned.engine().cache().uni(0).unwrap();
    }

    #[test]
    fn bad_csv_rejected() {
        let r = TableRegistry::new();
        let err = r.insert_csv("t", "", ZiggyConfig::default()).unwrap_err();
        assert_eq!(err.status, 422);
    }

    #[test]
    fn summaries_sorted() {
        let r = TableRegistry::new();
        r.insert_csv("b", CSV, ZiggyConfig::default()).unwrap();
        r.insert_csv("a", CSV, ZiggyConfig::default()).unwrap();
        let names: Vec<String> = r
            .summaries()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        // Known-answer vectors keep the hash stable across refactors —
        // ring placement and replicate idempotency both depend on it.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"table-0"), fnv1a_64(b"table-1"));
    }

    #[test]
    fn replicate_is_idempotent_for_identical_csv() {
        let r = TableRegistry::new();
        let (e1, created) = r.replicate_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(created);
        let (e2, created) = r.replicate_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(!created, "identical re-upload must be a no-op");
        assert!(Arc::ptr_eq(&e1, &e2), "must reuse the resident engine");
        assert_eq!(r.len(), 1);
        // Different content under the same name is still a conflict.
        let err = r
            .replicate_csv("t", "x,y\n9,9\n8,8\n7,7\n", ZiggyConfig::default())
            .unwrap_err();
        assert_eq!(err.status, 409);
        // A table registered without CSV provenance never matches.
        let table = ziggy_store::csv::read_csv_str(CSV, &CsvOptions::default()).unwrap();
        r.insert_table("demo", table, ZiggyConfig::default())
            .unwrap();
        assert_eq!(
            r.replicate_csv("demo", CSV, ZiggyConfig::default())
                .unwrap_err()
                .status,
            409
        );
    }

    #[test]
    fn delete_leaves_tombstone_and_reingest_clears_it() {
        let r = TableRegistry::new();
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(r.tombstones().is_empty());
        r.remove("t").unwrap();
        let stones = r.tombstones();
        assert_eq!(stones.len(), 1);
        assert_eq!(stones[0].0, "t");
        assert!(stones[0].1 > 0, "tombstones carry an HLC timestamp");
        // Re-ingesting the name supersedes the tombstone, and the new
        // entry's timestamp is strictly newer than the delete's.
        let e = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(r.tombstones().is_empty());
        assert!(e.ts() > stones[0].1);
    }

    #[test]
    fn stray_remove_tombstones_at_entry_ts_and_is_not_exported() {
        let r = TableRegistry::new();
        let e = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        let ingest_ts = e.ts();
        r.remove_stray("t").unwrap();
        // The copy is gone and the tombstone carries the *entry's own*
        // timestamp — never a fresh HLC tick that could outrank live
        // replicas elsewhere.
        assert!(r.get("t").is_err());
        assert_eq!(r.tombstones(), vec![("t".to_string(), ingest_ts, true)]);
        // The fleet-facing view withholds it entirely.
        assert!(r.exported_tombstones().is_empty());
        // A plain delete is exported as before.
        r.insert_csv("u", CSV, ZiggyConfig::default()).unwrap();
        r.remove("u").unwrap();
        assert_eq!(r.exported_tombstones().len(), 1);
        assert_eq!(r.exported_tombstones()[0].0, "u");
    }

    #[test]
    fn hlc_is_strictly_increasing_and_observes_remote_timestamps() {
        let r = TableRegistry::new();
        let a = r.hlc_now();
        let b = r.hlc_now();
        assert!(b > a);
        // A remote timestamp far in the future must not be outrun by
        // local stamps (LWW would otherwise resurrect remote deletes).
        let future = b + 1_000_000;
        r.observe_ts(future);
        assert!(r.hlc_now() > future);
    }

    #[test]
    fn tombstone_cap_evicts_oldest() {
        let r = TableRegistry::new();
        for i in 0..(MAX_TOMBSTONES + 5) {
            r.restore_tombstone(&format!("t{i}"), i as u64 + 1, false);
        }
        // restore_tombstone does not evict (replay must be lossless);
        // the cap applies on the remove() path. Exercise it directly.
        r.insert_csv("live", CSV, ZiggyConfig::default()).unwrap();
        r.remove("live").unwrap();
        let stones = r.tombstones();
        assert!(stones.len() <= MAX_TOMBSTONES + 5);
        assert!(stones.iter().any(|(name, _, _)| name == "live"));
        // The oldest restored stone (ts=1) was the eviction victim.
        assert!(!stones.iter().any(|(_, ts, _)| *ts == 1));
    }

    #[test]
    fn append_rows_matches_full_reingest_fingerprint() {
        let r = TableRegistry::new();
        let old = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        let (e, appended) = r
            .append_rows("t", "7,8\n9,10\n", ZiggyConfig::default())
            .unwrap();
        assert_eq!(appended, 2);
        assert_eq!(e.table().n_rows(), 5);
        assert!(e.ts() > old.ts(), "appends take a fresh HLC tick");
        // The combined bytes fingerprint exactly as a fresh upload of
        // `old ++ rows` would — the fleet's idempotency contract.
        let combined = format!("{CSV}7,8\n9,10\n");
        assert_eq!(e.fingerprint(), Some(fnv1a_64(combined.as_bytes())));
        assert_eq!(e.export_csv().as_deref(), Some(combined.as_str()));
        // Missing trailing newline on the rows is normalized in.
        let (e, _) = r.append_rows("t", "11,12", ZiggyConfig::default()).unwrap();
        assert!(e.export_csv().unwrap().ends_with("11,12\n"));
        // The old pinned entry still serves its snapshot.
        assert_eq!(old.table().n_rows(), 3);
    }

    #[test]
    fn append_rows_guards() {
        let r = TableRegistry::new();
        assert_eq!(
            r.append_rows("ghost", "1,2\n", ZiggyConfig::default())
                .unwrap_err()
                .status,
            404
        );
        // Provenance-free tables refuse appends: replay could never
        // reproduce them.
        let table = read_csv_str(CSV, &CsvOptions::default()).unwrap();
        r.insert_table("demo", table, ZiggyConfig::default())
            .unwrap();
        assert_eq!(
            r.append_rows("demo", "1,2\n", ZiggyConfig::default())
                .unwrap_err()
                .status,
            409
        );
        // Type-flipping or ragged rows are a 422 and leave the table
        // untouched.
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        for bad in ["oops,2\n", "1,2,3\n", ""] {
            assert_eq!(
                r.append_rows("t", bad, ZiggyConfig::default())
                    .unwrap_err()
                    .status,
                422,
                "{bad:?}"
            );
        }
        assert_eq!(r.get("t").unwrap().table().n_rows(), 3);
    }

    #[test]
    fn engine_shared_across_clones() {
        let r = TableRegistry::new();
        r.insert_csv("t", "x,y\nz", ZiggyConfig::default()).ok();
        let big: String = {
            let mut s = String::from("a,b\n");
            for i in 0..300 {
                s.push_str(&format!("{},{}\n", i, i * 2));
            }
            s
        };
        r.insert_csv("big", &big, ZiggyConfig::default()).unwrap();
        let e1 = r.get("big").unwrap();
        let e2 = r.get("big").unwrap();
        e1.engine().cache().uni(0).unwrap();
        // Same engine: the second handle sees the first's cache entry.
        assert_eq!(e2.engine().cache().sizes().0, 1);
        assert_eq!(e2.engine().cache().counters().misses, 1);
    }
}
