//! The table registry: one shared engine per ingested table.
//!
//! Each [`TableEntry`] owns a [`Ziggy`] engine built over an
//! `Arc<Table>`. Because the engine (and its [`StatsCache`]) is shared by
//! every worker thread and every client, whole-table statistics and the
//! dependency graph are computed once per *table*, not once per request —
//! the paper's between-query sharing promoted to between-client sharing.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use serde_json::Value;
use ziggy_core::{Ziggy, ZiggyConfig};
use ziggy_store::csv::{read_csv_str, CsvOptions};
use ziggy_store::{StatsCache, Table};

use crate::json::ApiError;

/// Upper bound on resident tables; ingest beyond it is refused (409).
/// The cap bounds *live* state: dropping a table (`DELETE
/// /tables/{name}`) frees its slot and its name.
pub const MAX_TABLES: usize = 256;

/// FNV-1a 64-bit hash — the stable, dependency-free hash shared by the
/// registry's ingest fingerprints and the fleet's consistent-hash ring
/// (both need determinism across processes, which `DefaultHasher` does
/// not promise). Now lives in `ziggy-store` (the engine's report cache
/// and ETag fingerprints use it too); re-exported here so existing
/// `ziggy_serve::fnv1a_64` callers keep working.
pub use ziggy_store::fnv1a_64;

/// A registered table with its shared engine.
pub struct TableEntry {
    name: String,
    engine: Ziggy,
    /// FNV-1a of the source CSV bytes, when the table was ingested from
    /// CSV. The fleet's replicate path compares fingerprints so a retried
    /// or replicated upload of the *same* table is idempotent while a
    /// name collision with *different* content stays a conflict.
    fingerprint: Option<u64>,
    /// The source CSV text itself, retained so the table can be
    /// exported (`GET /tables/{name}/csv`) and re-materialized onto
    /// another replica byte-for-byte — the fleet's repair loop depends
    /// on the export fingerprinting identically to the original upload,
    /// which a re-serialization of the parsed table could not promise.
    source_csv: Option<Arc<str>>,
}

impl std::fmt::Debug for TableEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TableEntry")
            .field("name", &self.name)
            .field("n_rows", &self.table().n_rows())
            .field("n_cols", &self.table().n_cols())
            .finish()
    }
}

impl TableEntry {
    /// The table's registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The shared engine (thread-safe; characterize directly on it).
    pub fn engine(&self) -> &Ziggy {
        &self.engine
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        self.engine.table()
    }

    /// The engine's statistics cache (for `/metrics`).
    pub fn cache(&self) -> &StatsCache {
        self.engine.cache()
    }

    /// FNV-1a fingerprint of the source CSV (None for tables registered
    /// in-process via [`TableRegistry::insert_table`]).
    pub fn fingerprint(&self) -> Option<u64> {
        self.fingerprint
    }

    /// The source CSV text (None for tables registered in-process via
    /// [`TableRegistry::insert_table`], which have no CSV provenance).
    pub fn source_csv(&self) -> Option<&Arc<str>> {
        self.source_csv.as_ref()
    }

    /// The `{name, n_rows, n_cols}` summary object.
    pub fn summary(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.name.clone())),
            (
                "n_rows".into(),
                Value::Number(serde_json::Number::U(self.table().n_rows() as u64)),
            ),
            (
                "n_cols".into(),
                Value::Number(serde_json::Number::U(self.table().n_cols() as u64)),
            ),
        ])
    }
}

/// Thread-safe name → [`TableEntry`] map.
#[derive(Default)]
pub struct TableRegistry {
    tables: RwLock<HashMap<String, Arc<TableEntry>>>,
}

fn err_duplicate(name: &str) -> ApiError {
    ApiError::conflict(format!("table `{name}` already exists"))
}

fn err_full() -> ApiError {
    ApiError::conflict(format!("registry full ({MAX_TABLES} tables)"))
}

/// Whether `name` is a legal table name (1-64 chars of
/// `[A-Za-z0-9_-]`). Public because the fleet router must validate
/// names *before* interpolating them into proxied request lines — a
/// body-supplied name containing CRLF or whitespace would otherwise
/// corrupt (or smuggle a second request onto) a pooled backend
/// connection.
pub fn valid_table_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

impl TableRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ingests CSV text as a new named table, building its shared engine.
    pub fn insert_csv(
        &self,
        name: &str,
        csv: &str,
        config: ZiggyConfig,
    ) -> Result<Arc<TableEntry>, ApiError> {
        if !valid_table_name(name) {
            return Err(ApiError::bad_request(
                "table name must be 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        // Cheap pre-check so a duplicate name or a full registry fails
        // before the CSV parse and engine build, not after. The
        // authoritative re-check stays in `insert_table` under the write
        // lock (a racing ingest may take the slot in between).
        {
            let tables = self.tables.read();
            if tables.contains_key(name) {
                return Err(err_duplicate(name));
            }
            if tables.len() >= MAX_TABLES {
                return Err(err_full());
            }
        }
        let table = read_csv_str(csv, &CsvOptions::default())
            .map_err(|e| ApiError::unprocessable(format!("CSV rejected: {e}")))?;
        self.register(
            name,
            table,
            config,
            Some(fnv1a_64(csv.as_bytes())),
            Some(Arc::from(csv)),
        )
    }

    /// Idempotent CSV ingest — the fleet's replicate path. Returns the
    /// entry plus whether it was created by this call: re-uploading a CSV
    /// that fingerprints identically to the resident table succeeds
    /// without rebuilding anything (so the router can retry a replica
    /// materialization safely), while a name collision with different
    /// content is still a 409.
    pub fn replicate_csv(
        &self,
        name: &str,
        csv: &str,
        config: ZiggyConfig,
    ) -> Result<(Arc<TableEntry>, bool), ApiError> {
        let fingerprint = fnv1a_64(csv.as_bytes());
        let same_table = |entry: &Arc<TableEntry>| entry.fingerprint == Some(fingerprint);
        if let Ok(existing) = self.get(name) {
            return if same_table(&existing) {
                Ok((existing, false))
            } else {
                Err(err_duplicate(name))
            };
        }
        match self.insert_csv(name, csv, config) {
            Ok(entry) => Ok((entry, true)),
            // A racing replicate of the same upload may have taken the
            // slot between the lookup and the insert; that's idempotent
            // success, not a conflict.
            Err(e) if e.status == 409 => match self.get(name) {
                Ok(existing) if same_table(&existing) => Ok((existing, false)),
                _ => Err(e),
            },
            Err(e) => Err(e),
        }
    }

    /// Registers an already-built table (used by `ziggy serve --demo` and
    /// in-process benchmarks).
    pub fn insert_table(
        &self,
        name: &str,
        table: Table,
        config: ZiggyConfig,
    ) -> Result<Arc<TableEntry>, ApiError> {
        self.register(name, table, config, None, None)
    }

    fn register(
        &self,
        name: &str,
        table: Table,
        config: ZiggyConfig,
        fingerprint: Option<u64>,
        source_csv: Option<Arc<str>>,
    ) -> Result<Arc<TableEntry>, ApiError> {
        if !valid_table_name(name) {
            return Err(ApiError::bad_request(
                "table name must be 1-64 chars of [A-Za-z0-9_-]",
            ));
        }
        let entry = Arc::new(TableEntry {
            name: name.to_string(),
            engine: Ziggy::shared(Arc::new(table), config),
            fingerprint,
            source_csv,
        });
        let mut tables = self.tables.write();
        if tables.len() >= MAX_TABLES {
            return Err(err_full());
        }
        if tables.contains_key(name) {
            return Err(err_duplicate(name));
        }
        tables.insert(name.to_string(), Arc::clone(&entry));
        Ok(entry)
    }

    /// Looks up a table by name.
    pub fn get(&self, name: &str) -> Result<Arc<TableEntry>, ApiError> {
        self.tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| ApiError::not_found(format!("no table named `{name}`")))
    }

    /// Drops a table, freeing its slot under [`MAX_TABLES`] and its name
    /// for reuse, and returns the removed entry so the caller can release
    /// whatever else pins it (the router closes the table's sessions).
    /// In-flight requests holding the `Arc` finish normally; the memory
    /// frees when the last holder drops.
    pub fn remove(&self, name: &str) -> Result<Arc<TableEntry>, ApiError> {
        self.tables
            .write()
            .remove(name)
            .ok_or_else(|| ApiError::not_found(format!("no table named `{name}`")))
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.read().len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.read().is_empty()
    }

    /// Summaries of all tables, sorted by name for stable output.
    pub fn summaries(&self) -> Vec<Value> {
        let mut entries: Vec<Arc<TableEntry>> = self.tables.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries.iter().map(|e| e.summary()).collect()
    }

    /// Per-table cache counters for `/metrics`, sorted by name. Each
    /// table reports all three reuse levels: `cache` is the whole-table
    /// moment/frequency cache, `prepared` the per-query `PreparedStats`
    /// cache (its `misses` count exactly how many times the preparation
    /// stage actually ran on this engine), and `reports` the
    /// finished-report/byte cache (its `hits` count characterizations
    /// that skipped view search, post-processing, and serialization
    /// entirely).
    pub fn cache_stats(&self) -> Vec<Value> {
        let mut entries: Vec<Arc<TableEntry>> = self.tables.read().values().cloned().collect();
        entries.sort_by(|a, b| a.name.cmp(&b.name));
        entries
            .iter()
            .map(|e| {
                let c = e.cache().counters();
                let (uni, pair, freq) = e.cache().sizes();
                let p = e.engine().prepared_cache().counters();
                let r = e.engine().report_cache().counters();
                Value::Object(vec![
                    ("name".into(), Value::String(e.name.clone())),
                    (
                        "cache".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(c.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(c.misses)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U((uni + pair + freq) as u64)),
                            ),
                        ]),
                    ),
                    (
                        "prepared".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(p.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(p.misses)),
                            ),
                            (
                                "evictions".into(),
                                Value::Number(serde_json::Number::U(p.evictions)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U(
                                    e.engine().prepared_cache().len() as u64,
                                )),
                            ),
                        ]),
                    ),
                    (
                        "reports".into(),
                        Value::Object(vec![
                            ("hits".into(), Value::Number(serde_json::Number::U(r.hits))),
                            (
                                "misses".into(),
                                Value::Number(serde_json::Number::U(r.misses)),
                            ),
                            (
                                "evictions".into(),
                                Value::Number(serde_json::Number::U(r.evictions)),
                            ),
                            (
                                "entries".into(),
                                Value::Number(serde_json::Number::U(
                                    e.engine().report_cache().len() as u64,
                                )),
                            ),
                        ]),
                    ),
                ])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CSV: &str = "x,y\n1,2\n3,4\n5,6\n";

    #[test]
    fn ingest_and_lookup() {
        let r = TableRegistry::new();
        let e = r.insert_csv("t1", CSV, ZiggyConfig::default()).unwrap();
        assert_eq!(e.table().n_rows(), 3);
        assert_eq!(r.get("t1").unwrap().name(), "t1");
        assert_eq!(r.len(), 1);
        assert!(r.get("nope").is_err());
    }

    #[test]
    fn duplicate_names_conflict() {
        let r = TableRegistry::new();
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        let err = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap_err();
        assert_eq!(err.status, 409);
    }

    #[test]
    fn names_validated() {
        let r = TableRegistry::new();
        for bad in ["", "has space", "a/b", "x".repeat(65).as_str()] {
            assert_eq!(
                r.insert_csv(bad, CSV, ZiggyConfig::default())
                    .unwrap_err()
                    .status,
                400,
                "{bad:?}"
            );
        }
    }

    #[test]
    fn remove_frees_name_and_slot() {
        let r = TableRegistry::new();
        let pinned = r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        r.remove("t").unwrap();
        assert!(r.is_empty());
        assert_eq!(r.remove("t").unwrap_err().status, 404);
        // The name is reusable, and the old pinned entry stays usable for
        // whoever still holds its Arc.
        r.insert_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(pinned.table().n_rows(), 3);
        pinned.engine().cache().uni(0).unwrap();
    }

    #[test]
    fn bad_csv_rejected() {
        let r = TableRegistry::new();
        let err = r.insert_csv("t", "", ZiggyConfig::default()).unwrap_err();
        assert_eq!(err.status, 422);
    }

    #[test]
    fn summaries_sorted() {
        let r = TableRegistry::new();
        r.insert_csv("b", CSV, ZiggyConfig::default()).unwrap();
        r.insert_csv("a", CSV, ZiggyConfig::default()).unwrap();
        let names: Vec<String> = r
            .summaries()
            .iter()
            .map(|s| s.get("name").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, ["a", "b"]);
    }

    #[test]
    fn fnv1a_is_stable_and_spreads() {
        // Known-answer vectors keep the hash stable across refactors —
        // ring placement and replicate idempotency both depend on it.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a_64(b"table-0"), fnv1a_64(b"table-1"));
    }

    #[test]
    fn replicate_is_idempotent_for_identical_csv() {
        let r = TableRegistry::new();
        let (e1, created) = r.replicate_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(created);
        let (e2, created) = r.replicate_csv("t", CSV, ZiggyConfig::default()).unwrap();
        assert!(!created, "identical re-upload must be a no-op");
        assert!(Arc::ptr_eq(&e1, &e2), "must reuse the resident engine");
        assert_eq!(r.len(), 1);
        // Different content under the same name is still a conflict.
        let err = r
            .replicate_csv("t", "x,y\n9,9\n8,8\n7,7\n", ZiggyConfig::default())
            .unwrap_err();
        assert_eq!(err.status, 409);
        // A table registered without CSV provenance never matches.
        let table = ziggy_store::csv::read_csv_str(CSV, &CsvOptions::default()).unwrap();
        r.insert_table("demo", table, ZiggyConfig::default())
            .unwrap();
        assert_eq!(
            r.replicate_csv("demo", CSV, ZiggyConfig::default())
                .unwrap_err()
                .status,
            409
        );
    }

    #[test]
    fn engine_shared_across_clones() {
        let r = TableRegistry::new();
        r.insert_csv("t", "x,y\nz", ZiggyConfig::default()).ok();
        let big: String = {
            let mut s = String::from("a,b\n");
            for i in 0..300 {
                s.push_str(&format!("{},{}\n", i, i * 2));
            }
            s
        };
        r.insert_csv("big", &big, ZiggyConfig::default()).unwrap();
        let e1 = r.get("big").unwrap();
        let e2 = r.get("big").unwrap();
        e1.engine().cache().uni(0).unwrap();
        // Same engine: the second handle sees the first's cache entry.
        assert_eq!(e2.engine().cache().sizes().0, 1);
        assert_eq!(e2.engine().cache().counters().misses, 1);
    }
}
