//! Per-client token-bucket rate limiting.
//!
//! One bucket per client IP: `capacity` tokens of burst, refilled at
//! `capacity` tokens per second. A request costs one token; an empty
//! bucket means 429 with a `Retry-After` hint (whole seconds, at least
//! 1, per RFC 9110). `GET /healthz` is exempted by the caller so fleet
//! health probes can never be throttled into a false outage.

use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Bound on distinct client IPs tracked; beyond it, stale buckets (full
/// ones first — they carry no throttling state worth keeping) are
/// evicted so an address-rotating client cannot grow the map without
/// bound.
const MAX_TRACKED_CLIENTS: usize = 8192;

/// Minimum spacing between full-map eviction scans. The scan is O(map)
/// under the global mutex; without this floor, an address-rotating
/// flood that keeps the map full would trigger it per request and the
/// growth guard would itself become the contention bottleneck. Between
/// scans, requests from untracked clients on a full map are simply
/// throttled — the correct degradation under that kind of flood.
const PURGE_INTERVAL: Duration = Duration::from_secs(1);

/// The bucket key used when a request carries no peer address (requests
/// built in-process); they all share one bucket rather than bypassing
/// the limiter.
pub const ANONYMOUS_CLIENT: IpAddr = IpAddr::V4(Ipv4Addr::UNSPECIFIED);

struct Bucket {
    tokens: f64,
    last_refill: Instant,
}

/// The mutex-guarded interior: the per-client buckets plus the eviction
/// throttle state.
struct Buckets {
    map: HashMap<IpAddr, Bucket>,
    last_purge: Option<Instant>,
}

/// A thread-safe token-bucket limiter keyed by client IP.
pub struct RateLimiter {
    capacity: f64,
    refill_per_sec: f64,
    buckets: Mutex<Buckets>,
}

impl std::fmt::Debug for RateLimiter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RateLimiter")
            .field("capacity", &self.capacity)
            .field("refill_per_sec", &self.refill_per_sec)
            .finish()
    }
}

impl RateLimiter {
    /// A limiter allowing `per_second` sustained requests per second per
    /// client, with a burst of the same size.
    pub fn new(per_second: u32) -> Self {
        let rate = f64::from(per_second.max(1));
        Self {
            capacity: rate,
            refill_per_sec: rate,
            buckets: Mutex::new(Buckets {
                map: HashMap::new(),
                last_purge: None,
            }),
        }
    }

    /// Takes one token from `client`'s bucket. `Err(retry_after)` (whole
    /// seconds, >= 1) means the client is over its budget.
    pub fn try_acquire(&self, client: IpAddr) -> Result<(), u64> {
        let now = Instant::now();
        let mut buckets = self.buckets.lock();
        if buckets.map.len() >= MAX_TRACKED_CLIENTS && !buckets.map.contains_key(&client) {
            // The scan is amortized: at most one per PURGE_INTERVAL, so
            // a map kept full by rotating addresses costs one O(map)
            // pass per second, not per request.
            let may_purge = buckets
                .last_purge
                .is_none_or(|prev| now.duration_since(prev) >= PURGE_INTERVAL);
            if may_purge {
                buckets.last_purge = Some(now);
                // Full buckets are clients that went quiet long enough
                // to refill completely; forgetting them is lossless.
                let cap = self.capacity;
                let rate = self.refill_per_sec;
                buckets.map.retain(|_, b| {
                    let refilled =
                        b.tokens + now.duration_since(b.last_refill).as_secs_f64() * rate;
                    refilled < cap
                });
            }
            if buckets.map.len() >= MAX_TRACKED_CLIENTS {
                // No room (or purge throttled): treat the newcomer as
                // throttled instead of growing the map.
                return Err(1);
            }
        }
        let bucket = buckets.map.entry(client).or_insert(Bucket {
            tokens: self.capacity,
            last_refill: now,
        });
        let elapsed = now.duration_since(bucket.last_refill).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.refill_per_sec).min(self.capacity);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Ok(())
        } else {
            let deficit = 1.0 - bucket.tokens;
            let secs = (deficit / self.refill_per_sec).ceil().max(1.0);
            Err(secs as u64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT_A: IpAddr = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 1));
    const CLIENT_B: IpAddr = IpAddr::V4(Ipv4Addr::new(10, 0, 0, 2));

    #[test]
    fn burst_then_throttle_then_refill() {
        let limiter = RateLimiter::new(2);
        assert!(limiter.try_acquire(CLIENT_A).is_ok());
        assert!(limiter.try_acquire(CLIENT_A).is_ok());
        let retry = limiter.try_acquire(CLIENT_A).unwrap_err();
        assert!(retry >= 1, "Retry-After must be at least one second");
        // A different client has its own bucket.
        assert!(limiter.try_acquire(CLIENT_B).is_ok());
    }

    #[test]
    fn tokens_refill_over_time() {
        let limiter = RateLimiter::new(1000);
        for _ in 0..1000 {
            limiter.try_acquire(CLIENT_A).unwrap();
        }
        assert!(limiter.try_acquire(CLIENT_A).is_err());
        std::thread::sleep(std::time::Duration::from_millis(20));
        // ~20 tokens refilled in 20ms at 1000/s.
        assert!(limiter.try_acquire(CLIENT_A).is_ok());
    }

    #[test]
    fn anonymous_requests_share_one_bucket() {
        let limiter = RateLimiter::new(1);
        assert!(limiter.try_acquire(ANONYMOUS_CLIENT).is_ok());
        assert!(limiter.try_acquire(ANONYMOUS_CLIENT).is_err());
    }
}
