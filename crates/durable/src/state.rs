//! The replay state machine and the snapshot codec.
//!
//! [`Materializer`] folds records into last-writer-wins state. Every
//! apply rule is idempotent and order-tolerant under re-application:
//! ingests and tombstones race by HLC timestamp (tie goes to the
//! table — a backend's own clock is strictly increasing, so ties only
//! arise across backends and the fleet treats "deleted iff strictly
//! newer tombstone" as the canonical rule), and session steps carry
//! their 1-based sequence number so a step already reflected in a
//! snapshot is skipped rather than double-applied. That idempotency is
//! what makes the snapshot race-free without quiescing writers: the
//! cover LSN is captured *before* the live state is read, so any
//! record landing in between is both inside the snapshot and replayed
//! after it — harmlessly.

use std::collections::HashMap;

use serde_json::{Number, Value};

use crate::record::{combine_csv, Record};

/// Sessions keep at most this many replayable queries, mirroring the
/// serve layer's history cap. Older queries age out; a restored
/// session then resumes with a truncated history, which only affects
/// the de-duplication window, never report bytes.
pub const MAX_SESSION_QUERIES: usize = 64;

/// Where the current CSV bytes of a live table can be read back from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvLoc {
    /// Inside a segment file: the framed ingest record at `offset`.
    Segment {
        /// Segment file name (not a full path; segments never move
        /// between directories).
        file: String,
        /// Byte offset of the framed record line within the segment.
        offset: u64,
    },
    /// Inside the newest snapshot file.
    Snapshot,
}

/// Where a table's CSV bytes live once appends exist: the winning
/// ingest's location plus the append records layered on top of it, in
/// log order. Reading the chain re-runs the materializer's composition
/// rule (skip records at or below the base's timestamp, concatenate the
/// rest), so the export path and replay agree byte for byte. A snapshot
/// collapses the chain back to a single [`CsvLoc::Snapshot`] base.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvChain {
    /// The winning ingest's CSV (or the snapshot's combined CSV).
    pub base: CsvLoc,
    /// Append records extending the base, oldest first.
    pub appends: Vec<CsvLoc>,
}

impl CsvChain {
    /// A chain with no appends.
    pub fn solo(base: CsvLoc) -> Self {
        Self {
            base,
            appends: Vec::new(),
        }
    }
}

/// A live table as carried by snapshots and replay results.
#[derive(Debug, Clone, PartialEq)]
pub struct TableState {
    /// Table name.
    pub name: String,
    /// FNV-1a fingerprint of `csv`.
    pub fingerprint: u64,
    /// HLC timestamp of the winning ingest.
    pub ts: u64,
    /// The CSV bytes.
    pub csv: String,
}

/// A live session as carried by snapshots and replay results.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionState {
    /// Session id.
    pub id: u64,
    /// Table the session explores.
    pub table: String,
    /// Total steps the session has accepted (monotonic; may exceed
    /// `queries.len()` once the history cap trims old queries).
    pub steps: u64,
    /// The replayable query history, oldest first.
    pub queries: Vec<String>,
}

/// Everything a snapshot captures — built by the serve layer from live
/// registry + session-manager state, and returned by replay for the
/// serve layer to rebuild them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotState {
    /// Live tables, including CSV bytes.
    pub tables: Vec<TableState>,
    /// Delete tombstones as `(table, ts, stray)` triples. Stray
    /// tombstones are local garbage-collection artifacts — they keep
    /// the copy dead across replay but are never exported to the fleet.
    pub tombstones: Vec<(String, u64, bool)>,
    /// Live sessions with their replayable query history.
    pub sessions: Vec<SessionState>,
}

#[derive(Debug, Clone)]
struct MatTable {
    fingerprint: u64,
    ts: u64,
    csv: String,
    loc: CsvLoc,
    /// Locations of append records applied on top of `loc`, log order.
    appends: Vec<CsvLoc>,
}

#[derive(Debug, Clone, Default)]
struct MatSession {
    table: String,
    steps: u64,
    queries: Vec<String>,
}

/// Folds snapshot + records into materialized state.
#[derive(Debug, Default)]
pub struct Materializer {
    tables: HashMap<String, MatTable>,
    tombstones: HashMap<String, (u64, bool)>,
    sessions: HashMap<u64, MatSession>,
}

impl Materializer {
    /// Starts from a decoded snapshot (tables located in the snapshot
    /// file) or from scratch.
    pub fn from_snapshot(snap: Option<&SnapshotState>) -> Self {
        let mut mat = Materializer::default();
        if let Some(snap) = snap {
            for t in &snap.tables {
                mat.tables.insert(
                    t.name.clone(),
                    MatTable {
                        fingerprint: t.fingerprint,
                        ts: t.ts,
                        csv: t.csv.clone(),
                        loc: CsvLoc::Snapshot,
                        appends: Vec::new(),
                    },
                );
            }
            for (name, ts, stray) in &snap.tombstones {
                mat.tombstones.insert(name.clone(), (*ts, *stray));
            }
            for s in &snap.sessions {
                mat.sessions.insert(
                    s.id,
                    MatSession {
                        table: s.table.clone(),
                        steps: s.steps,
                        queries: s.queries.clone(),
                    },
                );
            }
        }
        mat
    }

    /// Applies one record. `loc` is where ingest CSV bytes live (the
    /// segment the record was read from, or where it was just written).
    pub fn apply(&mut self, rec: &Record, loc: CsvLoc) {
        match rec {
            Record::Ingest {
                table,
                fingerprint,
                ts,
                csv,
            } => {
                if self.tombstones.get(table).is_some_and(|t| t.0 > *ts) {
                    return; // A strictly newer delete wins.
                }
                if self.tables.get(table).is_some_and(|t| t.ts > *ts) {
                    return; // A newer ingest already won.
                }
                self.tombstones.remove(table);
                self.tables.insert(
                    table.clone(),
                    MatTable {
                        fingerprint: *fingerprint,
                        ts: *ts,
                        csv: csv.clone(),
                        loc,
                        appends: Vec::new(),
                    },
                );
            }
            Record::Append {
                table,
                fingerprint,
                ts,
                rows,
            } => {
                // Appends extend an existing table and never revive one:
                // no table (deleted, or its ingest lost the LWW race)
                // means the append's effect is already void. The same
                // `ts > table.ts` rule ingests use makes re-application
                // idempotent — a record also reflected in the snapshot
                // (the snapshot-race window) ties on ts and is skipped.
                if let Some(t) = self.tables.get_mut(table) {
                    if *ts > t.ts {
                        t.csv = combine_csv(&t.csv, rows);
                        t.fingerprint = *fingerprint;
                        t.ts = *ts;
                        t.appends.push(loc);
                    }
                }
            }
            Record::Tombstone { table, ts, stray } => {
                if self.tables.get(table).is_some_and(|t| t.ts > *ts) {
                    return; // The table was re-ingested after this delete.
                }
                self.tables.remove(table);
                let slot = self
                    .tombstones
                    .entry(table.clone())
                    .or_insert((*ts, *stray));
                if *ts > slot.0 {
                    *slot = (*ts, *stray);
                } else if *ts == slot.0 {
                    // A plain delete at the same timestamp outranks a
                    // stray clean-up: the exported (non-stray) view is
                    // the conservative one.
                    slot.1 = slot.1 && *stray;
                }
                // Deleting a table closes its sessions, mirroring the
                // serve layer's cascade.
                self.sessions.retain(|_, s| s.table != *table);
            }
            Record::SessionCreate { id, table } => {
                self.sessions.entry(*id).or_insert_with(|| MatSession {
                    table: table.clone(),
                    steps: 0,
                    queries: Vec::new(),
                });
            }
            Record::SessionStep { id, seq, query } => {
                if let Some(s) = self.sessions.get_mut(id) {
                    if *seq > s.steps {
                        s.steps = *seq;
                        s.queries.push(query.clone());
                        if s.queries.len() > MAX_SESSION_QUERIES {
                            s.queries.remove(0);
                        }
                    }
                }
            }
            Record::SessionDelete { id } => {
                self.sessions.remove(id);
            }
        }
    }

    /// Extracts the final state, deterministically ordered (tables by
    /// name, sessions by id) so replayed registries enumerate
    /// identically run to run.
    pub fn into_state(self) -> SnapshotState {
        let mut tables: Vec<TableState> = self
            .tables
            .into_iter()
            .map(|(name, t)| TableState {
                name,
                fingerprint: t.fingerprint,
                ts: t.ts,
                csv: t.csv,
            })
            .collect();
        tables.sort_by(|a, b| a.name.cmp(&b.name));
        let mut tombstones: Vec<(String, u64, bool)> = self
            .tombstones
            .into_iter()
            .map(|(name, (ts, stray))| (name, ts, stray))
            .collect();
        tombstones.sort();
        let mut sessions: Vec<SessionState> = self
            .sessions
            .into_iter()
            .map(|(id, s)| SessionState {
                id,
                table: s.table,
                steps: s.steps,
                queries: s.queries,
            })
            .collect();
        sessions.sort_by_key(|s| s.id);
        SnapshotState {
            tables,
            tombstones,
            sessions,
        }
    }

    /// CSV location chains of the live tables, for the log's export
    /// index: winning ingest plus the appends layered on top of it.
    pub fn csv_locs(&self) -> Vec<(String, CsvChain)> {
        self.tables
            .iter()
            .map(|(name, t)| {
                (
                    name.clone(),
                    CsvChain {
                        base: t.loc.clone(),
                        appends: t.appends.clone(),
                    },
                )
            })
            .collect()
    }
}

fn num(n: u64) -> Value {
    Value::Number(Number::U(n))
}

/// Header prefix of checksummed snapshot files:
/// `ZS1 <fnv64-hex>\n<json>`. Files without it are pre-checksum
/// snapshots and decode without verification.
const SNAPSHOT_MAGIC: &str = "ZS1 ";

/// Error-message prefix [`decode_snapshot`] uses for checksum
/// mismatches, so boot can count them apart from plain parse failures.
pub const SNAPSHOT_CHECKSUM_MISMATCH: &str = "snapshot checksum mismatch";

use ziggy_store::fnv1a_64;

/// Renders a snapshot file: a `ZS1 <fnv64>` checksum header line over
/// the JSON payload `{"version":1,"lsn":N,...}`, so boot can tell a
/// torn or bit-rotted snapshot from a good one and fall back to an
/// older snapshot or pure WAL replay.
pub fn encode_snapshot(cover_lsn: u64, state: &SnapshotState) -> String {
    let json = encode_snapshot_json(cover_lsn, state);
    format!("{SNAPSHOT_MAGIC}{:016x}\n{json}", fnv1a_64(json.as_bytes()))
}

fn encode_snapshot_json(cover_lsn: u64, state: &SnapshotState) -> String {
    let tables = state
        .tables
        .iter()
        .map(|t| {
            Value::Object(vec![
                ("name".into(), Value::String(t.name.clone())),
                ("fingerprint".into(), num(t.fingerprint)),
                ("ts".into(), num(t.ts)),
                ("csv".into(), Value::String(t.csv.clone())),
            ])
        })
        .collect();
    let tombstones = state
        .tombstones
        .iter()
        .map(|(name, ts, stray)| {
            Value::Object(vec![
                ("table".into(), Value::String(name.clone())),
                ("ts".into(), num(*ts)),
                ("stray".into(), Value::Bool(*stray)),
            ])
        })
        .collect();
    let sessions = state
        .sessions
        .iter()
        .map(|s| {
            Value::Object(vec![
                ("id".into(), num(s.id)),
                ("table".into(), Value::String(s.table.clone())),
                ("steps".into(), num(s.steps)),
                (
                    "queries".into(),
                    Value::Array(s.queries.iter().map(|q| Value::String(q.clone())).collect()),
                ),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("version".into(), num(1)),
        ("lsn".into(), num(cover_lsn)),
        ("tables".into(), Value::Array(tables)),
        ("tombstones".into(), Value::Array(tombstones)),
        ("sessions".into(), Value::Array(sessions)),
    ]);
    serde_json::to_string(&doc).expect("snapshot JSON render is infallible")
}

/// Parses a snapshot file back into `(cover_lsn, state)`. A `ZS1`
/// checksum header is verified first — a mismatch is an error (whose
/// message starts with [`SNAPSHOT_CHECKSUM_MISMATCH`]) so boot falls
/// back to an older snapshot or pure WAL replay instead of trusting a
/// corrupt file. Headerless files are legacy snapshots and parse
/// unverified.
pub fn decode_snapshot(text: &str) -> Result<(u64, SnapshotState), String> {
    let payload = match text.strip_prefix(SNAPSHOT_MAGIC) {
        Some(rest) => {
            let (sum, payload) = rest
                .split_once('\n')
                .ok_or("snapshot checksum header without a payload")?;
            let expected = u64::from_str_radix(sum.trim(), 16)
                .map_err(|_| format!("unparseable snapshot checksum `{sum}`"))?;
            let actual = fnv1a_64(payload.as_bytes());
            if actual != expected {
                return Err(format!(
                    "{SNAPSHOT_CHECKSUM_MISMATCH}: header {expected:016x}, payload {actual:016x}"
                ));
            }
            payload
        }
        None => text,
    };
    let doc = serde_json::from_str_value(payload).map_err(|e| e.to_string())?;
    let version = doc
        .get("version")
        .and_then(Value::as_u64)
        .ok_or("missing version")?;
    if version != 1 {
        return Err(format!("unsupported snapshot version {version}"));
    }
    let lsn = doc
        .get("lsn")
        .and_then(Value::as_u64)
        .ok_or("missing lsn")?;
    let mut state = SnapshotState::default();
    for t in doc
        .get("tables")
        .and_then(Value::as_array)
        .ok_or("missing tables")?
    {
        state.tables.push(TableState {
            name: t
                .get("name")
                .and_then(Value::as_str)
                .ok_or("table name")?
                .to_string(),
            fingerprint: t
                .get("fingerprint")
                .and_then(Value::as_u64)
                .ok_or("table fingerprint")?,
            ts: t.get("ts").and_then(Value::as_u64).ok_or("table ts")?,
            csv: t
                .get("csv")
                .and_then(Value::as_str)
                .ok_or("table csv")?
                .to_string(),
        });
    }
    for t in doc
        .get("tombstones")
        .and_then(Value::as_array)
        .ok_or("missing tombstones")?
    {
        state.tombstones.push((
            t.get("table")
                .and_then(Value::as_str)
                .ok_or("tombstone table")?
                .to_string(),
            t.get("ts").and_then(Value::as_u64).ok_or("tombstone ts")?,
            t.get("stray").and_then(Value::as_bool).unwrap_or(false),
        ));
    }
    for s in doc
        .get("sessions")
        .and_then(Value::as_array)
        .ok_or("missing sessions")?
    {
        let queries = s
            .get("queries")
            .and_then(Value::as_array)
            .ok_or("session queries")?
            .iter()
            .map(|q| q.as_str().map(str::to_string).ok_or("session query"))
            .collect::<Result<Vec<_>, _>>()?;
        state.sessions.push(SessionState {
            id: s.get("id").and_then(Value::as_u64).ok_or("session id")?,
            table: s
                .get("table")
                .and_then(Value::as_str)
                .ok_or("session table")?
                .to_string(),
            steps: s
                .get("steps")
                .and_then(Value::as_u64)
                .ok_or("session steps")?,
            queries,
        });
    }
    Ok((lsn, state))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(offset: u64) -> CsvLoc {
        CsvLoc::Segment {
            file: "seg-00000000000000000001.log".into(),
            offset,
        }
    }

    #[test]
    fn ingest_then_tombstone_deletes_and_reingst_revives() {
        let mut mat = Materializer::default();
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 1,
                ts: 10,
                csv: "a\n1\n".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::Tombstone {
                table: "t".into(),
                ts: 11,
                stray: false,
            },
            seg(0),
        );
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 2,
                ts: 12,
                csv: "a\n2\n".into(),
            },
            seg(40),
        );
        let state = mat.into_state();
        assert_eq!(state.tables.len(), 1);
        assert_eq!(state.tables[0].fingerprint, 2);
        assert!(state.tombstones.is_empty());
    }

    #[test]
    fn stale_records_lose_by_timestamp_regardless_of_order() {
        // The compaction edge case: an old ingest record survives in a
        // retained segment and replays *after* the snapshot that
        // already contains the delete. LWW must keep the delete.
        let snap = SnapshotState {
            tables: vec![],
            tombstones: vec![("t".into(), 20, false)],
            sessions: vec![],
        };
        let mut mat = Materializer::from_snapshot(Some(&snap));
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 1,
                ts: 10,
                csv: "a\n1\n".into(),
            },
            seg(0),
        );
        let state = mat.into_state();
        assert!(state.tables.is_empty());
        assert_eq!(state.tombstones, vec![("t".into(), 20, false)]);

        // And symmetric: a stale tombstone replayed over a newer ingest.
        let mut mat = Materializer::default();
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 5,
                ts: 30,
                csv: "a\n5\n".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::Tombstone {
                table: "t".into(),
                ts: 20,
                stray: false,
            },
            seg(0),
        );
        let state = mat.into_state();
        assert_eq!(state.tables.len(), 1);
        assert!(state.tombstones.is_empty());
    }

    #[test]
    fn append_extends_csv_and_is_idempotent_by_ts() {
        let mut mat = Materializer::default();
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 1,
                ts: 10,
                csv: "a,b\n1,2\n".into(),
            },
            seg(0),
        );
        let append = Record::Append {
            table: "t".into(),
            fingerprint: 2,
            ts: 11,
            rows: "3,4\n".into(),
        };
        mat.apply(&append, seg(40));
        // Re-application (the snapshot-race window) must be a no-op.
        mat.apply(&append, seg(40));
        // A stale append (ts at or below the table's) is skipped too.
        mat.apply(
            &Record::Append {
                table: "t".into(),
                fingerprint: 9,
                ts: 11,
                rows: "9,9\n".into(),
            },
            seg(80),
        );
        // An append to an absent table never creates one.
        mat.apply(
            &Record::Append {
                table: "ghost".into(),
                fingerprint: 9,
                ts: 99,
                rows: "1,1\n".into(),
            },
            seg(120),
        );
        let chains: std::collections::HashMap<_, _> = mat.csv_locs().into_iter().collect();
        assert_eq!(chains["t"].appends.len(), 1);
        let state = mat.into_state();
        assert_eq!(state.tables.len(), 1);
        assert_eq!(state.tables[0].csv, "a,b\n1,2\n3,4\n");
        assert_eq!(state.tables[0].fingerprint, 2);
        assert_eq!(state.tables[0].ts, 11);
    }

    #[test]
    fn append_lost_to_tombstone_stays_dead() {
        let mut mat = Materializer::default();
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 1,
                ts: 10,
                csv: "a\n1\n".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::Tombstone {
                table: "t".into(),
                ts: 20,
                stray: false,
            },
            seg(40),
        );
        mat.apply(
            &Record::Append {
                table: "t".into(),
                fingerprint: 2,
                ts: 15,
                rows: "2\n".into(),
            },
            seg(80),
        );
        let state = mat.into_state();
        assert!(state.tables.is_empty());
    }

    #[test]
    fn session_steps_are_idempotent_by_seq() {
        let mut mat = Materializer::default();
        mat.apply(
            &Record::SessionCreate {
                id: 7,
                table: "t".into(),
            },
            seg(0),
        );
        for seq in [1u64, 2, 2, 1, 3] {
            mat.apply(
                &Record::SessionStep {
                    id: 7,
                    seq,
                    query: format!("q{seq}"),
                },
                seg(0),
            );
        }
        let state = mat.into_state();
        assert_eq!(state.sessions.len(), 1);
        assert_eq!(state.sessions[0].steps, 3);
        assert_eq!(state.sessions[0].queries, vec!["q1", "q2", "q3"]);
    }

    #[test]
    fn tombstone_cascades_to_sessions() {
        let mut mat = Materializer::default();
        mat.apply(
            &Record::Ingest {
                table: "t".into(),
                fingerprint: 1,
                ts: 1,
                csv: "a\n1\n".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::SessionCreate {
                id: 1,
                table: "t".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::SessionCreate {
                id: 2,
                table: "u".into(),
            },
            seg(0),
        );
        mat.apply(
            &Record::Tombstone {
                table: "t".into(),
                ts: 2,
                stray: false,
            },
            seg(0),
        );
        let state = mat.into_state();
        assert_eq!(state.sessions.len(), 1);
        assert_eq!(state.sessions[0].id, 2);
    }

    #[test]
    fn snapshot_codec_round_trips() {
        let state = SnapshotState {
            tables: vec![TableState {
                name: "wines".into(),
                fingerprint: 99,
                ts: 1234,
                csv: "a,b\n1,2\n".into(),
            }],
            tombstones: vec![("gone".into(), 77, false), ("stray".into(), 78, true)],
            sessions: vec![SessionState {
                id: 3,
                table: "wines".into(),
                steps: 5,
                queries: vec!["a > 1".into(), "b = 2".into()],
            }],
        };
        let text = encode_snapshot(42, &state);
        assert!(text.starts_with(SNAPSHOT_MAGIC), "{text}");
        let (lsn, back) = decode_snapshot(&text).unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(back, state);
        assert!(decode_snapshot("{}").is_err());
        assert!(decode_snapshot("junk").is_err());
    }

    #[test]
    fn corrupted_snapshot_fails_the_checksum() {
        let text = encode_snapshot(7, &SnapshotState::default());
        // Flip one payload byte: the JSON may even still parse, but the
        // checksum must catch it.
        let corrupted = text.replacen("\"lsn\":7", "\"lsn\":8", 1);
        assert_ne!(corrupted, text, "corruption must apply");
        let err = decode_snapshot(&corrupted).unwrap_err();
        assert!(err.starts_with(SNAPSHOT_CHECKSUM_MISMATCH), "{err}");
        // A mangled header is an error too, but not a checksum mismatch.
        let headerless_junk = format!("{SNAPSHOT_MAGIC}nothex\njunk");
        assert!(decode_snapshot(&headerless_junk).is_err());
    }

    #[test]
    fn legacy_headerless_snapshots_still_decode() {
        let state = SnapshotState::default();
        let legacy = encode_snapshot_json(9, &state);
        assert!(!legacy.starts_with(SNAPSHOT_MAGIC));
        let (lsn, back) = decode_snapshot(&legacy).unwrap();
        assert_eq!(lsn, 9);
        assert_eq!(back, state);
    }
}
