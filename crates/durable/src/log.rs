//! The segmented append-only log: writers, group commit, snapshots,
//! compaction, and replay.
//!
//! On-disk layout inside the backend's data directory:
//!
//! ```text
//! seg-00000000000000000001.log   framed records, one per line
//! seg-00000000000000000941.log   (file name = first LSN it holds)
//! snap-00000000000000000940.json newest snapshot (name = cover LSN)
//! ```
//!
//! Writes go to the newest segment; when it passes the size threshold
//! the file is fsynced and a fresh segment opens (so every *sealed*
//! segment is durable in full, and group commit only ever needs to
//! fsync the active file). Snapshots are written to a temp file,
//! fsynced, renamed into place, and the directory fsynced; only then
//! are segments wholly at or below the cover LSN deleted. Replay reads
//! the newest parseable snapshot plus every surviving record with a
//! larger LSN; a checksum or parse failure truncates that segment's
//! tail (torn-write rule) rather than poisoning boot.

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufRead, BufReader, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ziggy_obs::span::{self, FlightRecorder};
use ziggy_obs::Histogram;

use crate::record::{combine_csv, frame, parse_frame, Record};
use crate::state::{
    decode_snapshot, encode_snapshot, CsvChain, CsvLoc, Materializer, SnapshotState,
    SNAPSHOT_CHECKSUM_MISMATCH,
};

/// How hard an acknowledged append is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DurabilityMode {
    /// `fsync(2)` before every acknowledgement. Survives power loss at
    /// per-op cost.
    Fsync,
    /// Group commit: appends wait on a background flusher that issues
    /// one fsync per commit interval for every append queued behind
    /// it. Survives power loss; amortizes the fsync.
    #[default]
    Batch,
    /// Write to the OS and acknowledge. Survives process crashes
    /// (SIGKILL) but not power loss.
    Async,
}

impl DurabilityMode {
    /// The flag spelling, as accepted by `--durability`.
    pub fn as_str(&self) -> &'static str {
        match self {
            DurabilityMode::Fsync => "fsync",
            DurabilityMode::Batch => "batch",
            DurabilityMode::Async => "async",
        }
    }
}

impl std::str::FromStr for DurabilityMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fsync" => Ok(DurabilityMode::Fsync),
            "batch" | "batched" => Ok(DurabilityMode::Batch),
            "async" => Ok(DurabilityMode::Async),
            other => Err(format!(
                "unknown durability mode {other:?} (expected fsync|batch|async)"
            )),
        }
    }
}

impl std::fmt::Display for DurabilityMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Tuning knobs for a [`DurableLog`].
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Acknowledgement durability.
    pub mode: DurabilityMode,
    /// Rotate the active segment past this many bytes.
    pub segment_bytes: u64,
    /// Ask for a snapshot after this many records since the last one
    /// (`0` disables snapshotting; segments then grow forever).
    pub snapshot_every: u64,
    /// Group-commit flush cadence (Batch mode only).
    pub commit_interval: Duration,
    /// How far behind the last append the background flusher may let
    /// `async` mode run before fsyncing (bounds the power-loss window;
    /// previously async data only reached disk on rotation).
    pub async_flush_interval: Duration,
}

impl Default for DurableOptions {
    fn default() -> Self {
        Self {
            mode: DurabilityMode::default(),
            segment_bytes: 4 * 1024 * 1024,
            snapshot_every: 256,
            commit_interval: Duration::from_millis(2),
            async_flush_interval: Duration::from_millis(50),
        }
    }
}

/// Counters and latency ladders for the log, exported by the serve
/// layer as `ziggy_durable_*` Prometheus families.
#[derive(Debug, Default)]
pub struct DurableMetrics {
    /// Records appended (this process; replayed records not included).
    pub records: AtomicU64,
    /// `fsync(2)` calls issued (per-op syncs, group commits, seals).
    pub fsyncs: AtomicU64,
    /// Group commits that acknowledged more than one append.
    pub group_commits: AtomicU64,
    /// Snapshots written.
    pub snapshots: AtomicU64,
    /// Segment files deleted by compaction.
    pub segments_compacted: AtomicU64,
    /// Torn/corrupt tails dropped at replay.
    pub torn_records: AtomicU64,
    /// Snapshot files refused at boot because their checksum header did
    /// not match the payload (boot fell back to an older snapshot or
    /// pure WAL replay).
    pub snapshot_checksum_failures: AtomicU64,
    /// Records replayed at the last boot.
    pub replay_records: AtomicU64,
    /// Wall time of the last boot replay, µs.
    pub replay_us: AtomicU64,
    /// Append latency (call to acknowledged), µs ladder.
    pub append_latency: Histogram,
    /// fsync latency, µs ladder.
    pub fsync_latency: Histogram,
}

/// What replay-on-boot recovered, for the serve layer to rebuild its
/// registry and session manager from.
#[derive(Debug, Default)]
pub struct ReplayOutcome {
    /// Recovered live state (tables carry their CSV bytes).
    pub state: SnapshotState,
    /// Records applied from segment tails (beyond the snapshot).
    pub records: u64,
    /// Torn tails dropped.
    pub torn: u64,
}

struct Writer {
    file: File,
    seg_file: String,
    seg_bytes: u64,
    next_lsn: u64,
}

#[derive(Default)]
struct FlushState {
    written: u64,
    flushed: u64,
    io_error: bool,
    /// When the oldest not-yet-fsynced append landed (None = fully
    /// flushed); `flushed` vs `written` plus this instant is the
    /// durability lag the `ziggy_durable_async_lag_ms` gauge reports.
    oldest_pending: Option<Instant>,
}

/// The span context saved by the most recent append, so the background
/// flusher can record its fsync under that request's trace.
type SavedSpanCtx = (Arc<FlightRecorder>, String, String);

struct Inner {
    dir: PathBuf,
    opts: DurableOptions,
    writer: Mutex<Writer>,
    flush_state: Mutex<FlushState>,
    flush_cv: Condvar,
    stop: AtomicBool,
    metrics: DurableMetrics,
    csv_index: Mutex<HashMap<String, CsvChain>>,
    snapshot_lsn: AtomicU64,
    since_snapshot: AtomicU64,
    snapshotting: AtomicBool,
    last_span_ctx: Mutex<Option<SavedSpanCtx>>,
}

/// A per-backend durable log. One instance per data directory; share
/// it behind an `Arc`.
pub struct DurableLog {
    inner: Arc<Inner>,
    flusher: Mutex<Option<thread::JoinHandle<()>>>,
}

fn seg_name(first_lsn: u64) -> String {
    format!("seg-{first_lsn:020}.log")
}

fn snap_name(cover_lsn: u64) -> String {
    format!("snap-{cover_lsn:020}.json")
}

fn parse_numbered(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse::<u64>()
        .ok()
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    // Directory fsync makes the rename/unlink durable on Linux.
    File::open(dir)?.sync_all()
}

impl DurableLog {
    /// Opens (creating if needed) the log in `dir`, replays snapshot +
    /// tail, and returns the log alongside what was recovered.
    pub fn open(dir: &Path, opts: DurableOptions) -> io::Result<(DurableLog, ReplayOutcome)> {
        fs::create_dir_all(dir)?;
        let t0 = Instant::now();

        let mut snaps: Vec<u64> = Vec::new();
        let mut segs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(lsn) = parse_numbered(&name, "snap-", ".json") {
                snaps.push(lsn);
            } else if let Some(lsn) = parse_numbered(&name, "seg-", ".log") {
                segs.push(lsn);
            }
        }
        snaps.sort_unstable();
        segs.sort_unstable();

        // Newest parseable snapshot wins; unreadable ones are skipped
        // (a crash between tmp-write and rename leaves none behind,
        // but be lenient anyway).
        let mut snap_lsn = 0u64;
        let mut snap_state: Option<SnapshotState> = None;
        let mut checksum_failures = 0u64;
        for &lsn in snaps.iter().rev() {
            match fs::read_to_string(dir.join(snap_name(lsn))) {
                Ok(text) => match decode_snapshot(&text) {
                    Ok((cover, state)) => {
                        snap_lsn = cover;
                        snap_state = Some(state);
                        break;
                    }
                    Err(e) => {
                        if e.starts_with(SNAPSHOT_CHECKSUM_MISMATCH) {
                            checksum_failures += 1;
                            eprintln!(
                                "ziggy-durable: refusing {} ({e}); falling back",
                                snap_name(lsn)
                            );
                        }
                        continue;
                    }
                },
                Err(_) => continue,
            }
        }

        let mut mat = Materializer::from_snapshot(snap_state.as_ref());
        let mut max_lsn = snap_lsn;
        let mut replayed = 0u64;
        let mut torn = 0u64;

        for (i, &first) in segs.iter().enumerate() {
            let file_name = seg_name(first);
            let path = dir.join(&file_name);
            let file = File::open(&path)?;
            let mut reader = BufReader::new(file);
            let mut offset = 0u64;
            let mut line = String::new();
            loop {
                line.clear();
                let n = reader.read_line(&mut line)?;
                if n == 0 {
                    break;
                }
                let parsed = line
                    .strip_suffix('\n')
                    .and_then(parse_frame)
                    .and_then(|(lsn, payload)| Record::decode(payload).ok().map(|r| (lsn, r)));
                let Some((lsn, rec)) = parsed else {
                    // Torn or corrupt: drop this segment's tail. Only
                    // the *active* (last) segment is truncated on
                    // disk; a sealed segment with a bad tail is left
                    // as-is and simply read up to the damage.
                    torn += 1;
                    if i == segs.len() - 1 {
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(offset)?;
                        f.sync_data()?;
                    }
                    break;
                };
                max_lsn = max_lsn.max(lsn);
                if lsn > snap_lsn {
                    replayed += 1;
                    mat.apply(
                        &rec,
                        CsvLoc::Segment {
                            file: file_name.clone(),
                            offset,
                        },
                    );
                }
                offset += n as u64;
            }
        }

        let next_lsn = max_lsn + 1;

        // Reopen the newest segment for appending, or start fresh.
        let (seg_file, file, seg_bytes) = match segs.last() {
            Some(&first) => {
                let name = seg_name(first);
                let path = dir.join(&name);
                let len = fs::metadata(&path)?.len();
                if len < opts.segment_bytes {
                    let file = OpenOptions::new().append(true).open(&path)?;
                    (name, file, len)
                } else {
                    let name = seg_name(next_lsn);
                    let file = OpenOptions::new()
                        .create_new(true)
                        .append(true)
                        .open(dir.join(&name))?;
                    (name, file, 0)
                }
            }
            None => {
                let name = seg_name(next_lsn);
                let file = OpenOptions::new()
                    .create_new(true)
                    .append(true)
                    .open(dir.join(&name))?;
                sync_dir(dir)?;
                (name, file, 0)
            }
        };

        let csv_index = mat.csv_locs().into_iter().collect();
        let state = mat.into_state();

        let metrics = DurableMetrics::default();
        metrics.replay_records.store(replayed, Ordering::Relaxed);
        metrics.torn_records.store(torn, Ordering::Relaxed);
        metrics
            .snapshot_checksum_failures
            .store(checksum_failures, Ordering::Relaxed);
        metrics
            .replay_us
            .store(t0.elapsed().as_micros() as u64, Ordering::Relaxed);

        let inner = Arc::new(Inner {
            dir: dir.to_path_buf(),
            opts,
            writer: Mutex::new(Writer {
                file,
                seg_file,
                seg_bytes,
                next_lsn,
            }),
            flush_state: Mutex::new(FlushState {
                written: next_lsn.saturating_sub(1),
                flushed: next_lsn.saturating_sub(1),
                io_error: false,
                oldest_pending: None,
            }),
            flush_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics,
            csv_index: Mutex::new(csv_index),
            snapshot_lsn: AtomicU64::new(snap_lsn),
            since_snapshot: AtomicU64::new(0),
            snapshotting: AtomicBool::new(false),
            last_span_ctx: Mutex::new(None),
        });

        // Batch needs the flusher for group commit; Async needs it to
        // bound the power-loss window (fsync at most
        // `async_flush_interval` behind the last append instead of only
        // on rotation).
        let flusher = if matches!(
            inner.opts.mode,
            DurabilityMode::Batch | DurabilityMode::Async
        ) {
            let worker = Arc::clone(&inner);
            Some(
                thread::Builder::new()
                    .name("ziggy-durable-flush".into())
                    .spawn(move || worker.flush_loop())
                    .expect("spawn group-commit flusher"),
            )
        } else {
            None
        };

        Ok((
            DurableLog {
                inner,
                flusher: Mutex::new(flusher),
            },
            ReplayOutcome {
                state,
                records: replayed,
                torn,
            },
        ))
    }

    /// Appends one record and acknowledges it per the durability mode.
    /// Returns the record's LSN.
    pub fn append(&self, rec: &Record) -> io::Result<u64> {
        let t0 = Instant::now();
        let mut append_span = span::child("durable.append");
        if let Some(s) = append_span.as_mut() {
            s.attr("mode", self.inner.opts.mode.as_str());
        }
        // Save the caller's span context so the background flusher can
        // attribute its next fsync to this request's trace.
        if let Some(ctx) = span::current_recorder() {
            *self
                .inner
                .last_span_ctx
                .lock()
                .expect("durable span ctx lock") = Some(ctx);
        }
        let payload = rec.encode();
        let inner = &self.inner;

        let mut w = inner.writer.lock().expect("durable writer lock");
        let lsn = w.next_lsn;
        let line = frame(lsn, &payload);
        if w.seg_bytes > 0 && w.seg_bytes + line.len() as u64 > inner.opts.segment_bytes {
            inner.rotate(&mut w, lsn)?;
        }
        let offset = w.seg_bytes;
        let seg_file = w.seg_file.clone();
        w.file.write_all(line.as_bytes())?;
        w.next_lsn = lsn + 1;
        w.seg_bytes += line.len() as u64;

        match inner.opts.mode {
            DurabilityMode::Fsync => {
                let f0 = Instant::now();
                {
                    let mut fsync_span = span::child("durable.fsync");
                    if let Some(s) = fsync_span.as_mut() {
                        s.attr("batch", "1");
                    }
                    let result = w.file.sync_data();
                    if let (Some(s), true) = (fsync_span.as_mut(), result.is_err()) {
                        s.set_error(true);
                    }
                    result?;
                }
                inner.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
                inner
                    .metrics
                    .fsync_latency
                    .record_us(f0.elapsed().as_micros() as u64);
                drop(w);
            }
            DurabilityMode::Async => {
                {
                    let mut st = inner.flush_state.lock().expect("flush state lock");
                    st.written = st.written.max(lsn);
                    st.oldest_pending.get_or_insert_with(Instant::now);
                }
                drop(w);
            }
            DurabilityMode::Batch => {
                {
                    let mut st = inner.flush_state.lock().expect("flush state lock");
                    st.written = st.written.max(lsn);
                    st.oldest_pending.get_or_insert_with(Instant::now);
                }
                drop(w);
                let mut st = inner.flush_state.lock().expect("flush state lock");
                while st.flushed < lsn && !st.io_error && !inner.stop.load(Ordering::Relaxed) {
                    let (guard, _timeout) = inner
                        .flush_cv
                        .wait_timeout(st, Duration::from_millis(50))
                        .expect("flush state wait");
                    st = guard;
                }
                if st.io_error {
                    return Err(io::Error::other("group-commit fsync failed"));
                }
            }
        }

        // Index the CSV location so exports read from the log instead
        // of a retained in-memory copy.
        match rec {
            Record::Ingest { table, .. } => {
                inner.csv_index.lock().expect("csv index lock").insert(
                    table.clone(),
                    CsvChain::solo(CsvLoc::Segment {
                        file: seg_file,
                        offset,
                    }),
                );
            }
            Record::Append { table, .. } => {
                // Layer the append onto the table's chain. A missing
                // chain means the table has no logged base (shouldn't
                // happen — the registry refuses appends without CSV
                // provenance) and the export index is left alone.
                if let Some(chain) = inner
                    .csv_index
                    .lock()
                    .expect("csv index lock")
                    .get_mut(table)
                {
                    chain.appends.push(CsvLoc::Segment {
                        file: seg_file,
                        offset,
                    });
                }
            }
            Record::Tombstone { table, .. } => {
                inner
                    .csv_index
                    .lock()
                    .expect("csv index lock")
                    .remove(table);
            }
            _ => {}
        }

        inner.metrics.records.fetch_add(1, Ordering::Relaxed);
        inner.since_snapshot.fetch_add(1, Ordering::Relaxed);
        inner
            .metrics
            .append_latency
            .record_us(t0.elapsed().as_micros() as u64);
        Ok(lsn)
    }

    /// Reads one framed record back out of a segment file.
    fn read_record(&self, file: &str, offset: u64) -> Option<Record> {
        let path = self.inner.dir.join(file);
        let f = File::open(path).ok()?;
        let mut reader = BufReader::new(f);
        reader.seek(SeekFrom::Start(offset)).ok()?;
        let mut line = String::new();
        reader.read_line(&mut line).ok()?;
        let (_, payload) = parse_frame(line.strip_suffix('\n')?)?;
        Record::decode(payload).ok()
    }

    /// Reads the current CSV bytes of `table` back out of the log by
    /// walking its location chain: the winning ingest (segment or
    /// snapshot) plus every append layered on top of it. The walk
    /// re-runs the materializer's composition rule — records at or
    /// below the base's timestamp are already folded into it (the
    /// snapshot-race window) and skip — so export, replay, and the live
    /// registry all produce the identical byte string.
    pub fn table_csv(&self, table: &str) -> Option<String> {
        let chain = self
            .inner
            .csv_index
            .lock()
            .expect("csv index lock")
            .get(table)
            .cloned()?;
        let (mut csv, mut ts) = match chain.base {
            CsvLoc::Segment { file, offset } => match self.read_record(&file, offset)? {
                Record::Ingest { csv, ts, .. } => (csv, ts),
                _ => return None,
            },
            CsvLoc::Snapshot => {
                let lsn = self.inner.snapshot_lsn.load(Ordering::Acquire);
                let text = fs::read_to_string(self.inner.dir.join(snap_name(lsn))).ok()?;
                let (_, state) = decode_snapshot(&text).ok()?;
                let t = state.tables.into_iter().find(|t| t.name == table)?;
                (t.csv, t.ts)
            }
        };
        for loc in &chain.appends {
            let CsvLoc::Segment { file, offset } = loc else {
                continue;
            };
            if let Some(Record::Append {
                table: rec_table,
                ts: rec_ts,
                rows,
                ..
            }) = self.read_record(file, *offset)
            {
                if rec_table == table && rec_ts > ts {
                    csv = combine_csv(&csv, &rows);
                    ts = rec_ts;
                }
            }
        }
        Some(csv)
    }

    /// Whether enough records have accumulated to warrant a snapshot.
    pub fn wants_snapshot(&self) -> bool {
        let every = self.inner.opts.snapshot_every;
        every > 0 && self.inner.since_snapshot.load(Ordering::Relaxed) >= every
    }

    /// Claims the snapshot slot and returns the cover LSN, or `None`
    /// if a snapshot is already in flight. The caller must capture the
    /// cover *before* reading live state (see the race note in
    /// [`crate::state`]) and then call [`DurableLog::write_snapshot`]
    /// or [`DurableLog::abandon_snapshot`].
    pub fn begin_snapshot(&self) -> Option<u64> {
        if self.inner.snapshotting.swap(true, Ordering::AcqRel) {
            return None;
        }
        let w = self.inner.writer.lock().expect("durable writer lock");
        Some(w.next_lsn - 1)
    }

    /// Releases the snapshot slot without writing (state gather failed).
    pub fn abandon_snapshot(&self) {
        self.inner.snapshotting.store(false, Ordering::Release);
    }

    /// Writes the snapshot claimed by [`DurableLog::begin_snapshot`],
    /// then compacts segments wholly covered by it and prunes older
    /// snapshots.
    pub fn write_snapshot(&self, cover_lsn: u64, state: &SnapshotState) -> io::Result<()> {
        let result = self.write_snapshot_inner(cover_lsn, state);
        self.inner.snapshotting.store(false, Ordering::Release);
        result
    }

    fn write_snapshot_inner(&self, cover_lsn: u64, state: &SnapshotState) -> io::Result<()> {
        let inner = &self.inner;
        let text = encode_snapshot(cover_lsn, state);
        let final_path = inner.dir.join(snap_name(cover_lsn));
        let tmp_path = inner.dir.join("snap.tmp");
        {
            let mut f = File::create(&tmp_path)?;
            f.write_all(text.as_bytes())?;
            f.sync_data()?;
            inner.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        }
        fs::rename(&tmp_path, &final_path)?;
        sync_dir(&inner.dir)?;

        let prev_snap = inner.snapshot_lsn.swap(cover_lsn, Ordering::AcqRel);
        inner.since_snapshot.store(0, Ordering::Relaxed);
        inner.metrics.snapshots.fetch_add(1, Ordering::Relaxed);

        // Snapshot tables now have a durable home outside segments;
        // repoint the export index before deleting anything. Entries
        // updated by a concurrent ingest keep their (newer) segment
        // location: only replace locations that point into segments
        // about to be considered for deletion when the table is in the
        // snapshot with no newer ingest. Simplest safe rule: repoint a
        // table to Snapshot only if its indexed location is untouched
        // since the state was gathered — approximated here by leaving
        // entries alone when the segment file still survives
        // compaction, and repointing the rest.
        let mut segs: Vec<u64> = Vec::new();
        let mut old_snaps: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&inner.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(lsn) = parse_numbered(&name, "seg-", ".log") {
                segs.push(lsn);
            } else if let Some(lsn) = parse_numbered(&name, "snap-", ".json") {
                if lsn != cover_lsn && lsn <= prev_snap.max(cover_lsn) {
                    old_snaps.push(lsn);
                }
            }
        }
        segs.sort_unstable();

        // A segment is deletable iff its successor's first LSN is at
        // or below cover+1 (then every record it holds is ≤ cover).
        // The active segment never deletes.
        let mut deletable: Vec<String> = Vec::new();
        for pair in segs.windows(2) {
            if pair[1] <= cover_lsn + 1 {
                deletable.push(seg_name(pair[0]));
            }
        }

        {
            let mut index = inner.csv_index.lock().expect("csv index lock");
            let in_deletable = |loc: &CsvLoc| matches!(loc, CsvLoc::Segment { file, .. } if deletable.contains(file));
            for t in &state.tables {
                match index.get_mut(&t.name) {
                    Some(chain) => {
                        // Deletable segments form an LSN-ordered prefix,
                        // so any append in a deletable segment implies
                        // its base is deletable (or already Snapshot)
                        // too. Appends folded into the snapshot but
                        // living in surviving segments stay on the
                        // chain; the read path's timestamp rule skips
                        // them, so no row is ever applied twice.
                        chain.appends.retain(|loc| !in_deletable(loc));
                        if in_deletable(&chain.base) {
                            chain.base = CsvLoc::Snapshot;
                        }
                    }
                    None => {
                        // Shouldn't happen (live table with no index
                        // entry) but the snapshot can serve it anyway.
                        index.insert(t.name.clone(), CsvChain::solo(CsvLoc::Snapshot));
                    }
                }
            }
        }

        for file in &deletable {
            if fs::remove_file(inner.dir.join(file)).is_ok() {
                inner
                    .metrics
                    .segments_compacted
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        for lsn in old_snaps {
            let _ = fs::remove_file(inner.dir.join(snap_name(lsn)));
        }
        if !deletable.is_empty() {
            sync_dir(&inner.dir)?;
        }
        Ok(())
    }

    /// The log's metrics block.
    pub fn metrics(&self) -> &DurableMetrics {
        &self.inner.metrics
    }

    /// The configured durability mode.
    pub fn mode(&self) -> DurabilityMode {
        self.inner.opts.mode
    }

    /// The data directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.inner.dir
    }

    /// Live segment files on disk (active one included).
    pub fn segment_count(&self) -> usize {
        fs::read_dir(&self.inner.dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .filter(|e| {
                        parse_numbered(&e.file_name().to_string_lossy(), "seg-", ".log").is_some()
                    })
                    .count()
            })
            .unwrap_or(0)
    }

    /// Cover LSN of the newest snapshot (0 before the first).
    pub fn snapshot_lsn(&self) -> u64 {
        self.inner.snapshot_lsn.load(Ordering::Acquire)
    }

    /// Forces every buffered byte to disk (used at graceful shutdown
    /// and by tests; Batch/Async callers otherwise rely on the mode's
    /// own guarantees).
    pub fn sync(&self) -> io::Result<()> {
        let w = self.inner.writer.lock().expect("durable writer lock");
        w.file.sync_data()?;
        self.inner.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        let mut st = self.inner.flush_state.lock().expect("flush state lock");
        st.flushed = st.flushed.max(st.written);
        st.oldest_pending = None;
        self.inner.flush_cv.notify_all();
        Ok(())
    }

    /// Milliseconds the oldest acknowledged-but-unflushed append has
    /// been waiting for its fsync (0 = everything acknowledged is on
    /// disk). Only `async` mode runs a nonzero lag in steady state; the
    /// background flusher bounds it to about
    /// [`DurableOptions::async_flush_interval`].
    pub fn async_lag_ms(&self) -> u64 {
        let st = self.inner.flush_state.lock().expect("flush state lock");
        if st.flushed >= st.written {
            return 0;
        }
        st.oldest_pending
            .map(|t| t.elapsed().as_millis() as u64)
            .unwrap_or(0)
    }
}

impl Inner {
    fn rotate(&self, w: &mut Writer, next_first: u64) -> io::Result<()> {
        // Seal the old segment: fsync it so "sealed segments are
        // durable" holds and group commit can limit itself to the
        // active file.
        w.file.sync_data()?;
        self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
        let name = seg_name(next_first);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(self.dir.join(&name))?;
        sync_dir(&self.dir)?;
        w.file = file;
        w.seg_file = name;
        w.seg_bytes = 0;
        Ok(())
    }

    fn flush_loop(self: &Arc<Self>) {
        let interval = match self.opts.mode {
            DurabilityMode::Batch => self.opts.commit_interval,
            _ => self.opts.async_flush_interval,
        };
        loop {
            thread::sleep(interval);
            let (target, flushed) = {
                let st = self.flush_state.lock().expect("flush state lock");
                (st.written, st.flushed)
            };
            if target > flushed {
                let f0 = Instant::now();
                let start_unix_us = SystemTime::now()
                    .duration_since(UNIX_EPOCH)
                    .map(|d| d.as_micros() as u64)
                    .unwrap_or(0);
                let result = {
                    let w = self.writer.lock().expect("durable writer lock");
                    w.file.sync_data()
                };
                self.metrics.fsyncs.fetch_add(1, Ordering::Relaxed);
                self.metrics
                    .fsync_latency
                    .record_us(f0.elapsed().as_micros() as u64);
                // Attribute this fsync to the trace whose append queued
                // it last — the flusher runs outside any request, so it
                // records through the context that append saved.
                if let Some((recorder, trace, parent)) = self
                    .last_span_ctx
                    .lock()
                    .expect("durable span ctx lock")
                    .take()
                {
                    recorder.record_span(
                        &trace,
                        Some(&parent),
                        "durable.fsync",
                        start_unix_us,
                        f0.elapsed().as_micros() as u64,
                        &[("batch", (target - flushed).to_string())],
                        result.is_err(),
                    );
                }
                let mut st = self.flush_state.lock().expect("flush state lock");
                match result {
                    Ok(()) => {
                        if target > flushed + 1 {
                            self.metrics.group_commits.fetch_add(1, Ordering::Relaxed);
                        }
                        st.flushed = st.flushed.max(target);
                        st.oldest_pending = if st.flushed >= st.written {
                            None
                        } else {
                            // Whatever is still pending arrived during
                            // the fsync just issued.
                            Some(Instant::now())
                        };
                    }
                    Err(_) => st.io_error = true,
                }
                self.flush_cv.notify_all();
            }
            if self.stop.load(Ordering::Relaxed) {
                // One last drain ran above; wake any stragglers.
                self.flush_cv.notify_all();
                return;
            }
        }
    }
}

impl Drop for DurableLog {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::Relaxed);
        self.inner.flush_cv.notify_all();
        if let Some(handle) = self.flusher.lock().expect("flusher handle lock").take() {
            let _ = handle.join();
        }
        // Best-effort final flush so a graceful shutdown in Async mode
        // still lands on disk.
        let _ = self.sync();
    }
}

impl std::fmt::Debug for DurableLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableLog")
            .field("dir", &self.inner.dir)
            .field("mode", &self.inner.opts.mode)
            .finish_non_exhaustive()
    }
}
