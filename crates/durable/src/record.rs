//! The log record vocabulary and its wire framing.
//!
//! Every mutation a backend acknowledges is one [`Record`], rendered as
//! a single line:
//!
//! ```text
//! ZR1 <lsn> <fnv64-hex> <compact-json-payload>\n
//! ```
//!
//! The checksum covers the JSON payload, so a torn tail (power cut mid
//! `write(2)`) parses as "no record here" rather than garbage state.
//! Payloads are self-describing objects tagged by an `"op"` field;
//! unknown ops decode as errors and replay skips them, so an older
//! binary can replay a log with records it predates without dying.

use serde_json::{Number, Value};
use ziggy_store::fnv1a_64;

/// The framing magic. Bump to `ZR2` only with a replay shim for `ZR1`.
pub const FRAME_MAGIC: &str = "ZR1";

/// One durable mutation. CSV bytes ride inside the ingest record —
/// that single decision is what lets the log replace the registry's
/// retained `source_csv` copy and serve `GET /tables/{name}/csv`.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A table was ingested (or re-ingested) from CSV.
    Ingest {
        /// Table name (already validated by the registry).
        table: String,
        /// FNV-1a of the CSV bytes — the replicate-idempotency key.
        fingerprint: u64,
        /// Hybrid-logical-clock timestamp (ms, strictly increasing per
        /// backend) — resolves delete-vs-recreate ordering at replay
        /// and across the fleet.
        ts: u64,
        /// The raw CSV text.
        csv: String,
    },
    /// Rows were appended to a live table. Only the *appended* rows
    /// ride in the record (headerless CSV, exactly as the client sent
    /// them); replay reconstructs the full table by concatenating them
    /// onto the winning ingest's CSV with [`combine_csv`], and the
    /// fingerprint — taken over the *combined* bytes — pins the result:
    /// replay must reproduce the appended table byte-identically.
    Append {
        /// Table name.
        table: String,
        /// FNV-1a of the combined CSV (base ++ rows) after this append.
        fingerprint: u64,
        /// HLC timestamp; appends are idempotent under re-application
        /// by the same `ts > table.ts` rule ingests use.
        ts: u64,
        /// The appended rows: headerless CSV text.
        rows: String,
    },
    /// A table was deleted. Tombstones outlive the table so a stale
    /// rejoiner's copy is recognized as deleted, not resurrected.
    Tombstone {
        /// Table name.
        table: String,
        /// HLC timestamp of the delete.
        ts: u64,
        /// A stray-replica clean-up rather than a user delete. Stray
        /// tombstones apply locally exactly like plain ones (the copy
        /// stays dead across replay) but are excluded from
        /// `GET /tombstones`: a local garbage-collection artifact must
        /// never be read by the fleet's repair loop as "this table was
        /// deleted everywhere".
        stray: bool,
    },
    /// A session was created against `table`.
    SessionCreate {
        /// Session id.
        id: u64,
        /// Table the session explores.
        table: String,
    },
    /// A session accepted step number `seq` (1-based). The sequence
    /// number makes replay idempotent: a step already reflected in a
    /// snapshot is skipped, never double-applied.
    SessionStep {
        /// Session id.
        id: u64,
        /// 1-based step number as reported by the session manager.
        seq: u64,
        /// The predicate text of the step.
        query: String,
    },
    /// A session was closed.
    SessionDelete {
        /// Session id.
        id: u64,
    },
}

fn obj(pairs: Vec<(&str, Value)>) -> Value {
    Value::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn num(n: u64) -> Value {
    Value::Number(Number::U(n))
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("missing u64 field {key:?}"))
}

impl Record {
    /// Renders the record as a compact JSON payload (no framing).
    pub fn encode(&self) -> String {
        let value = match self {
            Record::Ingest {
                table,
                fingerprint,
                ts,
                csv,
            } => obj(vec![
                ("op", Value::String("ingest".into())),
                ("table", Value::String(table.clone())),
                ("fingerprint", num(*fingerprint)),
                ("ts", num(*ts)),
                ("csv", Value::String(csv.clone())),
            ]),
            Record::Append {
                table,
                fingerprint,
                ts,
                rows,
            } => obj(vec![
                ("op", Value::String("append".into())),
                ("table", Value::String(table.clone())),
                ("fingerprint", num(*fingerprint)),
                ("ts", num(*ts)),
                ("rows", Value::String(rows.clone())),
            ]),
            Record::Tombstone { table, ts, stray } => obj(vec![
                ("op", Value::String("tombstone".into())),
                ("table", Value::String(table.clone())),
                ("ts", num(*ts)),
                ("stray", Value::Bool(*stray)),
            ]),
            Record::SessionCreate { id, table } => obj(vec![
                ("op", Value::String("session_create".into())),
                ("id", num(*id)),
                ("table", Value::String(table.clone())),
            ]),
            Record::SessionStep { id, seq, query } => obj(vec![
                ("op", Value::String("session_step".into())),
                ("id", num(*id)),
                ("seq", num(*seq)),
                ("query", Value::String(query.clone())),
            ]),
            Record::SessionDelete { id } => obj(vec![
                ("op", Value::String("session_delete".into())),
                ("id", num(*id)),
            ]),
        };
        serde_json::to_string(&value).expect("record JSON render is infallible")
    }

    /// Parses a payload produced by [`Record::encode`].
    pub fn decode(payload: &str) -> Result<Record, String> {
        let value = serde_json::from_str_value(payload).map_err(|e| e.to_string())?;
        let op = str_field(&value, "op")?;
        match op.as_str() {
            "ingest" => Ok(Record::Ingest {
                table: str_field(&value, "table")?,
                fingerprint: u64_field(&value, "fingerprint")?,
                ts: u64_field(&value, "ts")?,
                csv: str_field(&value, "csv")?,
            }),
            "append" => Ok(Record::Append {
                table: str_field(&value, "table")?,
                fingerprint: u64_field(&value, "fingerprint")?,
                ts: u64_field(&value, "ts")?,
                rows: str_field(&value, "rows")?,
            }),
            "tombstone" => Ok(Record::Tombstone {
                table: str_field(&value, "table")?,
                ts: u64_field(&value, "ts")?,
                // Absent in logs written before stray GC existed.
                stray: value.get("stray").and_then(Value::as_bool).unwrap_or(false),
            }),
            "session_create" => Ok(Record::SessionCreate {
                id: u64_field(&value, "id")?,
                table: str_field(&value, "table")?,
            }),
            "session_step" => Ok(Record::SessionStep {
                id: u64_field(&value, "id")?,
                seq: u64_field(&value, "seq")?,
                query: str_field(&value, "query")?,
            }),
            "session_delete" => Ok(Record::SessionDelete {
                id: u64_field(&value, "id")?,
            }),
            other => Err(format!("unknown record op {other:?}")),
        }
    }
}

/// Concatenates appended rows onto a base CSV, inserting the newline a
/// truncated base may be missing. This is THE append-composition rule:
/// the registry uses it to fingerprint the live table, the materializer
/// uses it at replay, and the log's export path uses it when stitching
/// a table back together from its record chain — all three must build
/// the identical byte string or replay stops being byte-faithful.
pub fn combine_csv(base: &str, rows: &str) -> String {
    let mut out = String::with_capacity(base.len() + rows.len() + 1);
    out.push_str(base);
    if !base.is_empty() && !base.ends_with('\n') {
        out.push('\n');
    }
    out.push_str(rows);
    out
}

/// Frames a payload as one log line: magic, LSN, payload checksum,
/// payload, newline. Payloads are JSON and therefore newline-free (the
/// serializer escapes control characters), so lines are the record
/// boundary.
pub fn frame(lsn: u64, payload: &str) -> String {
    format!(
        "{FRAME_MAGIC} {lsn} {:016x} {payload}\n",
        fnv1a_64(payload.as_bytes())
    )
}

/// Parses one framed line (without the trailing newline) back into
/// `(lsn, payload)`. Returns `None` on any corruption — bad magic,
/// short line, checksum mismatch — which replay treats as a torn tail.
pub fn parse_frame(line: &str) -> Option<(u64, &str)> {
    let rest = line.strip_prefix(FRAME_MAGIC)?.strip_prefix(' ')?;
    let (lsn_s, rest) = rest.split_once(' ')?;
    let (crc_s, payload) = rest.split_once(' ')?;
    let lsn = lsn_s.parse::<u64>().ok()?;
    let crc = u64::from_str_radix(crc_s, 16).ok()?;
    if crc != fnv1a_64(payload.as_bytes()) {
        return None;
    }
    Some((lsn, payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<Record> {
        vec![
            Record::Ingest {
                table: "wines".into(),
                fingerprint: 0xdead_beef_cafe_f00d,
                ts: 1_754_000_000_123,
                csv: "a,b\n1,2\n\"x\"\"y\",3\n".into(),
            },
            Record::Append {
                table: "wines".into(),
                fingerprint: 0x1234_5678_9abc_def0,
                ts: 1_754_000_000_456,
                rows: "4,5\n\"q\"\"z\",6\n".into(),
            },
            Record::Tombstone {
                table: "wines".into(),
                ts: 7,
                stray: false,
            },
            Record::Tombstone {
                table: "stray-copy".into(),
                ts: 8,
                stray: true,
            },
            Record::SessionCreate {
                id: 42,
                table: "t".into(),
            },
            Record::SessionStep {
                id: 42,
                seq: 3,
                query: "price > 10 and color = \"red\"".into(),
            },
            Record::SessionDelete { id: 42 },
        ]
    }

    #[test]
    fn encode_decode_round_trips() {
        for rec in samples() {
            let payload = rec.encode();
            assert_eq!(Record::decode(&payload).unwrap(), rec, "{payload}");
        }
    }

    #[test]
    fn frame_round_trips_and_rejects_corruption() {
        for (i, rec) in samples().into_iter().enumerate() {
            let payload = rec.encode();
            let line = frame(i as u64 + 1, &payload);
            let trimmed = line.strip_suffix('\n').unwrap();
            let (lsn, got) = parse_frame(trimmed).unwrap();
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(got, payload);
            // Flip one payload byte: checksum must catch it.
            let mut corrupt = trimmed.to_string();
            corrupt.pop();
            corrupt.push('~');
            assert!(parse_frame(&corrupt).is_none());
        }
        assert!(parse_frame("").is_none());
        assert!(parse_frame("ZR9 1 0 {}").is_none());
        assert!(parse_frame("ZR1 x 0 {}").is_none());
    }

    #[test]
    fn unknown_op_is_an_error_not_a_panic() {
        assert!(Record::decode(r#"{"op":"warp_core_breach"}"#).is_err());
        assert!(Record::decode("not json").is_err());
        assert!(Record::decode(r#"{"op":"ingest","table":"t"}"#).is_err());
    }

    #[test]
    fn combine_csv_inserts_exactly_the_missing_newline() {
        assert_eq!(combine_csv("a,b\n1,2\n", "3,4\n"), "a,b\n1,2\n3,4\n");
        assert_eq!(combine_csv("a,b\n1,2", "3,4\n"), "a,b\n1,2\n3,4\n");
        assert_eq!(combine_csv("", "3,4\n"), "3,4\n");
        // Associativity under normalized (newline-terminated) rows: one
        // combined batch equals two chained appends byte for byte.
        let two_step = combine_csv(&combine_csv("h\n1\n", "2\n"), "3\n");
        assert_eq!(two_step, combine_csv("h\n1\n", "2\n3\n"));
    }

    #[test]
    fn csv_with_newlines_stays_one_line() {
        let rec = Record::Ingest {
            table: "t".into(),
            fingerprint: 1,
            ts: 2,
            csv: "a\nb\r\nc".into(),
        };
        let line = frame(9, &rec.encode());
        assert_eq!(line.matches('\n').count(), 1);
        assert!(line.ends_with('\n'));
    }
}
