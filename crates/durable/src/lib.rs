#![warn(missing_docs)]

//! `ziggy-durable` — per-backend durability for the Ziggy fleet.
//!
//! The whole stack above this crate is RAM-resident; this crate is the
//! one place bytes meet disk. Each backend owns an append-only
//! segmented log recording every acknowledged mutation:
//!
//! * **ingest records** — table name, CSV fingerprint, *and the CSV
//!   bytes*. The log copy replaces the registry's retained
//!   `source_csv` (which doubled per-table memory); `GET
//!   /tables/{name}/csv` is served straight from the log.
//! * **append records** — the appended rows only (headerless CSV);
//!   replay concatenates them onto the winning ingest's bytes with
//!   [`combine_csv`] and reproduces the appended table byte-identically.
//! * **delete tombstones** — HLC-timestamped, so a backend that was
//!   outside the membership when a table was deleted rejoins and the
//!   repair loop recognizes its copy as deleted instead of faithfully
//!   resurrecting it.
//! * **session ops** — create/step/delete with step sequence numbers,
//!   so a restarted backend replays its sessions and the fleet router
//!   can re-home a session whose replica died.
//!
//! Acknowledgement durability comes in three modes ([`DurabilityMode`],
//! `--durability` on the CLI): `fsync` per op, `batch` group commit
//! (appends gate on a shared flusher that issues one fsync per commit
//! interval), and `async` (write-to-OS, crash-safe but not
//! power-safe). Periodic [snapshots](DurableLog::write_snapshot)
//! bound replay time and let segments past the cover LSN compact away.
//! [`DurableLog::open`] replays snapshot + tail with torn-write
//! tolerance and returns the recovered state for the serve layer to
//! rebuild from. `bench_durability` measures all three modes into
//! `BENCH_durability.json`.

mod log;
mod record;
mod state;

pub use crate::log::{DurabilityMode, DurableLog, DurableMetrics, DurableOptions, ReplayOutcome};
pub use crate::record::{combine_csv, frame, parse_frame, Record, FRAME_MAGIC};
pub use crate::state::{
    decode_snapshot, encode_snapshot, CsvChain, CsvLoc, Materializer, SessionState, SnapshotState,
    TableState, MAX_SESSION_QUERIES,
};

/// Milliseconds since the Unix epoch — the wall half of the registry's
/// hybrid logical clock.
pub fn wall_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}
