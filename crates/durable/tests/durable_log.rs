//! End-to-end tests for the segmented log: replay equivalence across
//! all three durability modes, rotation + compaction, torn tails, and
//! group-commit under concurrent appenders.

use std::fs::{self, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ziggy_durable::{DurabilityMode, DurableLog, DurableOptions, Record, SnapshotState};

fn test_dir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ziggy-durable-test-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn opts(mode: DurabilityMode) -> DurableOptions {
    DurableOptions {
        mode,
        segment_bytes: 512, // Tiny, to force rotation in tests.
        snapshot_every: 0,  // Snapshots only when tests ask.
        commit_interval: Duration::from_millis(1),
        ..DurableOptions::default()
    }
}

fn ingest(table: &str, ts: u64, csv: &str) -> Record {
    Record::Ingest {
        table: table.into(),
        fingerprint: ziggy_store::fnv1a_64(csv.as_bytes()),
        ts,
        csv: csv.into(),
    }
}

#[test]
fn replay_equivalence_across_modes() {
    for mode in [
        DurabilityMode::Fsync,
        DurabilityMode::Batch,
        DurabilityMode::Async,
    ] {
        let dir = test_dir(&format!("modes-{mode}"));
        {
            let (log, replay) = DurableLog::open(&dir, opts(mode)).unwrap();
            assert_eq!(replay.records, 0);
            log.append(&ingest("t1", 10, "a,b\n1,2\n")).unwrap();
            log.append(&ingest("t2", 11, "c\n3\n")).unwrap();
            log.append(&Record::Tombstone {
                table: "t2".into(),
                ts: 12,
                stray: false,
            })
            .unwrap();
            log.append(&Record::SessionCreate {
                id: 1,
                table: "t1".into(),
            })
            .unwrap();
            log.append(&Record::SessionStep {
                id: 1,
                seq: 1,
                query: "a > 0".into(),
            })
            .unwrap();
        }
        let (log, replay) = DurableLog::open(&dir, opts(mode)).unwrap();
        assert_eq!(replay.torn, 0, "{mode}");
        let state = &replay.state;
        assert_eq!(state.tables.len(), 1, "{mode}");
        assert_eq!(state.tables[0].name, "t1");
        assert_eq!(state.tombstones, vec![("t2".into(), 12, false)]);
        assert_eq!(state.sessions.len(), 1);
        assert_eq!(state.sessions[0].queries, vec!["a > 0"]);
        // CSV served from the log, not from memory.
        assert_eq!(log.table_csv("t1").as_deref(), Some("a,b\n1,2\n"));
        assert_eq!(log.table_csv("t2"), None);
        drop(log);
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn rotation_snapshot_compaction_and_replay() {
    let dir = test_dir("compact");
    let (log, _) = DurableLog::open(&dir, opts(DurabilityMode::Async)).unwrap();
    // Enough bytes to roll several 512-byte segments.
    for i in 0..24u64 {
        log.append(&ingest(&format!("t{}", i % 4), 100 + i, "x,y\n1,2\n3,4\n"))
            .unwrap();
    }
    assert!(log.segment_count() > 2, "expected rotation");

    // Snapshot the live state the way the serve layer would.
    let cover = log.begin_snapshot().unwrap();
    let state = SnapshotState {
        tables: (0..4)
            .map(|i| ziggy_durable::TableState {
                name: format!("t{i}"),
                fingerprint: ziggy_store::fnv1a_64(b"x,y\n1,2\n3,4\n"),
                ts: 100 + 20 + i,
                csv: "x,y\n1,2\n3,4\n".into(),
            })
            .collect(),
        tombstones: vec![],
        sessions: vec![],
    };
    log.write_snapshot(cover, &state).unwrap();
    assert_eq!(
        log.segment_count(),
        1,
        "compaction should leave the active segment"
    );
    assert_eq!(log.snapshot_lsn(), cover);
    // Exports still work (now out of the snapshot).
    assert_eq!(log.table_csv("t0").as_deref(), Some("x,y\n1,2\n3,4\n"));

    // Append past the snapshot, then replay: snapshot + tail.
    log.append(&ingest("t9", 999, "z\n9\n")).unwrap();
    drop(log);
    let (log, replay) = DurableLog::open(&dir, opts(DurabilityMode::Async)).unwrap();
    let names: Vec<&str> = replay
        .state
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(names, vec!["t0", "t1", "t2", "t3", "t9"]);
    assert_eq!(log.table_csv("t9").as_deref(), Some("z\n9\n"));
    assert_eq!(log.table_csv("t2").as_deref(), Some("x,y\n1,2\n3,4\n"));
    drop(log);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_dropped_and_overwritten() {
    let dir = test_dir("torn");
    {
        let (log, _) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
        log.append(&ingest("keep", 1, "a\n1\n")).unwrap();
    }
    // Simulate a torn write: garbage bytes with no trailing record.
    let seg = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .find(|e| e.file_name().to_string_lossy().starts_with("seg-"))
        .unwrap()
        .path();
    let mut f = OpenOptions::new().append(true).open(&seg).unwrap();
    f.write_all(b"ZR1 2 00deadbeef garbage-that-won't-checksum")
        .unwrap();
    drop(f);
    let before = fs::metadata(&seg).unwrap().len();

    let (log, replay) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
    assert_eq!(replay.torn, 1);
    assert_eq!(replay.state.tables.len(), 1);
    assert!(fs::metadata(&seg).unwrap().len() < before, "tail truncated");
    // The log keeps accepting appends after truncation.
    log.append(&ingest("after", 2, "b\n2\n")).unwrap();
    drop(log);
    let (_, replay) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
    let names: Vec<&str> = replay
        .state
        .tables
        .iter()
        .map(|t| t.name.as_str())
        .collect();
    assert_eq!(names, vec!["after", "keep"]);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn group_commit_acknowledges_concurrent_appenders() {
    let dir = test_dir("group");
    let (log, _) = DurableLog::open(&dir, opts(DurabilityMode::Batch)).unwrap();
    let log = Arc::new(log);
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let log = Arc::clone(&log);
        handles.push(std::thread::spawn(move || {
            for i in 0..8u64 {
                log.append(&ingest(&format!("t{t}x{i}"), t * 100 + i, "a\n1\n"))
                    .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let appended = log
        .metrics()
        .records
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(appended, 32);
    let fsyncs = log
        .metrics()
        .fsyncs
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(fsyncs > 0, "group commit must fsync");
    drop(log);
    let (_, replay) = DurableLog::open(&dir, opts(DurabilityMode::Batch)).unwrap();
    assert_eq!(replay.state.tables.len(), 32);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn delete_then_recreate_with_identical_bytes_survives_replay() {
    // Fingerprint-only tombstones would lose this one: the recreated
    // table has the same bytes as the deleted one. HLC timestamps
    // resolve it.
    let dir = test_dir("recreate");
    {
        let (log, _) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
        log.append(&ingest("t", 10, "a\n1\n")).unwrap();
        log.append(&Record::Tombstone {
            table: "t".into(),
            ts: 11,
            stray: false,
        })
        .unwrap();
        log.append(&ingest("t", 12, "a\n1\n")).unwrap();
    }
    let (_, replay) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
    assert_eq!(replay.state.tables.len(), 1);
    assert_eq!(replay.state.tables[0].ts, 12);
    assert!(replay.state.tombstones.is_empty());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn async_mode_flusher_bounds_durability_lag() {
    let dir = test_dir("async-lag");
    let mut options = opts(DurabilityMode::Async);
    options.async_flush_interval = Duration::from_millis(10);
    let (log, _) = DurableLog::open(&dir, options).unwrap();
    log.append(&ingest("t", 1, "a\n1\n")).unwrap();
    // The background flusher must fsync within its interval instead of
    // waiting for segment rotation; poll briefly to avoid flakes.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while log.async_lag_ms() > 0 || {
        log.metrics()
            .fsyncs
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
    } {
        assert!(
            std::time::Instant::now() < deadline,
            "async flusher never caught up (lag {} ms)",
            log.async_lag_ms()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(log);
    let (_, replay) = DurableLog::open(&dir, opts(DurabilityMode::Async)).unwrap();
    assert_eq!(replay.state.tables.len(), 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_to_wal_replay_at_boot() {
    let dir = test_dir("snap-checksum");
    {
        let mut options = opts(DurabilityMode::Fsync);
        options.snapshot_every = 2;
        let (log, _) = DurableLog::open(&dir, options).unwrap();
        log.append(&ingest("a", 1, "x\n1\n")).unwrap();
        log.append(&ingest("b", 2, "x\n2\n")).unwrap();
        assert!(log.wants_snapshot());
        let cover = log.begin_snapshot().unwrap();
        let state = SnapshotState {
            tables: vec![],
            tombstones: vec![],
            sessions: vec![],
        };
        // Deliberately write an EMPTY state snapshot so we can tell
        // apart "restored from snapshot" (0 tables) from "refused the
        // snapshot, replayed the WAL" (2 tables).
        log.write_snapshot(cover, &state).unwrap();
    }
    // Corrupt the snapshot payload without touching the header.
    let snap = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            p.file_name()
                .unwrap()
                .to_string_lossy()
                .starts_with("snap-")
        })
        .expect("snapshot written");
    let text = fs::read_to_string(&snap).unwrap();
    fs::write(&snap, text.replace("\"tables\":[]", "\"tables\": []")).unwrap();

    let (log, replay) = DurableLog::open(&dir, opts(DurabilityMode::Fsync)).unwrap();
    assert_eq!(
        log.metrics()
            .snapshot_checksum_failures
            .load(std::sync::atomic::Ordering::Relaxed),
        1,
        "the corrupt snapshot must be counted"
    );
    assert_eq!(
        replay.state.tables.len(),
        2,
        "boot must fall back to WAL replay, not trust the corrupt snapshot"
    );
    let _ = fs::remove_dir_all(&dir);
}
