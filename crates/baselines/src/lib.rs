#![warn(missing_docs)]

//! Baseline methods Ziggy is compared against.
//!
//! The paper positions Ziggy against two families of alternatives
//! (§1, and the full paper's evaluation):
//!
//! * **Black-box subspace search** — rank column subsets by an opaque
//!   divergence score. Implemented here with Kullback–Leibler divergence
//!   ([`kl`]), centroid distance ([`centroid`]), exhaustive bounded
//!   enumeration ([`exhaustive`]) and greedy beam search ([`beam`]).
//!   These find *where* the selection differs but cannot say *why* —
//!   that contrast is the paper's core argument for the Zig-Dissimilarity.
//! * **Dimensionality reduction** — PCA ([`pca`], Jacobi eigensolver from
//!   scratch), which transforms the data and ignores the exploration
//!   context entirely.
//!
//! [`clique`] provides the clique-based candidate generator the paper
//! mentions as the alternative to complete-linkage clustering in Ziggy's
//! own view-search stage.

pub mod beam;
pub mod centroid;
pub mod clique;
pub mod exhaustive;
pub mod kl;
pub mod pca;

use serde::{Deserialize, Serialize};

/// A view produced by a baseline, with its method-specific score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BaselineView {
    /// Table column indices, sorted ascending.
    pub columns: Vec<usize>,
    /// Method-specific score (higher = more characteristic).
    pub score: f64,
}

/// Ranks views by descending score (lexicographic tie-break) and keeps
/// the top disjoint `max_views`, mirroring Ziggy's output contract so
/// quality comparisons are apples-to-apples.
pub fn rank_and_select_disjoint(
    mut views: Vec<BaselineView>,
    max_views: usize,
) -> Vec<BaselineView> {
    for v in &mut views {
        v.columns.sort_unstable();
    }
    views.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores must be finite")
            .then_with(|| a.columns.cmp(&b.columns))
    });
    let mut used: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    for v in views {
        if out.len() >= max_views {
            break;
        }
        if v.columns.iter().any(|c| used.contains(c)) {
            continue;
        }
        used.extend(v.columns.iter().copied());
        out.push(v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selection_is_disjoint_and_sorted() {
        let views = vec![
            BaselineView {
                columns: vec![2, 1],
                score: 5.0,
            },
            BaselineView {
                columns: vec![1],
                score: 4.0,
            },
            BaselineView {
                columns: vec![3],
                score: 3.0,
            },
        ];
        let picked = rank_and_select_disjoint(views, 10);
        assert_eq!(picked.len(), 2);
        assert_eq!(picked[0].columns, vec![1, 2]);
        assert_eq!(picked[1].columns, vec![3]);
    }

    #[test]
    fn cap_respected() {
        let views: Vec<BaselineView> = (0..5)
            .map(|i| BaselineView {
                columns: vec![i],
                score: i as f64,
            })
            .collect();
        assert_eq!(rank_and_select_disjoint(views, 2).len(), 2);
    }
}
