//! Centroid-distance scoring — the simplest divergence the paper cites
//! ("the distance between the centroids", §2.1).

use ziggy_store::{masked_uni, Bitmask, StatsCache, Table};

use crate::{rank_and_select_disjoint, BaselineView};

/// Standardized centroid distance of a column set: the Euclidean norm of
/// the per-column `(mean_in − mean_out) / sd_whole` vector. Columns whose
/// whole-table dispersion is degenerate contribute 0.
pub fn centroid_distance(
    table: &Table,
    cache: &StatsCache,
    mask: &Bitmask,
    columns: &[usize],
) -> f64 {
    let mut sum_sq = 0.0;
    for &col in columns {
        let Ok(inside) = masked_uni(table, col, mask) else {
            continue;
        };
        let Ok(outside) = cache.uni_complement(col, &inside) else {
            continue;
        };
        if inside.count() == 0 || outside.count() == 0 {
            continue;
        }
        let Ok(whole) = cache.uni(col) else { continue };
        let Ok(sd) = whole.std_dev() else { continue };
        if sd <= 0.0 {
            continue;
        }
        let d = (inside.mean() - outside.mean()) / sd;
        sum_sq += d * d;
    }
    sum_sq.sqrt()
}

/// Centroid-distance subspace search: every numeric column and (when
/// `pairwise`) every pair, scored by standardized centroid distance.
pub fn centroid_search(
    table: &Table,
    cache: &StatsCache,
    mask: &Bitmask,
    max_views: usize,
    pairwise: bool,
) -> Vec<BaselineView> {
    let numeric = table.numeric_indices();
    let mut views: Vec<BaselineView> = numeric
        .iter()
        .map(|&c| BaselineView {
            columns: vec![c],
            score: centroid_distance(table, cache, mask, &[c]),
        })
        .collect();
    if pairwise {
        for (i, &a) in numeric.iter().enumerate() {
            for &b in &numeric[i + 1..] {
                views.push(BaselineView {
                    columns: vec![a, b],
                    score: centroid_distance(table, cache, mask, &[a, b]),
                });
            }
        }
    }
    rank_and_select_disjoint(views, max_views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::{eval::select, TableBuilder};

    fn fixture() -> (Table, Bitmask) {
        let n = 400usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "shift_big",
            (0..n)
                .map(|i| if i >= 300 { 20.0 } else { 0.0 } + ((i * 13) % 5) as f64)
                .collect(),
        );
        b.add_numeric(
            "shift_small",
            (0..n)
                .map(|i| if i >= 300 { 1.0 } else { 0.0 } + ((i * 29) % 5) as f64)
                .collect(),
        );
        b.add_numeric("flat", vec![5.0; n]);
        let t = b.build().unwrap();
        let mask = select(&t, "key >= 300").unwrap();
        (t, mask)
    }

    #[test]
    fn bigger_shift_bigger_distance() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let big = centroid_distance(&t, &cache, &mask, &[1]);
        let small = centroid_distance(&t, &cache, &mask, &[2]);
        assert!(big > small, "{big} vs {small}");
        assert!(small > 0.0);
    }

    #[test]
    fn distance_is_monotone_in_columns() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let one = centroid_distance(&t, &cache, &mask, &[1]);
        let two = centroid_distance(&t, &cache, &mask, &[1, 2]);
        assert!(two >= one);
    }

    #[test]
    fn constant_column_contributes_zero() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        assert_eq!(centroid_distance(&t, &cache, &mask, &[3]), 0.0);
    }

    #[test]
    fn search_ranks_big_shift_first() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let views = centroid_search(&t, &cache, &mask, 2, false);
        assert_eq!(views[0].columns, vec![1]);
    }
}
