//! Greedy beam search over subspaces — the classic heuristic subspace
//! explorer (in the lineage of bottom-up subspace search): grow views one
//! column at a time, keeping the `beam_width` best prefixes per level.

use ziggy_store::{Bitmask, StatsCache, Table};

use crate::centroid::centroid_distance;
use crate::{rank_and_select_disjoint, BaselineView};

/// Beam search: level 1 scores all single numeric columns; each further
/// level extends the surviving beams by one unused column and keeps the
/// best `beam_width`. All beams ever produced compete for the final
/// ranking.
pub fn beam_search(
    table: &Table,
    cache: &StatsCache,
    mask: &Bitmask,
    max_size: usize,
    beam_width: usize,
    max_views: usize,
) -> Vec<BaselineView> {
    let numeric = table.numeric_indices();
    let score = |cols: &[usize]| centroid_distance(table, cache, mask, cols);

    let mut all: Vec<BaselineView> = Vec::new();
    let mut beam: Vec<BaselineView> = numeric
        .iter()
        .map(|&c| BaselineView {
            columns: vec![c],
            score: score(&[c]),
        })
        .collect();
    beam.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
    beam.truncate(beam_width);
    all.extend(beam.clone());

    for _level in 2..=max_size {
        let mut next: Vec<BaselineView> = Vec::new();
        for prefix in &beam {
            for &c in &numeric {
                if prefix.columns.contains(&c) {
                    continue;
                }
                let mut cols = prefix.columns.clone();
                cols.push(c);
                cols.sort_unstable();
                if next.iter().any(|v| v.columns == cols) {
                    continue;
                }
                let s = score(&cols);
                next.push(BaselineView {
                    columns: cols,
                    score: s,
                });
            }
        }
        if next.is_empty() {
            break;
        }
        next.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite scores"));
        next.truncate(beam_width);
        all.extend(next.clone());
        beam = next;
    }
    rank_and_select_disjoint(all, max_views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::{eval::select, TableBuilder};

    fn fixture() -> (Table, Bitmask) {
        let n = 300usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "s0",
            (0..n)
                .map(|i| if i >= 250 { 12.0 } else { 0.0 } + ((i * 13) % 5) as f64)
                .collect(),
        );
        b.add_numeric(
            "s1",
            (0..n)
                .map(|i| if i >= 250 { 9.0 } else { 0.0 } + ((i * 7) % 5) as f64)
                .collect(),
        );
        b.add_numeric("n0", (0..n).map(|i| ((i * 7919) % 23) as f64).collect());
        b.add_numeric("n1", (0..n).map(|i| ((i * 104729) % 31) as f64).collect());
        let t = b.build().unwrap();
        let mask = select(&t, "key >= 250").unwrap();
        (t, mask)
    }

    #[test]
    fn beam_finds_shifted_columns() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let views = beam_search(&t, &cache, &mask, 2, 3, 2);
        assert!(!views.is_empty());
        let top = &views[0].columns;
        // Top view must include at least one strongly shifted column.
        assert!(
            top.contains(&0) || top.contains(&1) || top.contains(&2),
            "top beam view {top:?}"
        );
    }

    #[test]
    fn wider_beam_never_worse() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let narrow = beam_search(&t, &cache, &mask, 3, 1, 1);
        let wide = beam_search(&t, &cache, &mask, 3, 8, 1);
        assert!(wide[0].score >= narrow[0].score - 1e-12);
    }

    #[test]
    fn respects_max_size() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        for v in beam_search(&t, &cache, &mask, 2, 4, 10) {
            assert!(v.columns.len() <= 2);
        }
    }

    #[test]
    fn single_level_matches_singletons() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let views = beam_search(&t, &cache, &mask, 1, 10, 10);
        assert!(views.iter().all(|v| v.columns.len() == 1));
    }
}
