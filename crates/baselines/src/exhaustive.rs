//! Exhaustive bounded-size subspace enumeration — the brute-force upper
//! baseline. Exact but exponential in the view size; used to locate the
//! crossover where Ziggy's clustering-pruned search wins (experiment T2).

use ziggy_store::{Bitmask, StatsCache, Table};

use crate::centroid::centroid_distance;
use crate::{rank_and_select_disjoint, BaselineView};

/// Error raised when the enumeration would exceed the safety budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Number of subsets the request implies.
    pub subsets: u128,
    /// The configured budget.
    pub budget: u128,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "exhaustive search needs {} subsets, budget is {}",
            self.subsets, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

fn binomial(n: u128, k: u128) -> u128 {
    if k > n {
        return 0;
    }
    let mut r: u128 = 1;
    for i in 0..k.min(n - k) {
        r = r.saturating_mul(n - i) / (i + 1);
    }
    r
}

/// Number of non-empty subsets of size ≤ `max_size` over `n` columns.
pub fn subset_count(n: usize, max_size: usize) -> u128 {
    (1..=max_size as u128).map(|k| binomial(n as u128, k)).sum()
}

/// Enumerates every subset of the numeric columns of size `1..=max_size`,
/// scores each with the standardized centroid distance, and returns the
/// top disjoint `max_views`. Refuses to run past `budget` subsets.
pub fn exhaustive_search(
    table: &Table,
    cache: &StatsCache,
    mask: &Bitmask,
    max_size: usize,
    max_views: usize,
    budget: u128,
) -> Result<Vec<BaselineView>, BudgetExceeded> {
    let numeric = table.numeric_indices();
    let total = subset_count(numeric.len(), max_size);
    if total > budget {
        return Err(BudgetExceeded {
            subsets: total,
            budget,
        });
    }
    let mut views = Vec::new();
    let mut stack: Vec<(Vec<usize>, usize)> = vec![(Vec::new(), 0)];
    while let Some((current, start)) = stack.pop() {
        for (offset, &col) in numeric[start..].iter().enumerate() {
            let mut next = current.clone();
            next.push(col);
            let score = centroid_distance(table, cache, mask, &next);
            views.push(BaselineView {
                columns: next.clone(),
                score,
            });
            if next.len() < max_size {
                stack.push((next, start + offset + 1));
            }
        }
    }
    Ok(rank_and_select_disjoint(views, max_views))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::{eval::select, TableBuilder};

    #[test]
    fn subset_counts() {
        assert_eq!(subset_count(4, 1), 4);
        assert_eq!(subset_count(4, 2), 4 + 6);
        assert_eq!(subset_count(5, 3), 5 + 10 + 10);
    }

    fn fixture() -> (Table, Bitmask) {
        let n = 200usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "p0",
            (0..n)
                .map(|i| if i >= 150 { 10.0 } else { 0.0 } + ((i * 13) % 5) as f64)
                .collect(),
        );
        b.add_numeric(
            "p1",
            (0..n)
                .map(|i| if i >= 150 { 8.0 } else { 0.0 } + ((i * 7) % 5) as f64)
                .collect(),
        );
        b.add_numeric("nz", (0..n).map(|i| ((i * 7919) % 23) as f64).collect());
        let t = b.build().unwrap();
        let mask = select(&t, "key >= 150").unwrap();
        (t, mask)
    }

    #[test]
    fn finds_the_best_pair() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let views = exhaustive_search(&t, &cache, &mask, 2, 3, 1_000_000).unwrap();
        // The key column itself has the biggest shift; the planted pair
        // combination must beat noise-only subsets.
        assert!(views[0].score >= views.last().unwrap().score);
        let top_cols = &views[0].columns;
        assert!(
            top_cols.contains(&0) || top_cols.contains(&1) || top_cols.contains(&2),
            "top view {top_cols:?} should involve shifted columns"
        );
    }

    #[test]
    fn budget_guard_trips() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        let err = exhaustive_search(&t, &cache, &mask, 3, 3, 5).unwrap_err();
        assert!(err.subsets > 5);
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn enumerates_exactly_the_subsets() {
        let (t, mask) = fixture();
        let cache = StatsCache::new(&t);
        // With a huge max_views cap and no dedup, the disjoint filter
        // still caps output; instead check totals via subset_count by
        // running with max_views = usize::MAX surrogate.
        let views = exhaustive_search(&t, &cache, &mask, 2, usize::MAX, 1_000_000).unwrap();
        // Disjoint filter limits to at most 4 singletons' worth of
        // coverage (4 columns → at most 4 disjoint views).
        assert!(views.len() <= 4);
        let mut seen = Vec::new();
        for v in &views {
            for c in &v.columns {
                assert!(!seen.contains(c));
                seen.push(*c);
            }
        }
    }
}
