//! Principal Component Analysis — the dimensionality-reduction
//! alternative the paper's introduction argues against: it rescales,
//! projects and rotates the data ("the tuples that the users visualize
//! are not those that they requested"), and it ignores the selection
//! entirely. Implemented from scratch with a cyclic Jacobi eigensolver.

use ziggy_store::Table;

/// Result of a PCA run.
#[derive(Debug, Clone)]
pub struct Pca {
    /// Eigenvalues (variance per component), descending.
    pub eigenvalues: Vec<f64>,
    /// Row `k` holds component `k`'s loadings over the input columns.
    pub components: Vec<Vec<f64>>,
    /// The table column indices the loadings refer to.
    pub columns: Vec<usize>,
}

/// Jacobi eigendecomposition of a symmetric matrix (row-major, square).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as rows,
/// sorted by descending eigenvalue.
pub fn jacobi_eigen(matrix: &[Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = matrix.len();
    let mut a: Vec<Vec<f64>> = matrix.to_vec();
    // v starts as identity; columns accumulate the rotations.
    let mut v = vec![vec![0.0; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..100 {
        let mut off: f64 = 0.0;
        for (i, row) in a.iter().enumerate() {
            for &v in &row[i + 1..] {
                off += v * v;
            }
        }
        if off < 1e-22 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-300 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of A.
                for row in a.iter_mut() {
                    let akp = row[p];
                    let akq = row[q];
                    row[p] = c * akp - s * akq;
                    row[q] = s * akp + c * akq;
                }
                // Rows p and q update jointly; take them out to satisfy
                // the borrow checker without per-element indexing costs.
                let row_p = std::mem::take(&mut a[p]);
                let row_q = std::mem::take(&mut a[q]);
                let new_p: Vec<f64> = row_p
                    .iter()
                    .zip(&row_q)
                    .map(|(&rp, &rq)| c * rp - s * rq)
                    .collect();
                let new_q: Vec<f64> = row_p
                    .iter()
                    .zip(&row_q)
                    .map(|(&rp, &rq)| s * rp + c * rq)
                    .collect();
                a[p] = new_p;
                a[q] = new_q;
                for row in v.iter_mut() {
                    let vp = row[p];
                    let vq = row[q];
                    row[p] = c * vp - s * vq;
                    row[q] = s * vp + c * vq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j][j].partial_cmp(&a[i][i]).expect("finite eigenvalues"));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| a[i][i]).collect();
    let eigenvectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&col| (0..n).map(|row| v[row][col]).collect())
        .collect();
    (eigenvalues, eigenvectors)
}

/// Runs PCA over the standardized numeric columns of a table (i.e. an
/// eigendecomposition of the correlation matrix). Columns with degenerate
/// dispersion are skipped.
pub fn pca(table: &Table) -> Pca {
    let mut columns = Vec::new();
    let mut standardized: Vec<Vec<f64>> = Vec::new();
    for col in table.numeric_indices() {
        let data = table.numeric(col).expect("numeric index");
        let m = ziggy_stats::UniMoments::from_slice(data);
        let Ok(sd) = m.std_dev() else { continue };
        if sd <= 0.0 {
            continue;
        }
        let mean = m.mean();
        standardized.push(
            data.iter()
                .map(|&v| if v.is_finite() { (v - mean) / sd } else { 0.0 })
                .collect(),
        );
        columns.push(col);
    }
    let k = columns.len();
    let n_rows = table.n_rows().max(1) as f64;
    let mut corr = vec![vec![0.0; k]; k];
    for i in 0..k {
        for j in i..k {
            let dot: f64 = standardized[i]
                .iter()
                .zip(&standardized[j])
                .map(|(a, b)| a * b)
                .sum();
            let c = dot / (n_rows - 1.0).max(1.0);
            corr[i][j] = c;
            corr[j][i] = c;
        }
    }
    let (eigenvalues, components) = jacobi_eigen(&corr);
    Pca {
        eigenvalues,
        components,
        columns,
    }
}

impl Pca {
    /// Fraction of total variance explained by the first `k` components.
    pub fn explained_variance(&self, k: usize) -> f64 {
        let total: f64 = self.eigenvalues.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.eigenvalues.iter().take(k).sum::<f64>() / total
    }

    /// The `top` table columns with the largest absolute loadings on
    /// component `k` — PCA's (selection-blind) notion of a "view".
    pub fn top_loading_columns(&self, k: usize, top: usize) -> Vec<usize> {
        let Some(comp) = self.components.get(k) else {
            return Vec::new();
        };
        let mut idx: Vec<usize> = (0..comp.len()).collect();
        idx.sort_by(|&a, &b| comp[b].abs().partial_cmp(&comp[a].abs()).expect("finite"));
        let mut out: Vec<usize> = idx.into_iter().take(top).map(|i| self.columns[i]).collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::TableBuilder;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn jacobi_diagonal_matrix() {
        let m = vec![vec![3.0, 0.0], vec![0.0, 1.0]];
        let (vals, vecs) = jacobi_eigen(&m);
        close(vals[0], 3.0, 1e-12);
        close(vals[1], 1.0, 1e-12);
        close(vecs[0][0].abs(), 1.0, 1e-12);
    }

    #[test]
    fn jacobi_known_2x2() {
        // [[2, 1], [1, 2]] has eigenvalues 3 and 1.
        let m = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let (vals, vecs) = jacobi_eigen(&m);
        close(vals[0], 3.0, 1e-10);
        close(vals[1], 1.0, 1e-10);
        // First eigenvector ∝ (1, 1)/√2.
        close(vecs[0][0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8);
        close(vecs[0][1].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-8);
    }

    #[test]
    fn jacobi_reconstruction() {
        let m = vec![
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 0.2],
            vec![0.5, 0.2, 2.0],
        ];
        let (vals, vecs) = jacobi_eigen(&m);
        // Σ λ_k v_k v_kᵀ reconstructs the matrix.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += vals[k] * vecs[k][i] * vecs[k][j];
                }
                close(s, m[i][j], 1e-8);
            }
        }
        // Trace preserved.
        close(vals.iter().sum::<f64>(), 9.0, 1e-9);
    }

    fn correlated_table() -> Table {
        let n = 300usize;
        let mut b = TableBuilder::new();
        b.add_numeric("x", (0..n).map(|i| (i as f64 * 0.21).sin() * 5.0).collect());
        b.add_numeric(
            "y",
            (0..n)
                .map(|i| (i as f64 * 0.21).sin() * 10.0 + ((i * 13) % 5) as f64 * 0.01)
                .collect(),
        );
        b.add_numeric("z", (0..n).map(|i| ((i * 7919) % 97) as f64).collect());
        b.add_categorical("c", (0..n).map(|_| Some("k")).collect());
        b.build().unwrap()
    }

    #[test]
    fn pca_finds_correlated_block() {
        let t = correlated_table();
        let p = pca(&t);
        assert_eq!(p.columns.len(), 3);
        // x and y are nearly collinear → first component ≈ 2 of the 3
        // units of standardized variance.
        assert!(p.eigenvalues[0] > 1.8, "{:?}", p.eigenvalues);
        let top = p.top_loading_columns(0, 2);
        assert_eq!(top, vec![0, 1]);
    }

    #[test]
    fn explained_variance_monotone_and_bounded() {
        let t = correlated_table();
        let p = pca(&t);
        let e1 = p.explained_variance(1);
        let e2 = p.explained_variance(2);
        let e3 = p.explained_variance(3);
        assert!(e1 <= e2 && e2 <= e3);
        close(e3, 1.0, 1e-9);
    }

    #[test]
    fn pca_skips_constant_columns() {
        let mut b = TableBuilder::new();
        b.add_numeric("flat", vec![1.0; 50]);
        b.add_numeric("live", (0..50).map(|i| i as f64).collect());
        let t = b.build().unwrap();
        let p = pca(&t);
        assert_eq!(p.columns, vec![1]);
    }
}
