//! Kullback–Leibler subspace scoring — the archetypal "black box"
//! divergence the paper contrasts with the Zig-Dissimilarity: it says how
//! much the selection differs, but not why.

use ziggy_stats::{Histogram, PairMoments, UniMoments};
use ziggy_store::{masked_pair, masked_uni, Bitmask, StatsCache, Table};

use crate::{rank_and_select_disjoint, BaselineView};

/// Closed-form KL divergence between two univariate Gaussians fitted to
/// the moment sketches: `KL(N_in ‖ N_out)`.
pub fn gaussian_kl_1d(inside: &UniMoments, outside: &UniMoments) -> Option<f64> {
    if inside.count() < 2 || outside.count() < 2 {
        return None;
    }
    let vi = inside.variance().ok()?;
    let vo = outside.variance().ok()?;
    if vi <= 0.0 || vo <= 0.0 {
        return None;
    }
    let dm = inside.mean() - outside.mean();
    Some(0.5 * ((vo / vi).ln() + (vi + dm * dm) / vo - 1.0).max(0.0))
}

/// Closed-form KL divergence between two bivariate Gaussians fitted to
/// the pair sketches.
pub fn gaussian_kl_2d(inside: &PairMoments, outside: &PairMoments) -> Option<f64> {
    if inside.count() < 3 || outside.count() < 3 {
        return None;
    }
    // Covariance matrices [[a, c], [c, b]].
    let cov = |m: &PairMoments| -> Option<(f64, f64, f64)> {
        let a = m.x_moments().variance().ok()?;
        let b = m.y_moments().variance().ok()?;
        let c = m.covariance().ok()?;
        Some((a, b, c))
    };
    let (a1, b1, c1) = cov(inside)?;
    let (a0, b0, c0) = cov(outside)?;
    let det1 = a1 * b1 - c1 * c1;
    let det0 = a0 * b0 - c0 * c0;
    if det1 <= 0.0 || det0 <= 0.0 {
        return None;
    }
    // Σ0⁻¹ = 1/det0 · [[b0, −c0], [−c0, a0]].
    let inv = (b0 / det0, a0 / det0, -c0 / det0);
    // tr(Σ0⁻¹ Σ1).
    let trace = inv.0 * a1 + 2.0 * inv.2 * c1 + inv.1 * b1;
    let dx = inside.mean_x() - outside.mean_x();
    let dy = inside.mean_y() - outside.mean_y();
    // Mahalanobis term dᵀ Σ0⁻¹ d.
    let maha = inv.0 * dx * dx + 2.0 * inv.2 * dx * dy + inv.1 * dy * dy;
    Some(0.5 * (trace + maha - 2.0 + (det0 / det1).ln()).max(0.0))
}

/// Histogram-based (non-parametric) KL with add-half smoothing, sharing
/// the bucket grid between the two sides.
pub fn histogram_kl(inside: &[f64], outside: &[f64], bins: usize) -> Option<f64> {
    let all: Vec<f64> = inside.iter().chain(outside).copied().collect();
    let range = Histogram::from_data(&all, bins).ok()?;
    let mut hi = Histogram::new(range.lo(), range.hi(), bins).ok()?;
    let mut ho = Histogram::new(range.lo(), range.hi(), bins).ok()?;
    for &v in inside {
        hi.push(v);
    }
    for &v in outside {
        ho.push(v);
    }
    if hi.total() == 0 || ho.total() == 0 {
        return None;
    }
    let smooth = |h: &Histogram| -> Vec<f64> {
        let n = h.total() as f64 + 0.5 * h.bins() as f64;
        h.counts().iter().map(|&c| (c as f64 + 0.5) / n).collect()
    };
    let pi = smooth(&hi);
    let po = smooth(&ho);
    Some(
        pi.iter()
            .zip(&po)
            .map(|(&p, &q)| if p > 0.0 { p * (p / q).ln() } else { 0.0 })
            .sum::<f64>()
            .max(0.0),
    )
}

/// KL-based subspace search: scores every numeric column (1D) and — when
/// `pairwise` — every numeric pair (2D) with Gaussian KL, then returns
/// the top disjoint views. No tightness constraint, no explanations: the
/// black-box straw man.
pub fn kl_search(
    table: &Table,
    cache: &StatsCache,
    mask: &Bitmask,
    max_views: usize,
    pairwise: bool,
) -> Vec<BaselineView> {
    let numeric = table.numeric_indices();
    let mut views = Vec::new();
    let mut inside_uni = std::collections::HashMap::new();
    for &col in &numeric {
        let Ok(inside) = masked_uni(table, col, mask) else {
            continue;
        };
        let Ok(outside) = cache.uni_complement(col, &inside) else {
            continue;
        };
        if let Some(kl) = gaussian_kl_1d(&inside, &outside) {
            views.push(BaselineView {
                columns: vec![col],
                score: kl,
            });
        }
        inside_uni.insert(col, inside);
    }
    if pairwise {
        for (i, &a) in numeric.iter().enumerate() {
            for &b in &numeric[i + 1..] {
                let Ok(inside) = masked_pair(table, a, b, mask) else {
                    continue;
                };
                let Ok(outside) = cache.pair_complement(a, b, &inside) else {
                    continue;
                };
                if let Some(kl) = gaussian_kl_2d(&inside, &outside) {
                    views.push(BaselineView {
                        columns: vec![a, b],
                        score: kl,
                    });
                }
            }
        }
    }
    rank_and_select_disjoint(views, max_views)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_store::{eval::select, TableBuilder};

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    fn kl_1d_identical_is_zero() {
        let m = UniMoments::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        close(gaussian_kl_1d(&m, &m).unwrap(), 0.0, 1e-12);
    }

    #[test]
    fn kl_1d_known_value() {
        // N(1, 1) vs N(0, 1): KL = μ²/2 = 0.5. Build samples with unit
        // sample variance and the right means.
        let a = UniMoments::from_slice(&[0.0, 2.0]); // mean 1, var 2 → not unit.
        let b = UniMoments::from_slice(&[-1.0, 1.0]); // mean 0, var 2.
                                                      // Same variance cancels the log/trace terms: KL = dm²/(2σ²) = 1/4.
        close(gaussian_kl_1d(&a, &b).unwrap(), 0.25, 1e-12);
    }

    #[test]
    fn kl_1d_degenerate_none() {
        let c = UniMoments::from_slice(&[5.0, 5.0, 5.0]);
        let v = UniMoments::from_slice(&[1.0, 2.0, 3.0]);
        assert!(gaussian_kl_1d(&c, &v).is_none());
        assert!(gaussian_kl_1d(&v, &UniMoments::from_slice(&[1.0])).is_none());
    }

    #[test]
    fn kl_2d_identical_is_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 7.0];
        let ys = [2.0, 1.0, 4.0, 3.0, 6.0];
        let m = PairMoments::from_slices(&xs, &ys).unwrap();
        close(gaussian_kl_2d(&m, &m).unwrap(), 0.0, 1e-10);
    }

    #[test]
    fn kl_2d_grows_with_mean_shift() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        let base = PairMoments::from_slices(&xs, &ys).unwrap();
        let shifted_small: Vec<f64> = xs.iter().map(|x| x + 1.0).collect();
        let shifted_big: Vec<f64> = xs.iter().map(|x| x + 5.0).collect();
        let m_small = PairMoments::from_slices(&shifted_small, &ys).unwrap();
        let m_big = PairMoments::from_slices(&shifted_big, &ys).unwrap();
        let kl_small = gaussian_kl_2d(&m_small, &base).unwrap();
        let kl_big = gaussian_kl_2d(&m_big, &base).unwrap();
        assert!(kl_big > kl_small);
        assert!(kl_small > 0.0);
    }

    #[test]
    fn histogram_kl_behaviour() {
        let a: Vec<f64> = (0..500).map(|i| (i % 100) as f64).collect();
        let same = histogram_kl(&a, &a, 10).unwrap();
        close(same, 0.0, 1e-9);
        let b: Vec<f64> = (0..500).map(|i| (i % 100) as f64 + 200.0).collect();
        let diff = histogram_kl(&a, &b, 10).unwrap();
        assert!(
            diff > 1.0,
            "disjoint supports must give large KL, got {diff}"
        );
    }

    #[test]
    fn kl_search_finds_planted_column() {
        let n = 500usize;
        let mut b = TableBuilder::new();
        b.add_numeric("key", (0..n).map(|i| i as f64).collect());
        b.add_numeric(
            "planted",
            (0..n)
                .map(|i| if i >= 400 { 30.0 } else { 0.0 } + ((i * 13) % 7) as f64)
                .collect(),
        );
        b.add_numeric("noise", (0..n).map(|i| ((i * 7919) % 100) as f64).collect());
        let t = b.build().unwrap();
        let cache = StatsCache::new(&t);
        let mask = select(&t, "key >= 400").unwrap();
        let views = kl_search(&t, &cache, &mask, 3, true);
        assert!(!views.is_empty());
        let planted = t.index_of("planted").unwrap();
        assert!(
            views[0].columns.contains(&planted),
            "top KL view {:?} should include the planted column",
            views[0]
        );
    }
}
