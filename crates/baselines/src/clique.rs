//! Clique-based candidate generation — the alternative the paper names
//! for Ziggy's view-search stage: "it materializes the graph formed by
//! the column's pairwise dependencies, and partitions it with a clique
//! search or clustering algorithm" (§3).
//!
//! Edges connect column pairs with dependence ≥ `MIN_tight`; maximal
//! cliques are then *exactly* the maximal tight column sets (no
//! complete-linkage approximation). The price is worst-case exponential
//! enumeration, bounded here by a clique-count budget.

use ziggy_core::graph::DependencyGraph;

/// Error raised when the clique enumeration exceeds its budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueBudgetExceeded {
    /// The configured budget.
    pub budget: usize,
}

impl std::fmt::Display for CliqueBudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "maximal-clique enumeration exceeded the budget of {}",
            self.budget
        )
    }
}

impl std::error::Error for CliqueBudgetExceeded {}

/// Enumerates maximal cliques of the thresholded dependency graph with
/// Bron–Kerbosch (pivoting). Returns cliques as sorted *table column
/// index* sets (consistent with Ziggy's candidate representation), with
/// isolated vertices included as singleton cliques.
pub fn maximal_cliques(
    graph: &DependencyGraph,
    min_tightness: f64,
    budget: usize,
) -> Result<Vec<Vec<usize>>, CliqueBudgetExceeded> {
    let n = graph.len();
    let adj: Vec<Vec<bool>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| i != j && graph.similarity(i, j) >= min_tightness)
                .collect()
        })
        .collect();

    let mut cliques: Vec<Vec<usize>> = Vec::new();
    let mut r: Vec<usize> = Vec::new();
    let p: Vec<usize> = (0..n).collect();
    let x: Vec<usize> = Vec::new();
    bron_kerbosch(&adj, &mut r, p, x, &mut cliques, budget)?;

    // Map positions → table columns, sort for determinism.
    let mut out: Vec<Vec<usize>> = cliques
        .into_iter()
        .map(|c| {
            let mut cols: Vec<usize> = c.iter().map(|&p| graph.columns()[p]).collect();
            cols.sort_unstable();
            cols
        })
        .collect();
    out.sort();
    out.dedup();
    Ok(out)
}

fn bron_kerbosch(
    adj: &[Vec<bool>],
    r: &mut Vec<usize>,
    p: Vec<usize>,
    x: Vec<usize>,
    out: &mut Vec<Vec<usize>>,
    budget: usize,
) -> Result<(), CliqueBudgetExceeded> {
    if out.len() >= budget {
        return Err(CliqueBudgetExceeded { budget });
    }
    if p.is_empty() && x.is_empty() {
        out.push(r.clone());
        return Ok(());
    }
    // Pivot: vertex of P ∪ X with most neighbours in P.
    let pivot = p
        .iter()
        .chain(&x)
        .copied()
        .max_by_key(|&u| p.iter().filter(|&&v| adj[u][v]).count())
        .expect("P ∪ X non-empty");
    let candidates: Vec<usize> = p.iter().copied().filter(|&v| !adj[pivot][v]).collect();
    let mut p = p;
    let mut x = x;
    for v in candidates {
        r.push(v);
        let p_next: Vec<usize> = p.iter().copied().filter(|&w| adj[v][w]).collect();
        let x_next: Vec<usize> = x.iter().copied().filter(|&w| adj[v][w]).collect();
        bron_kerbosch(adj, r, p_next, x_next, out, budget)?;
        r.pop();
        p.retain(|&w| w != v);
        x.push(v);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziggy_core::config::DependenceKind;
    use ziggy_store::{StatsCache, Table, TableBuilder};

    /// Columns 0-2 mutually dependent, 3-4 dependent, 5 isolated.
    fn blocky() -> Table {
        let n = 400usize;
        let sig_a: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin() * 10.0).collect();
        let sig_b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.31).cos() * 10.0).collect();
        let noise = |i: usize, k: usize| ((i * (17 + k * 13)) % 11) as f64 * 0.05;
        let mut b = TableBuilder::new();
        b.add_numeric(
            "a0",
            sig_a
                .iter()
                .enumerate()
                .map(|(i, v)| v + noise(i, 0))
                .collect(),
        );
        b.add_numeric(
            "a1",
            sig_a
                .iter()
                .enumerate()
                .map(|(i, v)| v * 2.0 + noise(i, 1))
                .collect(),
        );
        b.add_numeric(
            "a2",
            sig_a
                .iter()
                .enumerate()
                .map(|(i, v)| -v + noise(i, 2))
                .collect(),
        );
        b.add_numeric(
            "b0",
            sig_b
                .iter()
                .enumerate()
                .map(|(i, v)| v + noise(i, 3))
                .collect(),
        );
        b.add_numeric(
            "b1",
            sig_b
                .iter()
                .enumerate()
                .map(|(i, v)| v * 1.4 + noise(i, 4))
                .collect(),
        );
        b.add_numeric("lone", (0..n).map(|i| ((i * 7919) % 89) as f64).collect());
        b.build().unwrap()
    }

    fn graph(t: &Table) -> DependencyGraph {
        let cache = StatsCache::new(t);
        DependencyGraph::build(&cache, (0..6).collect(), DependenceKind::Pearson, 8).unwrap()
    }

    #[test]
    fn cliques_match_blocks() {
        let t = blocky();
        let g = graph(&t);
        let cliques = maximal_cliques(&g, 0.5, 10_000).unwrap();
        assert!(cliques.contains(&vec![0, 1, 2]), "{cliques:?}");
        assert!(cliques.contains(&vec![3, 4]), "{cliques:?}");
        assert!(cliques.contains(&vec![5]), "{cliques:?}");
    }

    #[test]
    fn cliques_are_tight() {
        let t = blocky();
        let g = graph(&t);
        for clique in maximal_cliques(&g, 0.6, 10_000).unwrap() {
            let positions: Vec<usize> = clique
                .iter()
                .map(|c| g.columns().iter().position(|x| x == c).unwrap())
                .collect();
            assert!(
                g.tightness(&positions) >= 0.6 - 1e-9,
                "clique {clique:?} not tight"
            );
        }
    }

    #[test]
    fn threshold_one_gives_singletons() {
        let t = blocky();
        let g = graph(&t);
        let cliques = maximal_cliques(&g, 1.01, 10_000).unwrap();
        assert_eq!(cliques.len(), 6);
        assert!(cliques.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn budget_guard() {
        let t = blocky();
        let g = graph(&t);
        // Budget 0 trips immediately on any enumeration effort.
        assert!(maximal_cliques(&g, 0.0, 0).is_err());
    }

    #[test]
    fn cliques_feed_ziggy_search() {
        // The paper's "clique search" variant: candidates from cliques,
        // scored and selected by the normal Ziggy machinery.
        use ziggy_core::config::ZiggyConfig;
        use ziggy_core::prepare::prepare;
        use ziggy_core::search::search;
        use ziggy_store::eval::select;

        let t = blocky();
        let g = graph(&t);
        let cache = StatsCache::new(&t);
        let mask = select(&t, "a0 >= 0").unwrap();
        let prepared = prepare(
            &cache,
            &mask,
            &(0..6).collect::<Vec<_>>(),
            &ZiggyConfig::default(),
        )
        .unwrap();
        let cliques = maximal_cliques(&g, 0.5, 10_000).unwrap();
        let views = search(&cliques, &prepared, &ZiggyConfig::default());
        assert!(!views.is_empty());
        // Disjointness still enforced downstream.
        let mut seen = Vec::new();
        for v in &views {
            for c in &v.columns {
                assert!(!seen.contains(c));
                seen.push(*c);
            }
        }
    }
}
