//! Cholesky factorization — used to impose explicit correlation matrices
//! on generated column blocks.

/// Errors from the factorization.
#[derive(Debug, Clone, PartialEq)]
pub enum CholeskyError {
    /// The input was not square.
    NotSquare,
    /// The matrix is not (numerically) positive definite.
    NotPositiveDefinite {
        /// Pivot index where the failure occurred.
        pivot: usize,
    },
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "matrix is not square"),
            CholeskyError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (pivot {pivot})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Computes the lower-triangular Cholesky factor `L` with `L·Lᵀ = A`.
/// `A` is given row-major; only the lower triangle is read.
#[allow(clippy::needless_range_loop)] // index symmetry mirrors the textbook formulation
pub fn cholesky(a: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CholeskyError> {
    let n = a.len();
    if a.iter().any(|row| row.len() != n) {
        return Err(CholeskyError::NotSquare);
    }
    let mut l = vec![vec![0.0; n]; n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }

            if i == j {
                if sum <= 0.0 {
                    return Err(CholeskyError::NotPositiveDefinite { pivot: i });
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    Ok(l)
}

/// Builds an equicorrelation matrix (`1` on the diagonal, `rho` off it).
/// Positive definite for `rho ∈ (−1/(n−1), 1)`.
pub fn equicorrelation(n: usize, rho: f64) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { rho }).collect())
        .collect()
}

/// Applies the factor to a vector of iid standard normals, producing a
/// vector with covariance `A`.
pub fn correlate(l: &[Vec<f64>], z: &[f64]) -> Vec<f64> {
    let n = l.len();
    (0..n)
        .map(|i| (0..=i).map(|k| l[i][k] * z[k]).sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() <= tol, "{a} vs {b}");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn identity_factorizes_to_identity() {
        let id = equicorrelation(3, 0.0);
        let l = cholesky(&id).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                close(l[i][j], if i == j { 1.0 } else { 0.0 }, 1e-12);
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn reconstruction() {
        let a = vec![
            vec![4.0, 2.0, 0.6],
            vec![2.0, 5.0, 1.0],
            vec![0.6, 1.0, 3.0],
        ];
        let l = cholesky(&a).unwrap();
        // L·Lᵀ = A.
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[i][k] * l[j][k];
                }
                close(s, a[i][j], 1e-10);
            }
        }
        // Lower triangular.
        assert_eq!(l[0][1], 0.0);
        assert_eq!(l[0][2], 0.0);
        assert_eq!(l[1][2], 0.0);
    }

    #[test]
    fn rejects_non_spd_and_non_square() {
        let not_spd = vec![vec![1.0, 2.0], vec![2.0, 1.0]]; // eigenvalue −1.
        assert!(matches!(
            cholesky(&not_spd),
            Err(CholeskyError::NotPositiveDefinite { .. })
        ));
        let ragged = vec![vec![1.0, 0.0], vec![0.0]];
        assert_eq!(cholesky(&ragged), Err(CholeskyError::NotSquare));
    }

    #[test]
    fn equicorrelation_bounds() {
        // rho = 0.9 with n = 4 is PD; rho = −0.5 with n = 4 is not
        // (−1/(n−1) = −1/3).
        assert!(cholesky(&equicorrelation(4, 0.9)).is_ok());
        assert!(cholesky(&equicorrelation(4, -0.5)).is_err());
    }

    #[test]
    fn correlate_produces_target_correlation() {
        use crate::rng::SynthRng;
        let rho = 0.8;
        let l = cholesky(&equicorrelation(2, rho)).unwrap();
        let mut rng = SynthRng::seed_from_u64(11);
        let n = 20_000;
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let z = [rng.standard_normal(), rng.standard_normal()];
            let v = correlate(&l, &z);
            xs.push(v[0]);
            ys.push(v[1]);
        }
        let r = ziggy_stats::pearson(&xs, &ys).unwrap();
        close(r, rho, 0.02);
    }
}
