#![warn(missing_docs)]

//! Synthetic dataset twins with planted characteristic views.
//!
//! The demo's real datasets (Box Office, UCI Communities-and-Crime, OECD
//! Countries & Innovation) are not redistributable, so this crate builds
//! *statistical twins*: tables with the papers' shapes (900×12, 1994×128,
//! 6823×519), realistic column names, correlated column groups, and —
//! crucially — *planted* characteristic views whose ground truth is known,
//! making recovery quality measurable (something the real data would not
//! even permit).
//!
//! * [`rng`] — seeded normal/uniform sampling (Box–Muller on `rand`).
//! * [`cholesky`] — Cholesky factorization for explicit correlation
//!   structures.
//! * [`spec`] — declarative dataset specifications (themes, plants,
//!   categoricals).
//! * [`mod@generate`] — spec → [`ziggy_store::Table`] + ground truth.
//! * [`datasets`] — the three paper twins plus parametric families for
//!   scaling studies.
//! * [`quality`] — precision/recall/F1 of discovered views against the
//!   planted ground truth.

pub mod cholesky;
pub mod datasets;
pub mod generate;
pub mod quality;
pub mod rng;
pub mod spec;

pub use datasets::{box_office, oecd_innovation, scaling_dataset, us_crime};
pub use generate::{generate, SyntheticDataset};
pub use quality::{evaluate_recovery, RecoveryQuality};
pub use spec::{CatSpec, DatasetSpec, PlantedView, ThemeSpec};
