//! Turning a [`DatasetSpec`] into a table plus ground truth.
//!
//! Themes use a one-factor model: column `j` of a theme is
//! `√r · t + √(1−r) · ε_j` (pairwise correlation `r` within the theme),
//! then an affine map to a per-column location/scale. Planted themes
//! additionally transform selection rows in standardized space
//! (`z ← z·scale + mean_shift`), which preserves the theme's internal
//! correlation while shifting location and dispersion — exactly the
//! phenomena Ziggy's mean/dispersion components target.

use ziggy_store::{Table, TableBuilder};

use crate::rng::SynthRng;
use crate::spec::{DatasetSpec, PlantedView};

/// A generated dataset: the table, the selection ground truth, and the
/// planted views.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// The generated table.
    pub table: Table,
    /// Predicate text selecting the planted subpopulation.
    pub predicate: String,
    /// Driver threshold realized by the predicate.
    pub threshold: f64,
    /// Boolean per row: true = inside the planted selection.
    pub selection: Vec<bool>,
    /// Ground-truth planted views.
    pub planted: Vec<PlantedView>,
    /// The spec the dataset was generated from.
    pub spec: DatasetSpec,
}

impl SyntheticDataset {
    /// Number of rows inside the planted selection.
    pub fn n_selected(&self) -> usize {
        self.selection.iter().filter(|&&b| b).count()
    }
}

/// Deterministic per-column location/scale so different columns live on
/// different numeric ranges (like real indicator tables).
fn column_affine(name: &str) -> (f64, f64) {
    let mut h: u64 = 1469598103934665603;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(1099511628211);
    }
    let mu = 10.0 + (h % 1000) as f64 / 5.0; // 10 .. 210
    let sigma = 1.0 + ((h >> 24) % 100) as f64 / 10.0; // 1 .. 11
    (mu, sigma)
}

/// Generates the dataset described by `spec`.
///
/// # Panics
/// Panics when the spec fails validation — specs are developer input, not
/// user input.
pub fn generate(spec: &DatasetSpec) -> SyntheticDataset {
    spec.validate()
        .unwrap_or_else(|e| panic!("invalid dataset spec: {e}"));
    let mut rng = SynthRng::seed_from_u64(spec.seed);
    let n = spec.n_rows;

    // --- Driver column and the selection it defines. --------------------
    let driver_raw: Vec<f64> = (0..n).map(|_| rng.normal(50.0, 20.0)).collect();
    let mut sorted = driver_raw.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let cutoff_idx = ((1.0 - spec.selection_frac) * (n as f64 - 1.0)).round() as usize;
    let threshold = sorted[cutoff_idx.min(n - 1)];
    let selection: Vec<bool> = driver_raw.iter().map(|&v| v >= threshold).collect();

    let mut builder = TableBuilder::new();
    builder.add_numeric(spec.driver.clone(), driver_raw);

    // --- Themes. ---------------------------------------------------------
    let mut planted = Vec::new();
    for theme in &spec.themes {
        // Latent factor per row.
        let latent: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let load = theme.intra_r.sqrt();
        let resid = (1.0 - theme.intra_r).sqrt();
        for col in &theme.columns {
            let (mu, sigma) = column_affine(col);
            let values: Vec<f64> = (0..n)
                .map(|i| {
                    let mut z = load * latent[i] + resid * rng.standard_normal();
                    if theme.is_planted() && selection[i] {
                        z = z * theme.scale + theme.mean_shift;
                    }
                    mu + sigma * z
                })
                .collect();
            builder.add_numeric(col.clone(), values);
        }
        if theme.is_planted() {
            planted.push(PlantedView {
                name: theme.name.clone(),
                columns: theme.columns.clone(),
            });
        }
    }

    // --- Independent noise columns. ---------------------------------------
    for name in &spec.noise_columns {
        let (mu, sigma) = column_affine(name);
        let values: Vec<f64> = (0..n).map(|_| rng.normal(mu, sigma)).collect();
        builder.add_numeric(name.clone(), values);
    }

    // --- Categoricals. -----------------------------------------------------
    for cat in &spec.categoricals {
        let values: Vec<Option<String>> = (0..n)
            .map(|i| {
                let probs = match (&cat.selection_probs, selection[i]) {
                    (Some(sel), true) => sel.as_slice(),
                    _ => cat.base_probs.as_slice(),
                };
                Some(cat.labels[rng.categorical(probs)].clone())
            })
            .collect();
        builder.add_categorical(cat.name.clone(), values);
        if cat.is_planted() {
            planted.push(PlantedView {
                name: cat.name.clone(),
                columns: vec![cat.name.clone()],
            });
        }
    }

    let table = builder.build().expect("spec-validated columns build");
    let predicate = format!("{} >= {}", spec.driver, threshold);
    SyntheticDataset {
        table,
        predicate,
        threshold,
        selection,
        planted,
        spec: spec.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CatSpec, ThemeSpec};
    use ziggy_store::eval::select;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            name: "unit".into(),
            n_rows: 1000,
            driver: "driver".into(),
            selection_frac: 0.2,
            themes: vec![
                ThemeSpec {
                    name: "hot_pair".into(),
                    columns: vec!["hx".into(), "hy".into()],
                    intra_r: 0.8,
                    mean_shift: 2.0,
                    scale: 0.5,
                },
                ThemeSpec {
                    name: "calm_pair".into(),
                    columns: vec!["cx".into(), "cy".into()],
                    intra_r: 0.8,
                    mean_shift: 0.0,
                    scale: 1.0,
                },
            ],
            noise_columns: vec!["n0".into(), "n1".into()],
            categoricals: vec![CatSpec {
                name: "kind".into(),
                labels: vec!["a".into(), "b".into(), "c".into()],
                base_probs: vec![0.5, 0.3, 0.2],
                selection_probs: Some(vec![0.05, 0.05, 0.9]),
            }],
            seed: 1234,
        }
    }

    #[test]
    fn shape_and_ground_truth() {
        let spec = small_spec();
        let d = generate(&spec);
        assert_eq!(d.table.n_rows(), 1000);
        assert_eq!(d.table.n_cols(), spec.n_cols());
        assert_eq!(d.planted.len(), 2); // hot_pair + kind.
        let frac = d.n_selected() as f64 / 1000.0;
        assert!((frac - 0.2).abs() < 0.02, "selectivity {frac}");
    }

    #[test]
    fn predicate_reproduces_selection() {
        let d = generate(&small_spec());
        let mask = select(&d.table, &d.predicate).unwrap();
        let from_mask: Vec<bool> = (0..d.table.n_rows()).map(|i| mask.get(i)).collect();
        assert_eq!(from_mask, d.selection);
    }

    #[test]
    fn planted_theme_is_shifted_and_tightened() {
        let d = generate(&small_spec());
        let hx = d.table.index_of("hx").unwrap();
        let data = d.table.numeric(hx).unwrap();
        let inside: Vec<f64> = data
            .iter()
            .zip(&d.selection)
            .filter(|(_, &s)| s)
            .map(|(&v, _)| v)
            .collect();
        let outside: Vec<f64> = data
            .iter()
            .zip(&d.selection)
            .filter(|(_, &s)| !s)
            .map(|(&v, _)| v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let sd = |v: &[f64]| {
            let m = mean(v);
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() as f64 - 1.0)).sqrt()
        };
        // Mean shift of 2 standardized units.
        assert!(
            (mean(&inside) - mean(&outside)) / sd(&outside) > 1.2,
            "planted shift not realized"
        );
        // Dispersion scaled by 0.5.
        assert!(
            sd(&inside) < 0.8 * sd(&outside),
            "planted scale not realized"
        );
    }

    #[test]
    fn unplanted_theme_is_stable() {
        let d = generate(&small_spec());
        let cx = d.table.index_of("cx").unwrap();
        let data = d.table.numeric(cx).unwrap();
        let inside: Vec<f64> = data
            .iter()
            .zip(&d.selection)
            .filter(|(_, &s)| s)
            .map(|(&v, _)| v)
            .collect();
        let outside: Vec<f64> = data
            .iter()
            .zip(&d.selection)
            .filter(|(_, &s)| !s)
            .map(|(&v, _)| v)
            .collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let sd_out = {
            let m = mean(&outside);
            (outside.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (outside.len() as f64 - 1.0))
                .sqrt()
        };
        assert!(
            ((mean(&inside) - mean(&outside)) / sd_out).abs() < 0.3,
            "unplanted theme drifted"
        );
    }

    #[test]
    fn theme_internal_correlation_realized() {
        let d = generate(&small_spec());
        let hx = d.table.numeric(d.table.index_of("hx").unwrap()).unwrap();
        let hy = d.table.numeric(d.table.index_of("hy").unwrap()).unwrap();
        let r = ziggy_stats::pearson(hx, hy).unwrap();
        assert!(r > 0.6, "theme correlation too weak: {r}");
        let n0 = d.table.numeric(d.table.index_of("n0").unwrap()).unwrap();
        let r_noise = ziggy_stats::pearson(hx, n0).unwrap();
        assert!(r_noise.abs() < 0.2, "noise column correlated: {r_noise}");
    }

    #[test]
    fn planted_categorical_mix_changes() {
        let d = generate(&small_spec());
        let col = d.table.index_of("kind").unwrap();
        let (codes, labels) = d.table.categorical(col).unwrap();
        let c_code = labels.iter().position(|l| l == "c").unwrap() as u32;
        let inside_c = codes
            .iter()
            .zip(&d.selection)
            .filter(|(_, &s)| s)
            .filter(|(&c, _)| c == c_code)
            .count() as f64
            / d.n_selected() as f64;
        assert!(
            inside_c > 0.8,
            "planted category mix not realized: {inside_c}"
        );
    }

    #[test]
    fn determinism_by_seed() {
        let a = generate(&small_spec());
        let b = generate(&small_spec());
        assert_eq!(
            a.table.numeric(1).unwrap(),
            b.table.numeric(1).unwrap(),
            "same seed must reproduce identical data"
        );
        let mut other = small_spec();
        other.seed = 999;
        let c = generate(&other);
        assert_ne!(a.table.numeric(1).unwrap(), c.table.numeric(1).unwrap());
    }

    #[test]
    #[should_panic(expected = "invalid dataset spec")]
    fn invalid_spec_panics() {
        let mut bad = small_spec();
        bad.n_rows = 2;
        generate(&bad);
    }
}
