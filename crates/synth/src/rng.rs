//! Seeded random sampling helpers (the sanctioned `rand` crate provides
//! uniform bits; normal deviates come from our own Box–Muller transform).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A seeded generator with the distributions the synthesizer needs.
pub struct SynthRng {
    rng: StdRng,
    /// Spare normal deviate from the last Box–Muller pair.
    spare: Option<f64>,
}

impl SynthRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            spare: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.rng.random::<f64>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Standard normal deviate via Box–Muller (polar-free, two uniforms).
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Guard against ln(0).
        let u1 = self.uniform().max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Samples a category index from a probability vector (assumed to sum
    /// to ~1; the last index absorbs rounding).
    pub fn categorical(&mut self, probs: &[f64]) -> usize {
        let u = self.uniform();
        let mut acc = 0.0;
        for (i, &p) in probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i;
            }
        }
        probs.len().saturating_sub(1)
    }

    /// Bernoulli draw.
    pub fn flip(&mut self, p: f64) -> bool {
        self.uniform() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = SynthRng::seed_from_u64(7);
        let mut b = SynthRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SynthRng::seed_from_u64(1);
        let mut b = SynthRng::seed_from_u64(2);
        let va: Vec<f64> = (0..10).map(|_| a.uniform()).collect();
        let vb: Vec<f64> = (0..10).map(|_| b.uniform()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = SynthRng::seed_from_u64(42);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| r.standard_normal()).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n as f64 - 1.0);
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn normal_location_scale() {
        let mut r = SynthRng::seed_from_u64(9);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.normal(10.0, 3.0)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1);
    }

    #[test]
    fn categorical_respects_probabilities() {
        let mut r = SynthRng::seed_from_u64(3);
        let probs = [0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.categorical(&probs)] += 1;
        }
        assert!((counts[0] as f64 / 10_000.0 - 0.7).abs() < 0.03);
        assert!((counts[2] as f64 / 10_000.0 - 0.1).abs() < 0.02);
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SynthRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.uniform_in(-3.0, 7.0);
            assert!((-3.0..7.0).contains(&v));
        }
    }
}
