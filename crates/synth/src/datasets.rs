//! The three paper twins (§4.2) plus a parametric family for scaling
//! studies.
//!
//! | Twin | Paper shape | Planted ground truth |
//! |---|---|---|
//! | [`box_office`] | 900 × 12 | production spend + reception scores |
//! | [`us_crime`] | 1994 × 128 | the four Figure-1 themes + the "boarded windows" surprise predictor |
//! | [`oecd_innovation`] | 6823 × 519 | six innovation-indicator themes |

use crate::generate::{generate, SyntheticDataset};
use crate::spec::{CatSpec, DatasetSpec, ThemeSpec};

fn theme(name: &str, columns: &[&str], intra_r: f64, shift: f64, scale: f64) -> ThemeSpec {
    ThemeSpec {
        name: name.into(),
        columns: columns.iter().map(|s| s.to_string()).collect(),
        intra_r,
        mean_shift: shift,
        scale,
    }
}

/// Hollywood movies twin: 900 rows × 12 columns. The selection —
/// top-grossing movies — has high production budgets/marketing and high
/// reception scores, with genre skewed toward action.
pub fn box_office(seed: u64) -> SyntheticDataset {
    let spec = DatasetSpec {
        name: "box_office".into(),
        n_rows: 900,
        driver: "gross_revenue".into(),
        selection_frac: 0.15,
        themes: vec![
            theme("production", &["budget", "marketing_spend"], 0.75, 1.6, 0.8),
            theme(
                "reception",
                &["critic_score", "audience_score"],
                0.7,
                1.1,
                0.9,
            ),
            theme(
                "exposure",
                &["opening_theaters", "trailer_views"],
                0.65,
                0.0,
                1.0,
            ),
        ],
        noise_columns: vec![
            "runtime_minutes".into(),
            "release_week".into(),
            "sequel_rank".into(),
        ],
        categoricals: vec![
            CatSpec {
                name: "genre".into(),
                labels: vec![
                    "action".into(),
                    "drama".into(),
                    "comedy".into(),
                    "horror".into(),
                ],
                base_probs: vec![0.25, 0.35, 0.25, 0.15],
                selection_probs: Some(vec![0.6, 0.1, 0.25, 0.05]),
            },
            CatSpec {
                name: "studio".into(),
                labels: vec!["major".into(), "indie".into()],
                base_probs: vec![0.5, 0.5],
                selection_probs: None,
            },
        ],
        seed,
    };
    generate(&spec)
}

/// US Crime twin: 1994 rows × 128 columns, mirroring the UCI
/// Communities-and-Crime shape. The selection — cities with the highest
/// violent-crime index — realizes the paper's Figure 1:
///
/// * high population size and density (`urban_scale`),
/// * low college education and salaries (`education`),
/// * low rents and home ownership (`housing`),
/// * young populations with many mono-parental families (`youth`),
///
/// plus the §4.2 surprise predictor: the share of boarded-up windows.
pub fn us_crime(seed: u64) -> SyntheticDataset {
    let mut themes = vec![
        theme(
            "urban_scale",
            &["population_size", "population_density"],
            0.8,
            1.8,
            0.6,
        ),
        theme(
            "education",
            &["pct_college_educated", "average_salary"],
            0.75,
            -1.5,
            0.8,
        ),
        theme(
            "housing",
            &["average_rent", "pct_home_owners"],
            0.7,
            -1.4,
            0.8,
        ),
        theme(
            "youth",
            &["pct_under_25", "pct_monoparental_families"],
            0.7,
            1.6,
            0.8,
        ),
        theme("blight", &["pct_boarded_windows"], 0.9, 2.2, 0.7),
    ];
    // 26 unplanted socio-economic filler groups of 4 columns each.
    let stems = [
        "employment",
        "income",
        "poverty",
        "welfare",
        "immigration",
        "language",
        "households",
        "age_structure",
        "commute",
        "labor_force",
        "occupation",
        "industry",
        "rent_burden",
        "vacancy",
        "migration",
        "family_size",
        "veterans",
        "disability",
        "insurance",
        "transport",
        "density_land",
        "housing_age",
        "tax_base",
        "schooling",
        "recreation",
        "health",
    ];
    for (g, stem) in stems.iter().enumerate() {
        let cols: Vec<String> = (0..4).map(|k| format!("{stem}_ind_{k}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        themes.push(theme(
            &format!("filler_{stem}"),
            &col_refs,
            0.55 + 0.3 * ((g % 5) as f64 / 5.0),
            0.0,
            1.0,
        ));
    }
    let noise: Vec<String> = (0..12).map(|k| format!("misc_indicator_{k}")).collect();
    let spec = DatasetSpec {
        name: "us_crime".into(),
        n_rows: 1994,
        driver: "violent_crime_rate".into(),
        selection_frac: 0.1,
        themes,
        noise_columns: noise,
        categoricals: vec![
            CatSpec {
                name: "community_type".into(),
                labels: vec!["urban".into(), "suburban".into(), "rural".into()],
                base_probs: vec![0.3, 0.4, 0.3],
                selection_probs: Some(vec![0.75, 0.2, 0.05]),
            },
            CatSpec {
                name: "census_region".into(),
                labels: vec![
                    "northeast".into(),
                    "midwest".into(),
                    "south".into(),
                    "west".into(),
                ],
                base_probs: vec![0.2, 0.25, 0.35, 0.2],
                selection_probs: None,
            },
        ],
        seed,
    };
    let d = generate(&spec);
    debug_assert_eq!(d.table.n_cols(), 128);
    d
}

/// OECD Countries & Innovation twin: 6823 rows × 519 columns. The
/// selection — regions with the most patent applications — scores high on
/// six innovation-indicator themes.
pub fn oecd_innovation(seed: u64) -> SyntheticDataset {
    let mut themes = vec![
        theme(
            "rnd_spending",
            &[
                "rnd_expenditure_gdp",
                "rnd_business_share",
                "rnd_public_share",
            ],
            0.75,
            1.7,
            0.8,
        ),
        theme(
            "tertiary_education",
            &["tertiary_attainment", "stem_graduates", "phd_density"],
            0.7,
            1.4,
            0.85,
        ),
        theme(
            "researchers",
            &[
                "researchers_per_1000",
                "research_institutions",
                "intl_coauthorship",
            ],
            0.7,
            1.5,
            0.8,
        ),
        theme(
            "digital",
            &["broadband_penetration", "ict_investment", "internet_users"],
            0.65,
            1.2,
            0.9,
        ),
        theme(
            "economy",
            &["gdp_per_capita", "labour_productivity", "capital_formation"],
            0.7,
            1.0,
            0.9,
        ),
        theme(
            "urbanisation",
            &[
                "urban_population_share",
                "metro_gdp_share",
                "population_density_region",
            ],
            0.65,
            0.9,
            0.9,
        ),
    ];
    // 119 unplanted indicator groups of 4 → 476 columns.
    let stems = [
        "trade",
        "energy",
        "environment",
        "health",
        "taxation",
        "employment",
        "migration",
        "tourism",
        "agriculture",
        "transport",
        "finance",
        "construction",
        "manufacturing",
        "services",
        "mining",
        "fisheries",
        "forestry",
        "telecom",
        "retail",
        "wholesale",
        "logistics",
        "insurance",
        "realestate",
        "utilities",
        "water",
        "waste",
        "culture",
        "sport",
        "media",
        "justice",
        "safety",
        "defence",
        "pensions",
    ];
    for g in 0..119 {
        let stem = stems[g % stems.len()];
        let cols: Vec<String> = (0..4)
            .map(|k| format!("{stem}_{:02}_{k}", g / stems.len()))
            .collect();
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        themes.push(theme(
            &format!("filler_{stem}_{g}"),
            &col_refs,
            0.5 + 0.35 * ((g % 7) as f64 / 7.0),
            0.0,
            1.0,
        ));
    }
    // 519 = 1 driver + 18 planted + 476 filler + 3 cats + 21 noise.
    let noise: Vec<String> = (0..21).map(|k| format!("aux_series_{k}")).collect();
    let spec = DatasetSpec {
        name: "oecd_innovation".into(),
        n_rows: 6823,
        driver: "patent_applications_pc".into(),
        selection_frac: 0.1,
        themes,
        noise_columns: noise,
        categoricals: vec![
            CatSpec {
                name: "income_group".into(),
                labels: vec!["high".into(), "upper_middle".into(), "lower_middle".into()],
                base_probs: vec![0.4, 0.35, 0.25],
                selection_probs: Some(vec![0.85, 0.12, 0.03]),
            },
            CatSpec {
                name: "continent".into(),
                labels: vec!["europe".into(), "americas".into(), "asia_pacific".into()],
                base_probs: vec![0.45, 0.25, 0.3],
                selection_probs: None,
            },
            CatSpec {
                name: "reporting_basis".into(),
                labels: vec!["national".into(), "regional".into()],
                base_probs: vec![0.35, 0.65],
                selection_probs: None,
            },
        ],
        seed,
    };
    let d = generate(&spec);
    debug_assert_eq!(d.table.n_cols(), 519);
    d
}

/// Parametric twin for scaling studies: `n_cols` total columns (≥ 8) and
/// `n_rows` rows, with two planted pairs and the rest split between
/// correlated filler groups of 4 and independent noise.
pub fn scaling_dataset(n_rows: usize, n_cols: usize, seed: u64) -> SyntheticDataset {
    assert!(n_cols >= 8, "scaling dataset needs at least 8 columns");
    let mut themes = vec![
        theme("planted_a", &["planted_a0", "planted_a1"], 0.8, 1.8, 0.7),
        theme("planted_b", &["planted_b0", "planted_b1"], 0.75, -1.4, 0.85),
    ];
    // Budget: n_cols − 1 (driver) − 4 (planted) remaining.
    let mut remaining = n_cols - 5;
    let mut g = 0;
    while remaining >= 4 && g < (n_cols / 6) {
        let cols: Vec<String> = (0..4).map(|k| format!("group_{g}_{k}")).collect();
        let col_refs: Vec<&str> = cols.iter().map(|s| s.as_str()).collect();
        themes.push(theme(&format!("filler_{g}"), &col_refs, 0.6, 0.0, 1.0));
        remaining -= 4;
        g += 1;
    }
    let noise: Vec<String> = (0..remaining).map(|k| format!("noise_{k}")).collect();
    let spec = DatasetSpec {
        name: format!("scaling_{n_rows}x{n_cols}"),
        n_rows,
        driver: "driver".into(),
        selection_frac: 0.1,
        themes,
        noise_columns: noise,
        categoricals: vec![],
        seed,
    };
    let d = generate(&spec);
    debug_assert_eq!(d.table.n_cols(), n_cols);
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_office_shape() {
        let d = box_office(1);
        assert_eq!(d.table.n_rows(), 900);
        assert_eq!(d.table.n_cols(), 12);
        assert_eq!(d.planted.len(), 3); // production, reception, genre.
        assert!(d.table.index_of("budget").is_ok());
    }

    #[test]
    fn us_crime_shape_and_figure1_themes() {
        let d = us_crime(1);
        assert_eq!(d.table.n_rows(), 1994);
        assert_eq!(d.table.n_cols(), 128);
        // The four Figure-1 themes + blight + community_type.
        assert_eq!(d.planted.len(), 6);
        for col in [
            "population_size",
            "population_density",
            "pct_college_educated",
            "average_rent",
            "pct_under_25",
            "pct_boarded_windows",
        ] {
            assert!(d.table.index_of(col).is_ok(), "missing {col}");
        }
    }

    #[test]
    fn oecd_shape() {
        let d = oecd_innovation(1);
        assert_eq!(d.table.n_rows(), 6823);
        assert_eq!(d.table.n_cols(), 519);
        assert_eq!(d.planted.len(), 7); // 6 themes + income_group.
    }

    #[test]
    fn scaling_family_counts() {
        for cols in [8, 16, 64, 128] {
            let d = scaling_dataset(500, cols, 3);
            assert_eq!(d.table.n_cols(), cols, "n_cols mismatch for {cols}");
            assert_eq!(d.table.n_rows(), 500);
        }
    }

    #[test]
    fn selection_fraction_approximate() {
        let d = us_crime(2);
        let frac = d.n_selected() as f64 / d.table.n_rows() as f64;
        assert!((frac - 0.1).abs() < 0.02, "selectivity {frac}");
    }
}
