//! Declarative dataset specifications.
//!
//! A dataset is a *driver* column (whose top quantile defines the
//! exploration selection), a set of *themes* (correlated column groups,
//! some of which are *planted*: their distribution changes inside the
//! selection), standalone noise columns, and categorical columns (also
//! optionally planted).

use serde::{Deserialize, Serialize};

/// A correlated group of numeric columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ThemeSpec {
    /// Group name (for ground-truth reporting).
    pub name: String,
    /// Column names (≥ 1).
    pub columns: Vec<String>,
    /// Pairwise latent correlation within the group, in `(0, 1)`.
    pub intra_r: f64,
    /// Standardized mean shift applied to selection rows (0 = not
    /// planted). Positive = the selection sits high on these columns.
    pub mean_shift: f64,
    /// Dispersion multiplier applied to selection rows (1 = unchanged;
    /// < 1 = the selection is tighter).
    pub scale: f64,
}

impl ThemeSpec {
    /// True when the theme's distribution differs inside the selection.
    pub fn is_planted(&self) -> bool {
        self.mean_shift != 0.0 || self.scale != 1.0
    }
}

/// A categorical column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatSpec {
    /// Column name.
    pub name: String,
    /// Category labels.
    pub labels: Vec<String>,
    /// Base (outside-selection) category probabilities.
    pub base_probs: Vec<f64>,
    /// Probabilities inside the selection; `None` = same as base (not
    /// planted).
    pub selection_probs: Option<Vec<f64>>,
}

impl CatSpec {
    /// True when the selection has a different category mix.
    pub fn is_planted(&self) -> bool {
        self.selection_probs.is_some()
    }
}

/// Full dataset specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Dataset name (for reports).
    pub name: String,
    /// Number of rows.
    pub n_rows: usize,
    /// Name of the driver column (always generated, numeric).
    pub driver: String,
    /// Fraction of rows in the selection (top quantile of the driver).
    pub selection_frac: f64,
    /// Correlated numeric groups.
    pub themes: Vec<ThemeSpec>,
    /// Names of independent noise columns.
    pub noise_columns: Vec<String>,
    /// Categorical columns.
    pub categoricals: Vec<CatSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Total number of columns the generated table will have.
    pub fn n_cols(&self) -> usize {
        1 + self.themes.iter().map(|t| t.columns.len()).sum::<usize>()
            + self.noise_columns.len()
            + self.categoricals.len()
    }

    /// Sanity-checks the specification.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_rows < 10 {
            return Err("n_rows must be at least 10".into());
        }
        if !(0.01..=0.9).contains(&self.selection_frac) {
            return Err(format!(
                "selection_frac {} outside [0.01, 0.9]",
                self.selection_frac
            ));
        }
        for t in &self.themes {
            if t.columns.is_empty() {
                return Err(format!("theme {} has no columns", t.name));
            }
            if !(0.0..1.0).contains(&t.intra_r) {
                return Err(format!(
                    "theme {}: intra_r {} outside [0, 1)",
                    t.name, t.intra_r
                ));
            }
            if t.scale <= 0.0 {
                return Err(format!("theme {}: scale must be positive", t.name));
            }
        }
        for c in &self.categoricals {
            if c.labels.len() < 2 {
                return Err(format!("categorical {} needs >= 2 labels", c.name));
            }
            if c.labels.len() != c.base_probs.len() {
                return Err(format!("categorical {}: labels/probs mismatch", c.name));
            }
            let sum: f64 = c.base_probs.iter().sum();
            if (sum - 1.0).abs() > 1e-6 {
                return Err(format!("categorical {}: base probs sum to {sum}", c.name));
            }
            if let Some(sel) = &c.selection_probs {
                if sel.len() != c.labels.len() {
                    return Err(format!("categorical {}: selection probs mismatch", c.name));
                }
                let sum: f64 = sel.iter().sum();
                if (sum - 1.0).abs() > 1e-6 {
                    return Err(format!(
                        "categorical {}: selection probs sum to {sum}",
                        c.name
                    ));
                }
            }
        }
        Ok(())
    }
}

/// One ground-truth planted view: a set of columns whose joint
/// distribution is known to differ inside the selection.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlantedView {
    /// Theme or categorical name.
    pub name: String,
    /// The planted column names.
    pub columns: Vec<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theme(name: &str, cols: &[&str], shift: f64, scale: f64) -> ThemeSpec {
        ThemeSpec {
            name: name.into(),
            columns: cols.iter().map(|s| s.to_string()).collect(),
            intra_r: 0.8,
            mean_shift: shift,
            scale,
        }
    }

    fn spec() -> DatasetSpec {
        DatasetSpec {
            name: "t".into(),
            n_rows: 100,
            driver: "d".into(),
            selection_frac: 0.2,
            themes: vec![
                theme("a", &["x", "y"], 1.5, 0.7),
                theme("b", &["u"], 0.0, 1.0),
            ],
            noise_columns: vec!["n1".into()],
            categoricals: vec![CatSpec {
                name: "c".into(),
                labels: vec!["p".into(), "q".into()],
                base_probs: vec![0.5, 0.5],
                selection_probs: Some(vec![0.9, 0.1]),
            }],
            seed: 1,
        }
    }

    #[test]
    fn planted_flags() {
        let s = spec();
        assert!(s.themes[0].is_planted());
        assert!(!s.themes[1].is_planted());
        assert!(s.categoricals[0].is_planted());
    }

    #[test]
    fn column_count() {
        assert_eq!(spec().n_cols(), 1 + 3 + 1 + 1);
    }

    #[test]
    fn validation_catches_mistakes() {
        assert!(spec().validate().is_ok());
        let mut bad = spec();
        bad.n_rows = 5;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.selection_frac = 0.95;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.themes[0].intra_r = 1.0;
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.categoricals[0].base_probs = vec![0.5, 0.6];
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.categoricals[0].selection_probs = Some(vec![1.0]);
        assert!(bad.validate().is_err());
        let mut bad = spec();
        bad.themes[0].scale = 0.0;
        assert!(bad.validate().is_err());
    }
}
