//! Recovery quality: how well a set of discovered views matches the
//! planted ground truth. Used by the quality tables (experiment T1) and
//! by the integration tests.

use std::collections::HashSet;

use serde::{Deserialize, Serialize};

use crate::spec::PlantedView;

/// Precision/recall of view discovery against planted ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryQuality {
    /// Fraction of discovered columns that were planted.
    pub column_precision: f64,
    /// Fraction of planted columns that were discovered.
    pub column_recall: f64,
    /// Harmonic mean of column precision and recall.
    pub column_f1: f64,
    /// Fraction of planted views matched by some discovered view with
    /// Jaccard similarity at or above the threshold.
    pub view_recall: f64,
    /// Number of matched planted views.
    pub matched_views: usize,
    /// Number of planted views.
    pub total_planted: usize,
}

fn jaccard(a: &HashSet<&str>, b: &HashSet<&str>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

/// Evaluates discovered views (as column-name sets) against the planted
/// ground truth. `jaccard_threshold` controls how exact a view match must
/// be (0.5 = at least half of the union shared).
pub fn evaluate_recovery(
    discovered: &[Vec<String>],
    planted: &[PlantedView],
    jaccard_threshold: f64,
) -> RecoveryQuality {
    let discovered_cols: HashSet<&str> = discovered.iter().flatten().map(|s| s.as_str()).collect();
    let planted_cols: HashSet<&str> = planted
        .iter()
        .flat_map(|p| &p.columns)
        .map(|s| s.as_str())
        .collect();

    let inter = discovered_cols.intersection(&planted_cols).count() as f64;
    let column_precision = if discovered_cols.is_empty() {
        0.0
    } else {
        inter / discovered_cols.len() as f64
    };
    let column_recall = if planted_cols.is_empty() {
        0.0
    } else {
        inter / planted_cols.len() as f64
    };
    let column_f1 = if column_precision + column_recall > 0.0 {
        2.0 * column_precision * column_recall / (column_precision + column_recall)
    } else {
        0.0
    };

    let mut matched_views = 0;
    for p in planted {
        let pset: HashSet<&str> = p.columns.iter().map(|s| s.as_str()).collect();
        let matched = discovered.iter().any(|d| {
            let dset: HashSet<&str> = d.iter().map(|s| s.as_str()).collect();
            jaccard(&pset, &dset) >= jaccard_threshold
        });
        if matched {
            matched_views += 1;
        }
    }
    let view_recall = if planted.is_empty() {
        0.0
    } else {
        matched_views as f64 / planted.len() as f64
    };

    RecoveryQuality {
        column_precision,
        column_recall,
        column_f1,
        view_recall,
        matched_views,
        total_planted: planted.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn planted(views: &[&[&str]]) -> Vec<PlantedView> {
        views
            .iter()
            .enumerate()
            .map(|(i, cols)| PlantedView {
                name: format!("p{i}"),
                columns: cols.iter().map(|s| s.to_string()).collect(),
            })
            .collect()
    }

    fn views(vs: &[&[&str]]) -> Vec<Vec<String>> {
        vs.iter()
            .map(|cols| cols.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn perfect_recovery() {
        let p = planted(&[&["a", "b"], &["c"]]);
        let d = views(&[&["a", "b"], &["c"]]);
        let q = evaluate_recovery(&d, &p, 0.5);
        assert_eq!(q.column_precision, 1.0);
        assert_eq!(q.column_recall, 1.0);
        assert_eq!(q.column_f1, 1.0);
        assert_eq!(q.view_recall, 1.0);
        assert_eq!(q.matched_views, 2);
    }

    #[test]
    fn partial_recovery() {
        let p = planted(&[&["a", "b"], &["c", "d"]]);
        let d = views(&[&["a", "b"], &["x", "y"]]);
        let q = evaluate_recovery(&d, &p, 0.5);
        assert!((q.column_precision - 0.5).abs() < 1e-12);
        assert!((q.column_recall - 0.5).abs() < 1e-12);
        assert!((q.view_recall - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_threshold_controls_view_match() {
        let p = planted(&[&["a", "b", "c", "d"]]);
        // Discovered shares 2 of 4 → Jaccard 2/4 = 0.5.
        let d = views(&[&["a", "b"]]);
        assert_eq!(evaluate_recovery(&d, &p, 0.5).matched_views, 1);
        assert_eq!(evaluate_recovery(&d, &p, 0.6).matched_views, 0);
    }

    #[test]
    fn no_discoveries() {
        let p = planted(&[&["a"]]);
        let q = evaluate_recovery(&[], &p, 0.5);
        assert_eq!(q.column_precision, 0.0);
        assert_eq!(q.column_recall, 0.0);
        assert_eq!(q.column_f1, 0.0);
        assert_eq!(q.view_recall, 0.0);
    }

    #[test]
    fn superset_discovery_hurts_precision_only() {
        let p = planted(&[&["a", "b"]]);
        let d = views(&[&["a", "b", "z", "w"]]);
        let q = evaluate_recovery(&d, &p, 0.5);
        assert!((q.column_precision - 0.5).abs() < 1e-12);
        assert_eq!(q.column_recall, 1.0);
        // Jaccard 2/4 = 0.5 still matches at the default threshold.
        assert_eq!(q.matched_views, 1);
    }
}
